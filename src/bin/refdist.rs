//! The `refdist` command-line tool: inspect workload DAGs, export Graphviz,
//! and run cache-policy simulations from the shell. See `refdist help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match refdist::cli::parse(&args).and_then(refdist::cli::execute) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", refdist::cli::USAGE);
            std::process::exit(2);
        }
    }
}
