//! The `refdist` command-line tool: inspect workload DAGs, export Graphviz,
//! and run cache-policy simulations from the shell. See `refdist help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match refdist::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", refdist::cli::USAGE);
            std::process::exit(2);
        }
    };
    match refdist::cli::execute(cmd) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            // Execution failures (including aborted simulations) exit
            // non-zero without re-printing the usage text.
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
