//! Command-line interface logic for the `refdist` binary.
//!
//! Hand-rolled argument parsing (the workspace deliberately avoids
//! dependencies beyond the approved set), split from the binary so the
//! parsing and command execution are unit-testable.

use crate::prelude::*;
use refdist_metrics::{human_bytes, TextTable};
use std::fmt::Write as _;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `refdist list` — all workloads with their metadata.
    List,
    /// `refdist inspect <workload>` — plan + reference statistics.
    Inspect {
        /// Workload short name (e.g. "CC").
        workload: String,
        /// Generation parameters.
        params: WorkloadParams,
    },
    /// `refdist dot <workload> [--stages]` — Graphviz export.
    Dot {
        /// Workload short name.
        workload: String,
        /// Emit the stage DAG instead of the RDD lineage.
        stages: bool,
        /// Generation parameters.
        params: WorkloadParams,
    },
    /// `refdist run <workload> --policy <p>` — one simulation.
    Run {
        /// Workload short name.
        workload: String,
        /// Policy name (lru|fifo|random|lrc|memtune|mrd|mrd-evict|mrd-prefetch|mrd-job).
        policy: String,
        /// Cache bytes per node.
        cache_bytes: Option<u64>,
        /// Cache as a fraction of the cached footprint.
        cache_fraction: f64,
        /// Cluster preset (main|lrc|memtune) and node override.
        cluster: String,
        /// Node-count override.
        nodes: Option<u32>,
        /// Ad-hoc instead of recurring profile visibility.
        adhoc: bool,
        /// Simulation seed.
        seed: u64,
        /// Generation parameters.
        params: WorkloadParams,
    },
    /// `refdist compare <workload>` — every policy, ranked.
    Compare {
        /// Workload short name.
        workload: String,
        /// Cache as a fraction of the cached footprint.
        cache_fraction: f64,
        /// Node-count override.
        nodes: Option<u32>,
        /// Generation parameters.
        params: WorkloadParams,
    },
    /// `refdist sweep` — a (workload × policy × capacity × seed) grid on
    /// the parallel sweep engine.
    Sweep {
        /// Workload short names.
        workloads: Vec<String>,
        /// Policy names (see `--policy`).
        policies: Vec<String>,
        /// Capacity fractions of the cached footprint.
        fractions: Vec<f64>,
        /// Replicate seeds.
        seeds: Vec<u64>,
        /// Worker threads (0 = available cores / REFDIST_THREADS).
        threads: usize,
        /// Emit CSV instead of a table.
        csv: bool,
        /// Cluster preset (main|lrc|memtune).
        cluster: String,
        /// Node-count override.
        nodes: Option<u32>,
        /// Ad-hoc instead of recurring profile visibility.
        adhoc: bool,
        /// Master seed (mixed into every cell's derived seed).
        seed: u64,
        /// Generation parameters.
        params: WorkloadParams,
    },
    /// `refdist chaos <workload>` — JCT-degradation-vs-fault-rate resilience
    /// curves: every policy at every chaos rate, normalized against its own
    /// fault-free run at the same grid point.
    Chaos {
        /// Workload short name.
        workload: String,
        /// Policy names (see `--policy`).
        policies: Vec<String>,
        /// Chaos fault rates; `0.0` (the baseline) is always included.
        rates: Vec<f64>,
        /// Cache as a fraction of the cached footprint.
        cache_fraction: f64,
        /// Cluster preset (main|lrc|memtune).
        cluster: String,
        /// Node-count override.
        nodes: Option<u32>,
        /// Worker threads (0 = available cores / REFDIST_THREADS).
        threads: usize,
        /// Master seed (mixed into every cell's derived seed).
        seed: u64,
        /// Emit CSV instead of a table.
        csv: bool,
        /// Serve-mode resilience curve: run a multi-tenant stream under
        /// node churn at each rate and report SLO attainment instead of
        /// the single-app degradation curve.
        serve: bool,
        /// Serve mode: number of tenants.
        tenants: u32,
        /// Serve mode: total submissions (default: one per tenant).
        apps: Option<u32>,
        /// Serve mode: mean Poisson inter-arrival gap in milliseconds.
        gap_ms: u64,
        /// Serve mode: per-submission completion deadline in microseconds
        /// (default: twice the fault-free maximum JCT).
        deadline_us: Option<u64>,
        /// Serve mode: app-level retries after an abort.
        app_retries: u32,
        /// Generation parameters.
        params: WorkloadParams,
    },
    /// `refdist serve <workload>` — multi-tenant serving: a stream of
    /// identical applications, one per tenant, share one cluster under each
    /// (scheduler × quota) combination; reports per-tenant JCT distributions
    /// and the cross-tenant eviction matrix.
    Serve {
        /// Workload short name (each tenant submits one instance).
        workload: String,
        /// Policy name, applied per tenant (belady is not supported — a
        /// whole-run trace is meaningless under interleaving).
        policy: String,
        /// Number of tenants.
        tenants: u32,
        /// Total submissions in the stream (default: one per tenant);
        /// submissions round-robin over the tenants.
        apps: Option<u32>,
        /// Mean Poisson inter-arrival gap in milliseconds.
        gap_ms: u64,
        /// Mean Poisson inter-arrival gap in microseconds; overrides
        /// `gap_ms` for long streams needing sub-millisecond pressure.
        gap_us: Option<u64>,
        /// Run the build-everything-upfront reference path instead of
        /// streaming admission/retirement.
        upfront: bool,
        /// Disable template-interned admission: replan every submission
        /// from scratch (the per-submission reference path).
        no_intern: bool,
        /// Heterogeneous template mix: workload short names the stream
        /// cycles through (overrides the positional workload).
        mix: Vec<String>,
        /// Inter-job schedulers to run (fifo | fair-share).
        scheds: Vec<String>,
        /// Per-tenant cache quotas to run (unlimited | equal-share | MiB).
        quotas: Vec<String>,
        /// Cache as a fraction of one app's cached footprint.
        cache_fraction: f64,
        /// Cluster preset (main|lrc|memtune).
        cluster: String,
        /// Node-count override.
        nodes: Option<u32>,
        /// Master seed (arrivals and per-app simulation seeds derive from it).
        seed: u64,
        /// Wall-clock node churn: mean time between failures and mean
        /// repair time, both in milliseconds (`--churn MTBF,MTTR`).
        churn: Option<(u64, u64)>,
        /// Cap on concurrently admitted applications.
        max_active: Option<u32>,
        /// Overload admission policy at the `--max-active` cap
        /// (queue | shed | degrade).
        admission: String,
        /// Per-submission completion deadline in microseconds.
        deadline_us: Option<u64>,
        /// App-level retries after an abort (admission budget is
        /// retries + 1).
        app_retries: u32,
        /// Generation parameters.
        params: WorkloadParams,
    },
    /// `refdist help`.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
refdist — reference-distance cache management (MRD) simulator

USAGE:
  refdist list
  refdist inspect <workload> [--partitions N] [--scale F] [--iterations N]
  refdist dot <workload> [--stages] [--partitions N] [--scale F]
  refdist run <workload> --policy <name> [options]
  refdist compare <workload> [options]
  refdist sweep [sweep options]
  refdist chaos <workload> [chaos options]
  refdist serve <workload> [serve options]
  refdist help

RUN/COMPARE OPTIONS:
  --policy <name>        lru | fifo | random | lrc | memtune |
                         mrd | mrd-evict | mrd-prefetch | mrd-job
  --cache-mb <N>         cache per node in MiB
  --cache-fraction <F>   cache as fraction of cached footprint (default 0.4)
  --cluster <preset>     main | lrc | memtune (default main)
  --nodes <N>            override the preset's node count
  --adhoc                first-run profile visibility (default: recurring)
  --seed <N>             simulation seed (default 42)
  --partitions <N>       partitions per RDD (default 192)
  --scale <F>            input scale factor (default 1.0)
  --iterations <N>       override the workload's iteration count

SWEEP OPTIONS (in addition to the applicable options above):
  --workloads <a,b,..>   comma-separated workload short names (default CC)
  --policies <a,b,..>    comma-separated policy names (default lru,mrd)
  --fractions <f,f,..>   capacity fractions (default the standard sweep)
  --seeds <n,n,..>       replicate seeds (default 42)
  --threads <N>          worker threads (default: cores, or REFDIST_THREADS)
  --csv                  emit CSV instead of a table

  Cells run in parallel; aggregated output is in canonical grid order and
  byte-identical for any thread count. Progress/ETA goes to stderr.

CHAOS OPTIONS (in addition to the applicable options above):
  --policies <a,b,..>    comma-separated policy names (default lru,lrc,mrd)
  --rates <f,f,..>       chaos fault rates (default 0,0.02,0.05,0.1); the
                         fault-free rate 0 is always included — it is the
                         degradation baseline each policy normalizes against

  Each rate seeds stochastic task/fetch/disk failures from the master seed,
  so the resilience curve is byte-deterministic at any thread count.

  --serve                serve-mode resilience curve: run a multi-tenant
                         stream (--tenants/--apps/--gap-ms as in serve)
                         under Poisson node churn at each rate (rate =
                         expected node failures per simulated second) and
                         report SLO attainment instead of JCT degradation
  --deadline <US>        per-submission SLO deadline in microseconds
                         (default: twice the fault-free maximum JCT)
  --app-retries <N>      re-admit churn-aborted submissions up to N times

SERVE OPTIONS (in addition to the applicable options above):
  --tenants <N>          number of tenants, one app each (default 3)
  --apps <N>             total submissions in the stream, round-robined
                         over the tenants (default: one per tenant)
  --gap-ms <N>           mean Poisson inter-arrival gap in ms (default 500)
  --arrival-gap <US>     mean Poisson inter-arrival gap in microseconds
                         (overrides --gap-ms; for long dense streams)
  --upfront              plan/profile/slot every submission before the
                         first event (the reference path) instead of
                         streaming admission and retirement
  --mix <a,b,..>         heterogeneous stream: submissions cycle through
                         these workloads (overrides the positional one)
  --no-intern            replan every admission from scratch instead of
                         reusing the per-template interned plan/profile
  --scheds <a,b,..>      inter-job schedulers: fifo | fair-share
                         (default fifo,fair-share)
  --quotas <a,b,..>      per-tenant cache quotas: unlimited | equal-share |
                         a per-tenant budget in MiB (default
                         unlimited,equal-share)
  --churn <MTBF,MTTR>    wall-clock node churn: mean time between node
                         failures and mean repair time, in milliseconds
  --app-retries <N>      re-admit an aborted submission up to N times with
                         capped exponential backoff (streaming only)
  --max-active <N>       admit at most N concurrent apps; later arrivals
                         follow the --admission policy (streaming only)
  --admission <policy>   queue | shed | degrade (default queue); what an
                         arrival gets when the cluster is at --max-active
  --deadline <US>        per-submission SLO deadline in microseconds;
                         reports per-tenant attainment

  Every (scheduler x quota) combination serves the same Poisson arrival
  stream (replayed from the master seed) and reports per-tenant mean/p95/p99
  JCT plus the cross-tenant eviction matrix and the run's high-water marks
  (active apps, slot-arena size, resident blocks/bytes). Streaming mode
  admits each submission at its arrival and retires it after it drains, so
  state tracks peak concurrency, not stream length.

WORKLOADS: KM LinR LogR SVM DT MF PR TC SP LP SVD++ CC SCC PO
           Sort WordCount TeraSort PageRank(Hi) Bayes K-Means(Hi)
";

fn find_workload(name: &str) -> Result<Workload, String> {
    Workload::from_short_name(name)
        .ok_or_else(|| format!("unknown workload `{name}` (try `refdist list`)"))
}

struct Flags<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Flags<'a> {
    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.i += 1;
        self.args
            .get(self.i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("{flag} needs a value"))
    }

    fn parse_num<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        let v = self.value(flag)?;
        v.parse().map_err(|_| format!("{flag}: cannot parse `{v}`"))
    }

    fn parse_list<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Vec<T>, String> {
        let v = self.value(flag)?;
        let items: Result<Vec<T>, String> = v
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().map_err(|_| format!("{flag}: cannot parse `{s}`")))
            .collect();
        let items = items?;
        if items.is_empty() {
            return Err(format!("{flag} needs at least one value"));
        }
        Ok(items)
    }
}

/// Parse CLI arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let mut params = WorkloadParams::default();
    let mut policy = None;
    let mut cache_bytes = None;
    let mut cache_fraction = 0.4;
    let mut cluster = "main".to_string();
    let mut nodes = None;
    let mut adhoc = false;
    let mut seed = 42u64;
    let mut stages = false;
    let mut workloads: Vec<String> = vec!["CC".into()];
    let mut policies: Option<Vec<String>> = None;
    let mut fractions: Vec<f64> = refdist_bench::SWEEP_FRACTIONS.to_vec();
    let mut seeds: Vec<u64> = vec![42];
    let mut rates: Vec<f64> = vec![0.0, 0.02, 0.05, 0.1];
    let mut threads = 0usize;
    let mut csv = false;
    let mut tenants = 3u32;
    let mut apps: Option<u32> = None;
    let mut gap_ms = 500u64;
    let mut gap_us: Option<u64> = None;
    let mut upfront = false;
    let mut no_intern = false;
    let mut mix: Vec<String> = Vec::new();
    let mut scheds: Vec<String> = vec!["fifo".into(), "fair-share".into()];
    let mut quotas: Vec<String> = vec!["unlimited".into(), "equal-share".into()];
    let mut churn: Option<(u64, u64)> = None;
    let mut max_active: Option<u32> = None;
    let mut admission = "queue".to_string();
    let mut deadline_us: Option<u64> = None;
    let mut app_retries = 0u32;
    let mut serve_chaos = false;
    let mut positional: Vec<&String> = Vec::new();

    let mut f = Flags { args, i: 0 };
    while f.i + 1 < args.len() {
        f.i += 1;
        let arg = &args[f.i];
        match arg.as_str() {
            "--partitions" => params.partitions = f.parse_num("--partitions")?,
            "--scale" => params.scale = f.parse_num("--scale")?,
            "--iterations" => params.iterations = Some(f.parse_num("--iterations")?),
            "--policy" => policy = Some(f.value("--policy")?.to_string()),
            "--cache-mb" => cache_bytes = Some(f.parse_num::<u64>("--cache-mb")? << 20),
            "--cache-fraction" => cache_fraction = f.parse_num("--cache-fraction")?,
            "--cluster" => cluster = f.value("--cluster")?.to_string(),
            "--nodes" => nodes = Some(f.parse_num("--nodes")?),
            "--adhoc" => adhoc = true,
            "--seed" => seed = f.parse_num("--seed")?,
            "--stages" => stages = true,
            "--workloads" => workloads = f.parse_list("--workloads")?,
            "--policies" => policies = Some(f.parse_list("--policies")?),
            "--fractions" => fractions = f.parse_list("--fractions")?,
            "--seeds" => seeds = f.parse_list("--seeds")?,
            "--rates" => rates = f.parse_list("--rates")?,
            "--threads" => threads = f.parse_num("--threads")?,
            "--csv" => csv = true,
            "--tenants" => tenants = f.parse_num("--tenants")?,
            "--apps" => apps = Some(f.parse_num("--apps")?),
            "--gap-ms" => gap_ms = f.parse_num("--gap-ms")?,
            "--arrival-gap" => gap_us = Some(f.parse_num("--arrival-gap")?),
            "--upfront" => upfront = true,
            "--no-intern" => no_intern = true,
            "--mix" => mix = f.parse_list("--mix")?,
            "--scheds" => scheds = f.parse_list("--scheds")?,
            "--quotas" => quotas = f.parse_list("--quotas")?,
            "--churn" => {
                let pair: Vec<u64> = f.parse_list("--churn")?;
                if pair.len() != 2 {
                    return Err("--churn needs MTBF,MTTR in milliseconds".into());
                }
                churn = Some((pair[0], pair[1]));
            }
            "--max-active" => max_active = Some(f.parse_num("--max-active")?),
            "--admission" => admission = f.value("--admission")?.to_string(),
            "--deadline" => deadline_us = Some(f.parse_num("--deadline")?),
            "--app-retries" => app_retries = f.parse_num("--app-retries")?,
            "--serve" => serve_chaos = true,
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            _ => positional.push(arg),
        }
    }

    let workload_arg = || -> Result<String, String> {
        positional
            .first()
            .map(|s| s.to_string())
            .ok_or_else(|| "missing <workload> argument".to_string())
    };

    match cmd.as_str() {
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "inspect" => Ok(Command::Inspect {
            workload: workload_arg()?,
            params,
        }),
        "dot" => Ok(Command::Dot {
            workload: workload_arg()?,
            stages,
            params,
        }),
        "run" => Ok(Command::Run {
            workload: workload_arg()?,
            policy: policy.ok_or("run requires --policy")?,
            cache_bytes,
            cache_fraction,
            cluster,
            nodes,
            adhoc,
            seed,
            params,
        }),
        "compare" => Ok(Command::Compare {
            workload: workload_arg()?,
            cache_fraction,
            nodes,
            params,
        }),
        "sweep" => Ok(Command::Sweep {
            workloads,
            policies: policies.unwrap_or_else(|| vec!["lru".into(), "mrd".into()]),
            fractions,
            seeds,
            threads,
            csv,
            cluster,
            nodes,
            adhoc,
            seed,
            params,
        }),
        "chaos" => Ok(Command::Chaos {
            workload: workload_arg()?,
            policies: policies
                .unwrap_or_else(|| vec!["lru".into(), "lrc".into(), "mrd".into()]),
            rates,
            cache_fraction,
            cluster,
            nodes,
            threads,
            seed,
            csv,
            serve: serve_chaos,
            tenants,
            apps,
            gap_ms,
            deadline_us,
            app_retries,
            params,
        }),
        "serve" => Ok(Command::Serve {
            workload: if mix.is_empty() {
                workload_arg()?
            } else {
                positional
                    .first()
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| mix[0].clone())
            },
            policy: policy.unwrap_or_else(|| "mrd".into()),
            tenants,
            apps,
            gap_ms,
            gap_us,
            upfront,
            no_intern,
            mix,
            scheds,
            quotas,
            cache_fraction,
            cluster,
            nodes,
            seed,
            churn,
            max_active,
            admission,
            deadline_us,
            app_retries,
            params,
        }),
        other => Err(format!("unknown command `{other}` (try `refdist help`)")),
    }
}

fn build_policy(name: &str) -> Result<Box<dyn CachePolicy>, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "lru" => PolicyKind::Lru.build(),
        "fifo" => PolicyKind::Fifo.build(),
        "random" => PolicyKind::Random.build(),
        "lrc" => PolicyKind::Lrc.build(),
        "memtune" => PolicyKind::MemTune.build(),
        "mrd" => Box::new(MrdPolicy::full()),
        "mrd-evict" => Box::new(MrdPolicy::new(MrdConfig {
            mode: MrdMode::EvictOnly,
            ..Default::default()
        })),
        "mrd-prefetch" => Box::new(MrdPolicy::new(MrdConfig {
            mode: MrdMode::PrefetchOnly,
            ..Default::default()
        })),
        "mrd-job" => Box::new(MrdPolicy::new(MrdConfig {
            metric: DistanceMetric::Job,
            ..Default::default()
        })),
        other => return Err(format!("unknown policy `{other}`")),
    })
}

fn parse_sched(name: &str) -> Result<refdist_cluster::ServeSched, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "fifo" => refdist_cluster::ServeSched::Fifo,
        "fair-share" | "fair" => refdist_cluster::ServeSched::FairShare,
        other => return Err(format!("unknown scheduler `{other}` (fifo | fair-share)")),
    })
}

fn parse_quota(name: &str) -> Result<refdist_cluster::QuotaKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "unlimited" => Ok(refdist_cluster::QuotaKind::Unlimited),
        "equal-share" | "equal" => Ok(refdist_cluster::QuotaKind::EqualShare),
        other => other
            .parse::<u64>()
            .map(|mib| refdist_cluster::QuotaKind::Bytes(mib << 20))
            .map_err(|_| {
                format!("unknown quota `{other}` (unlimited | equal-share | per-tenant MiB)")
            }),
    }
}

fn parse_admission(name: &str) -> Result<refdist_cluster::AdmissionPolicy, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "queue" => refdist_cluster::AdmissionPolicy::Queue,
        "shed" => refdist_cluster::AdmissionPolicy::Shed,
        "degrade" => refdist_cluster::AdmissionPolicy::Degrade,
        other => {
            return Err(format!(
                "unknown admission policy `{other}` (queue | shed | degrade)"
            ))
        }
    })
}

fn cluster_preset(name: &str) -> Result<ClusterConfig, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "main" => ClusterConfig::main_cluster(),
        "lrc" => ClusterConfig::lrc_cluster(),
        "memtune" => ClusterConfig::memtune_cluster(),
        other => return Err(format!("unknown cluster preset `{other}`")),
    })
}

/// Inputs of the `refdist chaos --serve` curve (bundled so the helper does
/// not take a dozen positional arguments).
struct ChaosServe {
    w: Workload,
    policies: Vec<String>,
    rates: Vec<f64>,
    cache_fraction: f64,
    cl: ClusterConfig,
    tenants: u32,
    apps: Option<u32>,
    gap_ms: u64,
    deadline_us: Option<u64>,
    app_retries: u32,
    seed: u64,
    csv: bool,
    params: WorkloadParams,
}

/// `refdist chaos --serve`: SLO attainment vs churn rate. Each rate is an
/// expected node-failure count per simulated second; the stream is replayed
/// (same arrivals, same master seed) under a Poisson churn process with
/// `MTBF = 1/rate` and `MTTR = MTBF/5`, with churn-aborted submissions
/// re-admitted up to `--app-retries` times. A submission meets its SLO when
/// it completes within `--deadline` microseconds of its arrival (default:
/// twice that policy's fault-free maximum JCT, so the rate-0 baseline always
/// attains 100%).
fn chaos_serve(cs: ChaosServe) -> Result<String, String> {
    use refdist_cluster::{
        ArrivalProcess, QuotaKind, ResilienceConfig, ServeConfig, ServeReport, ServeSched,
        ServeSim,
    };
    for p in &cs.policies {
        build_policy(p)?;
    }
    if cs.tenants == 0 {
        return Err("--tenants must be at least 1".into());
    }
    let spec = cs.w.build(&cs.params);
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let cache = (((footprint as f64 * cs.cache_fraction) / cs.cl.nodes as f64) as u64).max(1);
    let napps = cs.apps.unwrap_or(cs.tenants).max(1) as usize;
    let subs: Vec<(&AppSpec, u32)> = (0..napps as u32).map(|i| (&spec, i % cs.tenants)).collect();
    let mean_gap_us = cs.gap_ms.saturating_mul(1_000);
    let run_at = |rate: f64, deadline: Option<u64>, pname: &str| -> ServeReport {
        let mut sim = SimConfig::new(cs.cl.clone().with_cache(cache)).with_seed(cs.seed);
        if rate > 0.0 {
            let mtbf_us = ((1_000_000.0 / rate) as u64).max(1);
            sim.faults.node_churn(mtbf_us, (mtbf_us / 5).max(1));
        }
        let serve = ServeSim::new(
            &subs,
            ServeConfig {
                sim,
                arrivals: ArrivalProcess::Poisson { mean_gap_us },
                sched: ServeSched::FairShare,
                quota: QuotaKind::Unlimited,
                upfront: false,
                intern: true,
                resilience: ResilienceConfig {
                    max_app_attempts: cs.app_retries.saturating_add(1),
                    deadline_us: deadline,
                    ..Default::default()
                },
            },
        );
        serve.run_with(|_| build_policy(pname).expect("validated above"))
    };
    // One curve point: policy, rate, deadline, met, retries, crashes,
    // rejoins, makespan.
    type CurveRow = (String, f64, u64, usize, u64, u64, u64, f64);
    let mut rows: Vec<CurveRow> = Vec::new();
    for pname in &cs.policies {
        // Each policy's SLO is anchored to its own fault-free stream.
        let deadline = cs.deadline_us.unwrap_or_else(|| {
            let base = run_at(0.0, None, pname);
            base.arrivals
                .iter()
                .zip(&base.completions)
                .map(|(a, c)| c.saturating_sub(*a))
                .max()
                .unwrap_or(0)
                .saturating_mul(2)
                .max(1)
        });
        for &rate in &cs.rates {
            let rep = run_at(rate, Some(deadline), pname);
            let res = rep.resilience.as_ref().expect("deadline set");
            let met = (0..napps)
                .filter(|&i| {
                    res.met_deadline(i, rep.arrivals[i], rep.completions[i]) == Some(true)
                })
                .count();
            let crashes: u64 = rep.reports.iter().map(|r| r.faults.crashes).sum();
            let rejoins: u64 = rep.reports.iter().map(|r| r.faults.rejoins).sum();
            let policy_name = rep
                .reports
                .iter()
                .map(|r| r.policy.as_str())
                .find(|p| *p != "-")
                .unwrap_or("-")
                .to_string();
            rows.push((
                policy_name,
                rate,
                deadline,
                met,
                res.total_retries(),
                crashes,
                rejoins,
                rep.makespan.as_secs_f64(),
            ));
        }
    }
    let mtbf_label = |rate: f64| {
        if rate > 0.0 {
            format!("{:.1}", 1.0 / rate)
        } else {
            "-".into()
        }
    };
    if cs.csv {
        let mut out = String::from(
            "policy,rate,mtbf_s,deadline_s,slo_met,slo_total,attainment,\
             app_retries,crashes,rejoins,makespan_s\n",
        );
        for (pol, rate, dl, met, retries, crashes, rejoins, mk) in &rows {
            let _ = writeln!(
                out,
                "{},{:.4},{},{:.4},{},{},{:.4},{},{},{},{:.4}",
                pol,
                rate,
                mtbf_label(*rate),
                *dl as f64 / 1e6,
                met,
                napps,
                *met as f64 / napps as f64,
                retries,
                crashes,
                rejoins,
                mk,
            );
        }
        return Ok(out);
    }
    let mut t = TextTable::new([
        "Policy",
        "Rate",
        "MTBF (s)",
        "SLO",
        "Attainment",
        "Retries",
        "Crashes",
        "Rejoins",
        "Makespan (s)",
    ]);
    for (pol, rate, _dl, met, retries, crashes, rejoins, mk) in &rows {
        t.row([
            pol.clone(),
            format!("{rate:.4}"),
            mtbf_label(*rate),
            format!("{met}/{napps}"),
            format!("{:.1}%", *met as f64 / napps as f64 * 100.0),
            retries.to_string(),
            crashes.to_string(),
            rejoins.to_string(),
            format!("{mk:.2}"),
        ]);
    }
    let deadline_note = match cs.deadline_us {
        Some(d) => format!("deadline {:.3}s", d as f64 / 1e6),
        None => "deadline 2x each policy's fault-free max JCT".into(),
    };
    let mut out = format!(
        "{} serve resilience on {} nodes: {} submissions over {} tenants, \
         {} app retries, {} (seed {})\n\n",
        cs.w.short_name(),
        cs.cl.nodes,
        napps,
        cs.tenants,
        cs.app_retries,
        deadline_note,
        cs.seed,
    );
    out.push_str(&t.render());
    Ok(out)
}

/// Execute a parsed command, returning its printable output.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => {
            let mut t = TextTable::new(["Name", "Full name", "Category", "Job type", "Iterations"]);
            for &w in Workload::sparkbench().iter().chain(Workload::hibench()) {
                t.row([
                    w.short_name().to_string(),
                    w.full_name().to_string(),
                    w.category().to_string(),
                    w.job_type().to_string(),
                    w.default_iterations().map_or("-".into(), |i| i.to_string()),
                ]);
            }
            Ok(t.render())
        }
        Command::Inspect { workload, params } => {
            let w = find_workload(&workload)?;
            let spec = w.build(&params);
            let plan = AppPlan::build(&spec);
            let analyzer = RefAnalyzer::new(&spec, &plan);
            let profile = analyzer.profile();
            let ch = analyzer.characteristics(&profile);
            let d = refdist_dag::RefAnalyzer::distance_stats(&profile);
            let mut out = String::new();
            let _ = writeln!(out, "{} ({})", w.full_name(), w.short_name());
            let _ = writeln!(out, "  category:        {}", w.category());
            let _ = writeln!(out, "  job type:        {}", w.job_type());
            let _ = writeln!(out, "  input:           {}", human_bytes(ch.input_bytes));
            let _ = writeln!(out, "  jobs:            {}", ch.jobs);
            let _ = writeln!(
                out,
                "  stages:          {} ({} active)",
                ch.stages, ch.active_stages
            );
            let _ = writeln!(out, "  rdds:            {}", ch.rdds);
            let _ = writeln!(out, "  refs/rdd:        {:.2}", ch.refs_per_rdd);
            let _ = writeln!(out, "  refs/stage:      {:.2}", ch.refs_per_stage);
            let _ = writeln!(
                out,
                "  avg job dist:    {:.2} (max {})",
                d.avg_job, d.max_job
            );
            let _ = writeln!(
                out,
                "  avg stage dist:  {:.2} (max {})",
                d.avg_stage, d.max_stage
            );
            let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
            let _ = writeln!(out, "  cached footprint: {}", human_bytes(footprint));
            let live = refdist_dag::LiveSetProfile::compute(&spec, &profile);
            let _ = writeln!(
                out,
                "  peak live set:   {} at {} ({}% optimal cache savings)",
                human_bytes(live.peak_bytes),
                live.peak_stage,
                (live.optimal_savings() * 100.0) as u32
            );
            Ok(out)
        }
        Command::Dot {
            workload,
            stages,
            params,
        } => {
            let w = find_workload(&workload)?;
            let spec = w.build(&params);
            if stages {
                let plan = AppPlan::build(&spec);
                Ok(refdist_dag::dot::stage_dot(&spec, &plan))
            } else {
                Ok(refdist_dag::dot::lineage_dot(&spec))
            }
        }
        Command::Run {
            workload,
            policy,
            cache_bytes,
            cache_fraction,
            cluster,
            nodes,
            adhoc,
            seed,
            params,
        } => {
            let w = find_workload(&workload)?;
            let spec = w.build(&params);
            let plan = AppPlan::build(&spec);
            let mut cl = cluster_preset(&cluster)?;
            if let Some(n) = nodes {
                cl.nodes = n;
            }
            let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
            let cache = cache_bytes
                .unwrap_or(((footprint as f64 * cache_fraction) / cl.nodes as f64) as u64)
                .max(1);
            let cfg = SimConfig::new(cl.with_cache(cache)).with_seed(seed);
            let mode = if adhoc {
                ProfileMode::AdHoc
            } else {
                ProfileMode::Recurring
            };
            let mut p = build_policy(&policy)?;
            let report = Simulation::new(&spec, &plan, mode, cfg).run(&mut *p);
            if let Some(a) = &report.aborted {
                return Err(format!(
                    "stage {} aborted: task {} failed all {} attempts",
                    a.stage.0, a.task, a.attempts
                ));
            }
            let mut out = String::new();
            let _ = writeln!(out, "{}", report.summary());
            let _ = writeln!(
                out,
                "  cache/node: {}, io {:.1}s, compute {:.1}s, tasks {}",
                human_bytes(cache),
                report.io_time.as_secs_f64(),
                report.compute_time.as_secs_f64(),
                report.tasks
            );
            let _ = writeln!(
                out,
                "  disk hits {}, recomputes {}, remote hits {}, wasted prefetches {}",
                report.stats.disk_hits,
                report.stats.recomputes,
                report.stats.remote_hits,
                report.stats.wasted_prefetches
            );
            Ok(out)
        }
        Command::Compare {
            workload,
            cache_fraction,
            nodes,
            params,
        } => {
            let w = find_workload(&workload)?;
            let spec = w.build(&params);
            let plan = AppPlan::build(&spec);
            let mut cl = ClusterConfig::main_cluster();
            if let Some(n) = nodes {
                cl.nodes = n;
            }
            let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
            let cache = (((footprint as f64 * cache_fraction) / cl.nodes as f64) as u64).max(1);
            let cfg = SimConfig::new(cl.with_cache(cache));
            let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);
            let mut reports = Vec::new();
            for name in [
                "lru",
                "fifo",
                "random",
                "lrc",
                "memtune",
                "mrd-evict",
                "mrd-prefetch",
                "mrd",
            ] {
                let mut p = build_policy(name)?;
                reports.push(sim.run(&mut *p));
            }
            reports.sort_by_key(|r| r.jct);
            let baseline = reports
                .iter()
                .find(|r| r.policy == "LRU")
                .cloned()
                .expect("LRU ran");
            let mut t = TextTable::new([
                "Policy",
                "JCT (s)",
                "vs LRU",
                "Hit %",
                "Evictions",
                "Prefetches",
            ]);
            for r in &reports {
                t.row([
                    r.policy.clone(),
                    format!("{:.2}", r.jct_secs()),
                    format!("{:.2}", r.normalized_jct(&baseline)),
                    format!("{:.1}", r.hit_ratio() * 100.0),
                    (r.stats.evictions + r.stats.purges).to_string(),
                    r.stats.prefetches.to_string(),
                ]);
            }
            let mut out = format!(
                "{} on {} nodes, cache {}/node ({}% of footprint):\n\n",
                w.short_name(),
                cl.nodes,
                human_bytes(cache),
                (cache_fraction * 100.0) as u32
            );
            out.push_str(&t.render());
            Ok(out)
        }
        Command::Sweep {
            workloads,
            policies,
            fractions,
            seeds,
            threads,
            csv,
            cluster,
            nodes,
            adhoc,
            seed,
            params,
        } => {
            let ws: Vec<Workload> = workloads
                .iter()
                .map(|w| find_workload(w))
                .collect::<Result<_, _>>()?;
            let ps: Vec<refdist_bench::PolicySpec> = policies
                .iter()
                .map(|p| {
                    refdist_bench::PolicySpec::from_cli_name(p)
                        .ok_or_else(|| format!("unknown policy `{p}`"))
                })
                .collect::<Result<_, _>>()?;
            let mut cl = cluster_preset(&cluster)?;
            if let Some(n) = nodes {
                cl.nodes = n;
            }
            let ctx = refdist_bench::ExpContext {
                cluster: cl,
                params,
                seed,
                faults: Default::default(),
            };
            let grid = refdist_bench::SweepGrid::new(ws, ps)
                .fractions(&fractions)
                .seeds(&seeds);
            let mode = if adhoc {
                ProfileMode::AdHoc
            } else {
                ProfileMode::Recurring
            };
            let opts = refdist_bench::SweepOptions::default()
                .threads(threads)
                .mode(mode)
                .progress(true);
            let res = refdist_bench::run_sweep(&grid, &ctx, &opts);
            // Wall time is nondeterministic: stderr only, keeping stdout
            // byte-identical for any worker count.
            eprintln!(
                "{} cells in {:.1}s",
                res.cells.len(),
                res.wall.as_secs_f64()
            );
            Ok(if csv { res.csv() } else { res.table() })
        }
        Command::Chaos {
            workload,
            policies,
            rates,
            cache_fraction,
            cluster,
            nodes,
            threads,
            seed,
            csv,
            serve,
            tenants,
            apps,
            gap_ms,
            deadline_us,
            app_retries,
            params,
        } => {
            let w = find_workload(&workload)?;
            let mut cl = cluster_preset(&cluster)?;
            if let Some(n) = nodes {
                cl.nodes = n;
            }
            for r in &rates {
                if !r.is_finite() || *r < 0.0 || *r > 1.0 {
                    return Err(format!("--rates: `{r}` is not a probability in [0, 1]"));
                }
            }
            // Rate 0 is the degradation baseline every policy normalizes
            // against, so it is always part of the grid.
            let mut rates = rates;
            rates.push(0.0);
            rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
            rates.dedup();
            if serve {
                return chaos_serve(ChaosServe {
                    w,
                    policies,
                    rates,
                    cache_fraction,
                    cl,
                    tenants,
                    apps,
                    gap_ms,
                    deadline_us,
                    app_retries,
                    seed,
                    csv,
                    params,
                });
            }
            let ps: Vec<refdist_bench::PolicySpec> = policies
                .iter()
                .map(|p| {
                    refdist_bench::PolicySpec::from_cli_name(p)
                        .ok_or_else(|| format!("unknown policy `{p}`"))
                })
                .collect::<Result<_, _>>()?;
            let ctx = refdist_bench::ExpContext {
                cluster: cl,
                params,
                seed,
                faults: Default::default(),
            };
            let grid = refdist_bench::SweepGrid::new(vec![w], ps)
                .fractions(&[cache_fraction])
                .chaos(&rates);
            let opts = refdist_bench::SweepOptions::default()
                .threads(threads)
                .progress(true);
            let res = refdist_bench::run_sweep(&grid, &ctx, &opts);
            eprintln!(
                "{} cells in {:.1}s",
                res.cells.len(),
                res.wall.as_secs_f64()
            );
            // Each policy's fault-free JCT at the same grid point.
            let baseline = |policy: &str| -> Option<f64> {
                res.cells
                    .iter()
                    .find(|c| c.cell.chaos == 0.0 && c.report.policy == policy)
                    .map(|c| c.report.jct_secs())
            };
            if csv {
                let mut out = String::from(
                    "rate,policy,jct_s,vs_fault_free,task_failures,retries,\
                     fetch_failures,disk_failures,fault_recomputes,aborted\n",
                );
                for c in &res.cells {
                    let f = &c.report.faults;
                    let base = baseline(&c.report.policy);
                    let _ = writeln!(
                        out,
                        "{:.4},{},{:.4},{},{},{},{},{},{},{}",
                        c.cell.chaos,
                        c.report.policy,
                        c.report.jct_secs(),
                        base.map_or("-".into(), |b| {
                            format!("{:.4}", c.report.jct_secs() / b)
                        }),
                        f.task_failures,
                        f.retries,
                        f.fetch_failures,
                        f.disk_failures,
                        f.fault_recomputes,
                        c.report.aborted.is_some() as u8,
                    );
                }
                Ok(out)
            } else {
                let mut t = TextTable::new([
                    "Rate",
                    "Policy",
                    "JCT (s)",
                    "vs fault-free",
                    "Task fails",
                    "Fetch fails",
                    "Disk fails",
                    "Recomputes",
                ]);
                for c in &res.cells {
                    let f = &c.report.faults;
                    // An abort is itself a resilience data point: mark the
                    // row rather than failing the whole curve.
                    let jct = match &c.report.aborted {
                        Some(a) => format!("abort@s{}", a.stage.0),
                        None => format!("{:.2}", c.report.jct_secs()),
                    };
                    let vs = match (c.report.aborted.is_some(), baseline(&c.report.policy)) {
                        (false, Some(b)) => format!("{:.2}", c.report.jct_secs() / b),
                        _ => "-".into(),
                    };
                    t.row([
                        format!("{:.4}", c.cell.chaos),
                        c.report.policy.clone(),
                        jct,
                        vs,
                        f.task_failures.to_string(),
                        f.fetch_failures.to_string(),
                        f.disk_failures.to_string(),
                        f.fault_recomputes.to_string(),
                    ]);
                }
                let mut out = format!(
                    "{} resilience curve on {} nodes ({}% of footprint cached, seed {}):\n\n",
                    w.short_name(),
                    ctx.cluster.nodes,
                    (cache_fraction * 100.0) as u32,
                    seed
                );
                out.push_str(&t.render());
                Ok(out)
            }
        }
        Command::Serve {
            workload,
            policy,
            tenants,
            apps,
            gap_ms,
            gap_us,
            upfront,
            no_intern,
            mix,
            scheds,
            quotas,
            cache_fraction,
            cluster,
            nodes,
            seed,
            churn,
            max_active,
            admission,
            deadline_us,
            app_retries,
            params,
        } => {
            use refdist_cluster::{ArrivalProcess, ResilienceConfig, ServeConfig, ServeSim};
            // A heterogeneous mix cycles through the named workloads; the
            // plain form is the one-workload special case.
            let names: Vec<String> = if mix.is_empty() {
                vec![workload.clone()]
            } else {
                mix.clone()
            };
            let ws = names
                .iter()
                .map(|n| find_workload(n))
                .collect::<Result<Vec<_>, _>>()?;
            if tenants == 0 {
                return Err("--tenants must be at least 1".into());
            }
            if policy.eq_ignore_ascii_case("belady") {
                return Err(
                    "belady is not supported in serve mode (a whole-run trace is \
                     meaningless under interleaving)"
                        .into(),
                );
            }
            let scheds: Vec<refdist_cluster::ServeSched> = scheds
                .iter()
                .map(|s| parse_sched(s))
                .collect::<Result<_, _>>()?;
            let quotas: Vec<refdist_cluster::QuotaKind> = quotas
                .iter()
                .map(|q| parse_quota(q))
                .collect::<Result<_, _>>()?;
            let admission = parse_admission(&admission)?;
            if upfront && (app_retries > 0 || max_active.is_some()) {
                return Err(
                    "--app-retries and --max-active need streaming admission; drop --upfront"
                        .into(),
                );
            }
            if max_active == Some(0) {
                return Err("--max-active must be at least 1".into());
            }
            if let Some((mtbf, mttr)) = churn {
                if mtbf == 0 || mttr == 0 {
                    return Err("--churn MTBF and MTTR must both be positive".into());
                }
            }
            let resilience = ResilienceConfig {
                max_app_attempts: app_retries.saturating_add(1),
                admission,
                max_active_apps: max_active,
                deadline_us,
                ..Default::default()
            };
            build_policy(&policy)?; // validate the name before the grid runs
            let specs: Vec<AppSpec> = ws.iter().map(|w| w.build(&params)).collect();
            let mut cl = cluster_preset(&cluster)?;
            if let Some(n) = nodes {
                cl.nodes = n;
            }
            // Size the cache against the largest template in the mix so the
            // fraction keeps its meaning on heterogeneous streams.
            let footprint: u64 = specs
                .iter()
                .map(|s| s.cached_rdds().map(|r| r.total_size()).sum::<u64>())
                .max()
                .unwrap_or(0);
            let cache = (((footprint as f64 * cache_fraction) / cl.nodes as f64) as u64).max(1);
            let napps = apps.unwrap_or(tenants).max(1);
            let mean_gap_us = gap_us.unwrap_or_else(|| gap_ms.saturating_mul(1_000));
            // Submissions cycle through the mix and round-robin over the
            // tenants; the default stream is the historical
            // one-app-per-tenant grid of one workload.
            let subs: Vec<(&AppSpec, u32)> = (0..napps)
                .map(|i| (&specs[i as usize % specs.len()], i % tenants))
                .collect();
            let label = ws
                .iter()
                .map(|w| w.short_name().to_string())
                .collect::<Vec<_>>()
                .join("+");
            let mut out = format!(
                "{} x {} tenants on {} nodes, cache {}/node, mean gap {}ms, policy {}, seed {}\n",
                label,
                tenants,
                cl.nodes,
                human_bytes(cache),
                mean_gap_us / 1_000,
                policy,
                seed
            );
            if napps != tenants {
                out.push_str(&format!(
                    "stream: {} submissions ({} mode)\n",
                    napps,
                    if upfront { "upfront" } else { "streaming" }
                ));
            }
            if churn.is_some() || !resilience.is_passive() {
                let mut bits: Vec<String> = Vec::new();
                if let Some((b, r)) = churn {
                    bits.push(format!("churn mtbf {b}ms mttr {r}ms"));
                }
                if app_retries > 0 {
                    bits.push(format!("{app_retries} app retries"));
                }
                if let Some(m) = max_active {
                    bits.push(format!("max-active {m} ({admission})"));
                }
                if let Some(d) = deadline_us {
                    bits.push(format!("deadline {:.3}s", d as f64 / 1e6));
                }
                out.push_str(&format!("resilience: {}\n", bits.join(", ")));
            }
            for &sched in &scheds {
                for &quota in &quotas {
                    let mut sim = SimConfig::new(cl.clone().with_cache(cache)).with_seed(seed);
                    if let Some((mtbf_ms, mttr_ms)) = churn {
                        sim.faults
                            .node_churn(mtbf_ms.saturating_mul(1_000), mttr_ms.saturating_mul(1_000));
                    }
                    let serve = ServeSim::new(
                        &subs,
                        ServeConfig {
                            sim,
                            arrivals: ArrivalProcess::Poisson { mean_gap_us },
                            sched,
                            quota,
                            upfront,
                            intern: !no_intern,
                            resilience,
                        },
                    );
                    let report = serve.run_with(|_| build_policy(&policy).expect("validated"));
                    out.push('\n');
                    out.push_str(&report.summary());
                    out.push_str(&format!(
                        "peaks: {} active apps, {} arena slots, {} resident blocks ({})\n",
                        report.peak_active_apps,
                        report.peak_arena_slots,
                        report.peak_resident_blocks,
                        human_bytes(report.peak_resident_bytes),
                    ));
                    if report.distinct_templates > 0 {
                        out.push_str(&format!(
                            "admission: {} distinct templates interned over {} submissions\n",
                            report.distinct_templates, napps
                        ));
                    }
                }
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_list_and_help() {
        assert_eq!(parse(&args("list")).unwrap(), Command::List);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert!(parse(&args("frobnicate")).is_err());
    }

    #[test]
    fn parse_run_flags() {
        let cmd = parse(&args(
            "run CC --policy mrd --cache-mb 64 --nodes 4 --adhoc --seed 7 --partitions 16 --scale 0.1",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                workload,
                policy,
                cache_bytes,
                nodes,
                adhoc,
                seed,
                params,
                ..
            } => {
                assert_eq!(workload, "CC");
                assert_eq!(policy, "mrd");
                assert_eq!(cache_bytes, Some(64 << 20));
                assert_eq!(nodes, Some(4));
                assert!(adhoc);
                assert_eq!(seed, 7);
                assert_eq!(params.partitions, 16);
                assert!((params.scale - 0.1).abs() < 1e-12);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&args("run CC")).is_err()); // missing --policy
        assert!(parse(&args("run --policy mrd")).is_err()); // missing workload
        assert!(parse(&args("run CC --policy mrd --cache-mb nope")).is_err());
        assert!(parse(&args("inspect CC --bogus")).is_err());
    }

    #[test]
    fn list_mentions_every_workload() {
        let out = execute(Command::List).unwrap();
        for &w in Workload::sparkbench() {
            assert!(out.contains(w.short_name()), "missing {}", w.short_name());
        }
    }

    #[test]
    fn inspect_reports_statistics() {
        let out = execute(parse(&args("inspect SP --partitions 8 --scale 0.05")).unwrap()).unwrap();
        assert!(out.contains("Shortest Paths"));
        assert!(out.contains("jobs:"));
        assert!(out.contains("avg stage dist:"));
    }

    #[test]
    fn inspect_unknown_workload_fails() {
        assert!(execute(parse(&args("inspect NOPE")).unwrap()).is_err());
    }

    #[test]
    fn dot_emits_graphviz() {
        let out =
            execute(parse(&args("dot TeraSort --partitions 4 --scale 0.01")).unwrap()).unwrap();
        assert!(out.starts_with("digraph"));
        let out =
            execute(parse(&args("dot TeraSort --stages --partitions 4 --scale 0.01")).unwrap())
                .unwrap();
        assert!(out.contains("cluster_j0"));
    }

    #[test]
    fn run_executes_a_simulation() {
        let out = execute(
            parse(&args(
                "run SP --policy mrd --nodes 2 --partitions 8 --scale 0.02 --cache-fraction 0.3",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("ShortestPaths under MRD(full,stage)"));
        assert!(out.contains("tasks"));
    }

    #[test]
    fn run_rejects_unknown_policy() {
        let r = execute(
            parse(&args(
                "run SP --policy optimal --nodes 2 --partitions 8 --scale 0.02",
            ))
            .unwrap(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn parse_sweep_flags() {
        let cmd = parse(&args(
            "sweep --workloads SP,CC --policies lru,mrd --fractions 0.3,0.6 --seeds 1,2 --threads 3 --csv --partitions 8",
        ))
        .unwrap();
        match cmd {
            Command::Sweep {
                workloads,
                policies,
                fractions,
                seeds,
                threads,
                csv,
                params,
                ..
            } => {
                assert_eq!(workloads, vec!["SP", "CC"]);
                assert_eq!(policies, vec!["lru", "mrd"]);
                assert_eq!(fractions, vec![0.3, 0.6]);
                assert_eq!(seeds, vec![1, 2]);
                assert_eq!(threads, 3);
                assert!(csv);
                assert_eq!(params.partitions, 8);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn sweep_defaults_are_sane() {
        match parse(&args("sweep")).unwrap() {
            Command::Sweep {
                workloads,
                policies,
                fractions,
                seeds,
                threads,
                csv,
                ..
            } => {
                assert_eq!(workloads, vec!["CC"]);
                assert_eq!(policies, vec!["lru", "mrd"]);
                assert_eq!(fractions, refdist_bench::SWEEP_FRACTIONS);
                assert_eq!(seeds, vec![42]);
                assert_eq!(threads, 0);
                assert!(!csv);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn sweep_executes_a_tiny_grid_as_csv() {
        let out = execute(
            parse(&args(
                "sweep --workloads SP --policies lru,mrd --fractions 0.3 --nodes 2 --partitions 8 --scale 0.02 --threads 2 --csv",
            ))
            .unwrap(),
        )
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 cells: {out}");
        assert!(lines[0].starts_with("workload,policy,fraction,seed"));
        assert!(lines[1].starts_with("SP,LRU,0.3000,42"));
        assert!(lines[2].starts_with("SP,MRD,0.3000,42"));
    }

    #[test]
    fn sweep_rejects_unknown_names() {
        let r = execute(parse(&args("sweep --workloads NOPE")).unwrap());
        assert!(r.is_err());
        let r = execute(parse(&args("sweep --policies optimal")).unwrap());
        assert!(r.is_err());
        assert!(parse(&args("sweep --fractions ,")).is_err());
    }

    #[test]
    fn parse_chaos_defaults_and_flags() {
        match parse(&args("chaos SP")).unwrap() {
            Command::Chaos {
                workload,
                policies,
                rates,
                ..
            } => {
                assert_eq!(workload, "SP");
                assert_eq!(policies, vec!["lru", "lrc", "mrd"]);
                assert_eq!(rates, vec![0.0, 0.02, 0.05, 0.1]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&args("chaos CC --policies lru,mrd --rates 0.05 --threads 2 --csv")).unwrap() {
            Command::Chaos {
                policies,
                rates,
                threads,
                csv,
                ..
            } => {
                assert_eq!(policies, vec!["lru", "mrd"]);
                assert_eq!(rates, vec![0.05]);
                assert_eq!(threads, 2);
                assert!(csv);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn chaos_rejects_bad_rates() {
        let r = execute(parse(&args("chaos SP --rates 1.5")).unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn chaos_builds_a_deterministic_resilience_curve() {
        // Rate 0 is injected as the baseline even though --rates omits it,
        // and the whole table is byte-stable across runs and thread counts.
        let run = |threads: &str| {
            execute(
                parse(&args(&format!(
                    "chaos SP --policies lru,lrc,mrd --rates 0.05 --nodes 2 \
                     --partitions 8 --scale 0.02 --cache-fraction 0.3 --threads {threads} --csv",
                )))
                .unwrap(),
            )
            .unwrap()
        };
        let out = run("2");
        assert_eq!(out, run("1"), "thread count changed chaos output");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 7, "header + 2 rates x 3 policies: {out}");
        assert!(lines[0].starts_with("rate,policy"));
        // Baseline rows normalize to exactly 1.
        assert!(lines[1].starts_with("0.0000,LRU,"));
        assert!(lines[1].contains(",1.0000,"));
        // Chaotic rows actually drew faults.
        let chaotic: Vec<&&str> = lines[4..].iter().collect();
        assert!(chaotic.iter().all(|l| l.starts_with("0.0500,")));
        assert!(
            chaotic.iter().any(|l| {
                let cols: Vec<&str> = l.split(',').collect();
                cols[4] != "0" || cols[6] != "0" || cols[7] != "0"
            }),
            "no faults drawn at rate 0.05: {out}"
        );
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        match parse(&args("serve CC")).unwrap() {
            Command::Serve {
                workload,
                policy,
                tenants,
                gap_ms,
                scheds,
                quotas,
                no_intern,
                mix,
                ..
            } => {
                assert_eq!(workload, "CC");
                assert_eq!(policy, "mrd");
                assert_eq!(tenants, 3);
                assert_eq!(gap_ms, 500);
                assert_eq!(scheds, vec!["fifo", "fair-share"]);
                assert_eq!(quotas, vec!["unlimited", "equal-share"]);
                assert!(!no_intern);
                assert!(mix.is_empty());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&args(
            "serve SP --policy lru --tenants 5 --gap-ms 250 --scheds fair-share --quotas equal-share,64",
        ))
        .unwrap()
        {
            Command::Serve {
                policy,
                tenants,
                gap_ms,
                scheds,
                quotas,
                ..
            } => {
                assert_eq!(policy, "lru");
                assert_eq!(tenants, 5);
                assert_eq!(gap_ms, 250);
                assert_eq!(scheds, vec!["fair-share"]);
                assert_eq!(quotas, vec!["equal-share", "64"]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // --mix makes the positional workload optional; --no-intern sticks.
        match parse(&args("serve --mix SP,CC,KM --no-intern")).unwrap() {
            Command::Serve {
                workload,
                no_intern,
                mix,
                ..
            } => {
                assert_eq!(workload, "SP");
                assert!(no_intern);
                assert_eq!(mix, vec!["SP", "CC", "KM"]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_bad_inputs() {
        assert!(execute(parse(&args("serve SP --policy belady")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --tenants 0")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --scheds lottery")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --quotas 64kb")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --policy optimal")).unwrap()).is_err());
        assert!(execute(parse(&args("serve --mix SP,bogus")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --admission lottery")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --upfront --app-retries 2")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --upfront --max-active 2")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --max-active 0")).unwrap()).is_err());
        assert!(execute(parse(&args("serve SP --churn 0,5")).unwrap()).is_err());
    }

    #[test]
    fn parse_serve_resilience_flags() {
        match parse(&args(
            "serve SP --churn 2000,500 --max-active 2 --admission shed \
             --deadline 4000000 --app-retries 3",
        ))
        .unwrap()
        {
            Command::Serve {
                churn,
                max_active,
                admission,
                deadline_us,
                app_retries,
                ..
            } => {
                assert_eq!(churn, Some((2000, 500)));
                assert_eq!(max_active, Some(2));
                assert_eq!(admission, "shed");
                assert_eq!(deadline_us, Some(4_000_000));
                assert_eq!(app_retries, 3);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // --churn is strictly a pair.
        assert!(parse(&args("serve SP --churn 2000")).is_err());
        assert!(parse(&args("serve SP --churn 1,2,3")).is_err());
        // The passive defaults survive a plain parse.
        match parse(&args("serve SP")).unwrap() {
            Command::Serve {
                churn,
                max_active,
                admission,
                deadline_us,
                app_retries,
                ..
            } => {
                assert_eq!(churn, None);
                assert_eq!(max_active, None);
                assert_eq!(admission, "queue");
                assert_eq!(deadline_us, None);
                assert_eq!(app_retries, 0);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn serve_resilience_flags_surface_in_output() {
        let cmd = "serve SP --policy lru --tenants 2 --apps 4 --gap-ms 50 --nodes 2 \
                   --partitions 8 --scale 0.02 --cache-fraction 0.3 --scheds fair-share \
                   --quotas unlimited --max-active 1 --admission queue --deadline 120000000";
        let out = execute(parse(&args(cmd)).unwrap()).unwrap();
        assert!(
            out.contains("resilience: max-active 1 (queue), deadline 120.000s"),
            "{out}"
        );
        // A non-passive config turns on the stream-level resilience and SLO
        // accounting lines.
        assert!(out.contains("queue delay p95"), "{out}");
        assert!(out.contains("slo:"), "{out}");
        let again = execute(parse(&args(cmd)).unwrap()).unwrap();
        assert_eq!(out, again, "resilient serve must replay byte-identically");
    }

    #[test]
    fn chaos_serve_reports_slo_attainment_curve() {
        let cmd = "chaos SP --serve --policies lru --rates 0.5 --tenants 2 --apps 4 \
                   --gap-ms 50 --nodes 3 --partitions 8 --scale 0.02 --cache-fraction 0.3 \
                   --app-retries 2 --csv";
        let out = execute(parse(&args(cmd)).unwrap()).unwrap();
        let again = execute(parse(&args(cmd)).unwrap()).unwrap();
        assert_eq!(out, again, "chaos --serve must be deterministic");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "header + rate 0 + rate 0.5: {out}");
        assert!(lines[0].starts_with("policy,rate,mtbf_s,deadline_s"));
        // The fault-free row attains 100% against its own derived deadline
        // (twice its own max JCT).
        assert!(lines[1].starts_with("LRU,0.0000,-,"), "{out}");
        assert!(lines[1].contains(",1.0000,"), "{out}");
        // The churned row actually took node crashes.
        let cols: Vec<&str> = lines[2].split(',').collect();
        assert!(lines[2].starts_with("LRU,0.5000,2.0,"), "{out}");
        assert_ne!(cols[8], "0", "no crashes at rate 0.5: {out}");
    }

    #[test]
    fn serve_mix_cycles_templates_and_reports_interning() {
        let out = execute(
            parse(&args(
                "serve --mix SP,CC --policy lru --tenants 2 --apps 6 --gap-ms 50 \
                 --nodes 2 --partitions 8 --scale 0.02 --cache-fraction 0.3 \
                 --scheds fifo --quotas unlimited",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(out.starts_with("SP+CC x 2 tenants"), "{out}");
        assert!(
            out.contains("admission: 2 distinct templates interned over 6 submissions"),
            "{out}"
        );
        // Replanning every admission must not change the simulation, only
        // the admission-path accounting line.
        let cold = execute(
            parse(&args(
                "serve --mix SP,CC --policy lru --tenants 2 --apps 6 --gap-ms 50 \
                 --nodes 2 --partitions 8 --scale 0.02 --cache-fraction 0.3 \
                 --scheds fifo --quotas unlimited --no-intern",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(!cold.contains("admission:"), "{cold}");
        assert_eq!(
            out.replace("admission: 2 distinct templates interned over 6 submissions\n", ""),
            cold
        );
    }

    #[test]
    fn serve_reports_per_tenant_distributions() {
        // The acceptance grid: >= 3 tenants, both schedulers, >= 2 quota
        // policies, per-tenant mean/p95/p99 JCT plus the cross-tenant
        // eviction table in every section.
        let out = execute(
            parse(&args(
                "serve SP --policy lru --tenants 3 --gap-ms 100 --nodes 2 \
                 --partitions 8 --scale 0.02 --cache-fraction 0.3",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("serve: 3 apps over 3 tenants, fifo, quota unlimited"));
        assert!(out.contains("serve: 3 apps over 3 tenants, fifo, quota equal-share"));
        assert!(out.contains("serve: 3 apps over 3 tenants, fair-share, quota unlimited"));
        assert!(out.contains("serve: 3 apps over 3 tenants, fair-share, quota equal-share"));
        for t in 0..3 {
            assert!(out.contains(&format!("tenant {t}: 1 apps, mean JCT ")), "{out}");
        }
        assert!(out.contains("p95") && out.contains("p99"));
        assert!(out.contains("cross-tenant evictions"));
        // Deterministic: replaying the same master seed reproduces the grid.
        let again = execute(
            parse(&args(
                "serve SP --policy lru --tenants 3 --gap-ms 100 --nodes 2 \
                 --partitions 8 --scale 0.02 --cache-fraction 0.3",
            ))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn compare_ranks_policies() {
        let out = execute(
            parse(&args(
                "compare SP --nodes 2 --partitions 8 --scale 0.02 --cache-fraction 0.3",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("LRU"));
        assert!(out.contains("MRD(full,stage)"));
        // The table is ranked: the first data row is the fastest policy.
        assert!(out.contains("vs LRU"));
    }
}
