//! # refdist — Reference-distance cache management for DAG frameworks
//!
//! A from-scratch Rust reproduction of *"Reference-distance Eviction and
//! Prefetching for Cache Management in Spark"* (Perez, Zhou, Cheng —
//! ICPP 2018): the **MRD** (Most Reference Distance) cache policy, the
//! Spark-like DAG execution substrate it needs, the baseline policies it is
//! compared against (LRU, LRC, MemTune, Belady-MIN), and the SparkBench /
//! HiBench workload models used in the paper's evaluation.
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`dag`] — RDD lineage, DAGScheduler-style stage construction, DAG
//!   reference analysis (paper §3).
//! * [`core`] — the MRD policy: reference distances, `AppProfiler`,
//!   `MrdManager`, `CacheMonitor` (paper §4).
//! * [`policies`] — LRU / FIFO / Random / LRC / MemTune / Belady baselines.
//! * [`store`] — per-node block managers and the cluster block master.
//! * [`cluster`] — the deterministic discrete-event cluster simulator and
//!   the Table-4 cluster presets.
//! * [`workloads`] — the 14 SparkBench + 6 HiBench workload DAG generators.
//! * [`metrics`] — summaries, OLS regression, table/CSV formatting.
//! * [`simcore`] — event queue, virtual time, bandwidth resources.

pub mod cli;

pub use refdist_bench as bench;
pub use refdist_cluster as cluster;
pub use refdist_core as core;
pub use refdist_dag as dag;
pub use refdist_metrics as metrics;
pub use refdist_policies as policies;
pub use refdist_simcore as simcore;
pub use refdist_store as store;
pub use refdist_workloads as workloads;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use refdist_cluster::{ClusterConfig, RunReport, SimConfig, Simulation};
    pub use refdist_core::{
        AppProfiler, DistanceMetric, MrdConfig, MrdMode, MrdPolicy, ProfileMode, ProfileStore,
    };
    pub use refdist_dag::{AppBuilder, AppPlan, AppSpec, RefAnalyzer, StorageLevel};
    pub use refdist_policies::{CachePolicy, PolicyKind};
    pub use refdist_workloads::{Workload, WorkloadParams};
}
