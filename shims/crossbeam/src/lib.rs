//! Offline stand-in for `crossbeam`, covering the scoped-thread API this
//! workspace uses (`crossbeam::scope`, `Scope::spawn`), implemented on
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantics match crossbeam 0.8: `scope` joins every spawned thread before
//! returning, and returns `Err` with the first panic payload if any child
//! panicked (instead of unwinding into the caller).

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    //! `crossbeam::thread` — scoped threads.
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// Error type carried by a panicked scope: the panic payload.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to spawned threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. As in crossbeam, the closure receives the
    /// scope again so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        let handle = inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        });
        ScopedJoinHandle {
            handle,
            _marker: PhantomData,
        }
    }
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    handle: std::thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread and return its result (`Err` on panic).
    pub fn join(self) -> Result<T, PanicPayload> {
        self.handle.join()
    }
}

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns. Returns
/// `Err(payload)` if any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    // std::thread::scope resumes child panics in the parent at the end of
    // the scope; catch that to reproduce crossbeam's Result-based contract.
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let r = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(r.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child failed"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_returns_thread_result() {
        scope(|s| {
            let h = s.spawn(|_| 6 * 7);
            assert_eq!(h.join().unwrap(), 42);
        })
        .unwrap();
    }
}
