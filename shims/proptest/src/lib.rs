//! Offline stand-in for `proptest` (1.x API surface).
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of proptest the workspace's property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, [`prop_oneof!`], ranges and
//! tuples as strategies, [`collection::vec`], [`sample::Index`],
//! [`arbitrary::any`], and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the normal assertion message; it does not minimize. Tests are seeded
//!   per-test-name, so failures reproduce exactly on re-run.
//! * **Uniform sizing.** Collection lengths are drawn uniformly from their
//!   range rather than via proptest's biased growth schedule.
//! * `PROPTEST_CASES` in the environment overrides the per-test case count,
//!   as upstream does.

pub mod test_runner {
    //! Config and deterministic RNG for test case generation.

    /// Per-test configuration (subset of upstream's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count: `PROPTEST_CASES` env override, else `self`.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG (splitmix64 core) seeded from the test's full path,
    /// so every test owns a stable, independent stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs alternatives");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    //! [`any`] and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Ranges usable as a collection size.
    pub trait SizeRange {
        /// Draw a size.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod sample {
    //! Index sampling.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection of as-yet-unknown size
    /// (`any::<prop::sample::Index>()`, then `.index(len)`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Map to a concrete index in `[0, size)`. `size` must be non-zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index an empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module alias.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)` body
/// runs for `cases` generated inputs (deterministically seeded per test).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let cases = $crate::test_runner::ProptestConfig::effective_cases(&config);
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let __inputs = format!(
                    concat!("[case {}/{}]", $(" ", stringify!($arg), " = {:?}",)+),
                    __case + 1, cases $(, &$arg)+
                );
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = __result {
                    eprintln!("proptest case failed: {}", __inputs);
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a property body (panics with the generated inputs logged).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Kind {
        A(u8),
        B(bool),
    }

    fn kind() -> impl Strategy<Value = Kind> {
        prop_oneof![
            any::<u8>().prop_map(Kind::A),
            any::<bool>().prop_map(Kind::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vecs_respect_size(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn tuples_and_oneof(pair in (0u8..4, any::<bool>()), k in kind()) {
            prop_assert!(pair.0 < 4);
            match k {
                Kind::A(_) | Kind::B(_) => {}
            }
        }

        #[test]
        fn index_maps_into_range(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..100, 5..10);
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        let mut c = TestRng::for_test("x::z");
        let _ = strat.generate(&mut c);
    }
}
