//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the subset of the API this workspace uses: locks return guards
//! directly (no `Result`), recovering from poisoning transparently — a
//! panicked worker thread is already propagated by the scoped-thread APIs
//! used alongside these locks.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` never returns a poisoned error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking. Poison is ignored (the data is returned
    /// as-is); panic propagation is the scoped-thread API's job.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with the same panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
