//! Offline stand-in for `criterion` (0.5 API surface).
//!
//! Provides `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical engine it runs a short warmup followed by a fixed measurement
//! window and reports mean time per iteration (plus element throughput when
//! configured). Good enough to keep `cargo bench` functional and relative
//! numbers meaningful in an offline container.
//!
//! When the harness is invoked with `--test` (as `cargo test` does for
//! benches without `harness = false` targets) each benchmark body runs once.

use std::time::{Duration, Instant};

/// Measurement throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    secs_per_iter: f64,
}

impl Bencher {
    /// Run `routine` repeatedly and record mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.secs_per_iter = 0.0;
            return;
        }
        // Warmup: let caches/allocator settle and estimate per-iter cost.
        let warmup_deadline = Instant::now() + Duration::from_millis(120);
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warmup_deadline {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Measurement window: ~500ms worth of iterations, at least 10.
        let target = ((0.5 / est.max(1e-9)) as u64).clamp(10, 1_000_000);
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        self.secs_per_iter = start.elapsed().as_secs_f64() / target as f64;
    }
}

fn format_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:9.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:9.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:9.2} ms", s * 1e3)
    } else {
        format!("{:9.2} s ", s)
    }
}

fn run_one(label: &str, test_mode: bool, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        test_mode,
        secs_per_iter: 0.0,
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok");
        return;
    }
    let mut line = format!("{label:<40} time: {}/iter", format_secs(b.secs_per_iter));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if b.secs_per_iter > 0.0 {
            let rate = count as f64 / b.secs_per_iter;
            line.push_str(&format!("   thrpt: {rate:12.0} {unit}/s"));
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Adjust sample count (accepted for API compatibility; ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Adjust measurement time (accepted for API compatibility; ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.criterion.test_mode, self.throughput, &mut f);
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.criterion.test_mode, self.throughput, &mut |b| {
            f(b, input)
        });
    }

    /// Finish the group (prints nothing extra here).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_label(), self.test_mode, None, &mut f);
        self
    }

    /// Configuration hook (accepted for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("lru", 64).into_label(), "lru/64");
        assert_eq!(BenchmarkId::from_parameter("kmeans").into_label(), "kmeans");
    }

    #[test]
    fn bencher_runs_routine_in_test_mode() {
        let mut b = Bencher {
            test_mode: true,
            secs_per_iter: -1.0,
        };
        let mut hits = 0;
        b.iter(|| hits += 1);
        assert_eq!(hits, 1);
        assert_eq!(b.secs_per_iter, 0.0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &7, |b, &x| {
            b.iter(|| x * 2);
            ran += 1;
        });
        group.bench_function("plain", |b| {
            b.iter(|| ());
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 2);
    }
}
