//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, dependency-free implementation of the pieces it uses:
//! [`rngs::SmallRng`] (xoshiro256++ seeded through splitmix64 — the same
//! generator family the real `small_rng` feature provides), the [`Rng`]
//! extension trait (`random`, `random_bool`, `random_range`) and
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`).
//!
//! Streams are deterministic, portable across platforms, and stable across
//! versions of this shim — experiment reproducibility depends on that, so do
//! not change the generator or the range-mapping arithmetic.

/// Core RNG abstraction: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for `SmallRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64: seeds the main generator and decorrelates nearby seeds.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Values samplable uniformly from a range (subset of `rand`'s
/// `SampleUniform`/`SampleRange` machinery).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, irrelevant at simulation scale and deterministic.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128).wrapping_add(hi as u128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::draw(rng);
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as u128).wrapping_add(hi as u128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Types with a canonical "uniform over all values" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> f64 {
        unit_f64(rng)
    }
}

/// Extension methods every RNG gets (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniformly random value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind `rand`'s `SmallRng`
    /// on 64-bit platforms. Not cryptographically secure; statistically
    /// excellent for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one degenerate case for xoshiro.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(xs[0], c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.random_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u = r.random_range(0u64..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn unit_floats_cover_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        let vals: Vec<f64> = (0..1000).map(|_| r.random::<f64>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        assert!(vals.iter().any(|&v| v < 0.1));
        assert!(vals.iter().any(|&v| v > 0.9));
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::seed_from_u64(0);
        let v: Vec<u64> = (0..4).map(|_| r.random()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }
}
