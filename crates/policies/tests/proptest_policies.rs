//! Property tests shared by every cache policy: whatever event sequence a
//! policy observes, victim selection must stay sound.

use proptest::prelude::*;
use refdist_dag::{AppProfile, BlockId, JobId, RddId, RddRefs, StageId};
use refdist_policies::{
    BeladyMinPolicy, CachePolicy, FifoPolicy, LrcPolicy, LruPolicy, MemTunePolicy, RandomPolicy,
};
use refdist_store::NodeId;
use std::collections::BTreeMap;

const NODE: NodeId = NodeId(0);

#[derive(Debug, Clone)]
enum Ev {
    Insert(u8),
    Access(u8),
    Remove(u8),
    Stage(u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        any::<u8>().prop_map(Ev::Insert),
        any::<u8>().prop_map(Ev::Access),
        any::<u8>().prop_map(Ev::Remove),
        (0u8..32).prop_map(Ev::Stage),
    ]
}

fn blk(b: u8) -> BlockId {
    BlockId::new(RddId(b as u32 % 12), b as u32 / 12)
}

/// A profile where rdd r is referenced at stages r, r+3, r+6.
fn profile() -> AppProfile {
    let mut per_rdd = BTreeMap::new();
    for r in 0..12u32 {
        per_rdd.insert(
            RddId(r),
            RddRefs {
                rdd: RddId(r),
                stages: vec![StageId(r), StageId(r + 3), StageId(r + 6)].into(),
                jobs: vec![
                    JobId(r / 4),
                    JobId((r + 3).div_ceil(4)),
                    JobId((r + 6).div_ceil(4)),
                ]
                .into(),
            },
        );
    }
    AppProfile {
        per_rdd,
        per_stage: vec![Default::default(); 40],
        stage_job: (0..40).map(|s| JobId(s / 4)).collect(),
        num_jobs: 10,
    }
}

fn drive(policy: &mut dyn CachePolicy, events: &[Ev], candidates: &[BlockId]) {
    let prof = profile();
    policy.on_job_submit(JobId(0), &prof);
    let mut stage = 0u8;
    for ev in events {
        match ev {
            Ev::Insert(b) => policy.on_insert(NODE, blk(*b)),
            Ev::Access(b) => policy.on_access(NODE, blk(*b)),
            Ev::Remove(b) => policy.on_remove(NODE, blk(*b)),
            Ev::Stage(s) => {
                stage = stage.max(*s); // stages only move forward
                policy.on_stage_start(StageId(stage as u32), &prof);
            }
        }
        // After every event the policy must pick only from the candidates,
        // and must pick *something* when candidates exist.
        let v = policy.pick_victim(NODE, candidates);
        if candidates.is_empty() {
            assert!(v.is_none());
        } else {
            assert!(candidates.contains(&v.expect("victim from non-empty candidates")));
        }
        // Purge and prefetch suggestions also stay within their inputs.
        for b in policy.purge_candidates(candidates) {
            assert!(candidates.contains(&b));
        }
        for b in policy.prefetch_order(NODE, candidates) {
            assert!(candidates.contains(&b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_policies_pick_only_candidates(
        events in prop::collection::vec(ev_strategy(), 0..80),
        cands in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let candidates: Vec<BlockId> = {
            let mut v: Vec<BlockId> = cands.iter().map(|&b| blk(b)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let trace: Vec<BlockId> = (0..64u8).map(blk).collect();
        let mut policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(LruPolicy::new()),
            Box::new(FifoPolicy::new()),
            Box::new(RandomPolicy::new(7)),
            Box::new(LrcPolicy::new()),
            Box::new(MemTunePolicy::new()),
            Box::new(BeladyMinPolicy::from_trace(&trace)),
        ];
        for p in &mut policies {
            drive(&mut **p, &events, &candidates);
        }
    }

    #[test]
    fn lrc_remaining_counts_never_underflow(
        events in prop::collection::vec(ev_strategy(), 0..120),
    ) {
        let mut p = LrcPolicy::new();
        p.on_job_submit(JobId(0), &profile());
        for ev in &events {
            match ev {
                Ev::Insert(b) => p.on_insert(NODE, blk(*b)),
                Ev::Access(b) => p.on_access(NODE, blk(*b)),
                Ev::Remove(b) => p.on_remove(NODE, blk(*b)),
                Ev::Stage(_) => {}
            }
        }
        // Saturation, never wraparound: all remaining counts <= 3 (the
        // profile's per-RDD total).
        for b in 0..=255u8 {
            assert!(p.remaining(blk(b)) <= 3);
        }
    }

    #[test]
    fn belady_is_stable_under_replay(
        accesses in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        // Replaying the exact trace leaves the oracle with nothing left.
        let trace: Vec<BlockId> = accesses.iter().map(|&b| blk(b)).collect();
        let mut p = BeladyMinPolicy::from_trace(&trace);
        for &b in &trace {
            p.on_access(NODE, b);
        }
        for &b in &trace {
            assert_eq!(p.next_use(b), None);
        }
    }
}
