//! Differential property test: for every policy, the indexed
//! `select_victims` batch must produce the *identical* victim sequence as
//! the pre-index protocol — a naive sorted-scan `pick_victim` per victim
//! with `on_remove` notifications in between, exactly as the old
//! `Engine::evict_one` loop drove it. Randomized multi-node traces including
//! cross-node block copies (the orphan-rekey edge case) must not produce a
//! single divergent victim.

use proptest::prelude::*;
use refdist_dag::{AppProfile, BlockId, JobId, RddId, RddRefs, StageId, StageTouches};
use refdist_policies::{
    BeladyMinPolicy, CachePolicy, FifoPolicy, LrcPolicy, LruPolicy, MemTunePolicy, RandomPolicy,
};
use refdist_store::NodeId;
use std::collections::BTreeMap;

const NODES: u32 = 2;

#[derive(Debug, Clone)]
enum Ev {
    /// Insert block b on node n (size derived from b).
    Insert(u8, u8),
    /// Access block b on node n.
    Access(u8, u8),
    /// Remove block b from node n (if resident there).
    Remove(u8, u8),
    /// Evict until `shortfall` bytes are freed on node n.
    Evict(u8, u8),
    /// Advance to a stage (monotone).
    Stage(u8),
    /// Submit a job, revealing the profile again (LRC rekey-all path).
    Job(u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(b, n)| Ev::Insert(b, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(b, n)| Ev::Insert(b, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(b, n)| Ev::Access(b, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(b, n)| Ev::Remove(b, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(s, n)| Ev::Evict(s, n)),
        (0u8..24).prop_map(Ev::Stage),
        (0u8..6).prop_map(Ev::Job),
    ]
}

fn blk(b: u8) -> BlockId {
    // 8 RDDs x 4 partitions: small enough that traces collide on blocks and
    // cross-node copies actually happen.
    BlockId::new(RddId(b as u32 % 8), (b as u32 / 8) % 4)
}

fn node(n: u8) -> NodeId {
    NodeId(n as u32 % NODES)
}

fn size_of(b: BlockId) -> u64 {
    // Deterministic, uneven sizes so shortfall accumulation is exercised.
    u64::from(b.rdd.0 + b.partition) % 3 + 1
}

/// A profile where rdd r is referenced at stages r, r+2, r+5 (and a stage
/// window for MemTune); `Job` events re-submit it, which is LRC's rekey-all
/// path and MRD's broadcast path.
fn profile() -> AppProfile {
    let mut per_rdd = BTreeMap::new();
    let mut per_stage = vec![StageTouches::default(); 32];
    for r in 0..8u32 {
        let stages = [r, r + 2, r + 5];
        per_rdd.insert(
            RddId(r),
            RddRefs {
                rdd: RddId(r),
                stages: stages.iter().map(|&s| StageId(s)).collect(),
                jobs: stages.iter().map(|&s| JobId(s / 4)).collect(),
            },
        );
        for &s in &stages {
            per_stage[s as usize].reads.push(RddId(r));
        }
    }
    AppProfile {
        per_rdd,
        per_stage,
        stage_job: (0..32).map(|s| JobId(s / 4)).collect(),
        num_jobs: 8,
    }
}

/// Per-node resident sets, mirrored for one policy instance.
struct Cluster {
    resident: Vec<BTreeMap<BlockId, u64>>,
}

impl Cluster {
    fn new() -> Self {
        Cluster {
            resident: (0..NODES).map(|_| BTreeMap::new()).collect(),
        }
    }

    fn at(&mut self, n: NodeId) -> &mut BTreeMap<BlockId, u64> {
        &mut self.resident[n.0 as usize]
    }
}

/// The pre-index eviction protocol, verbatim: re-collect sorted candidates,
/// ask for ONE victim, notify `on_remove`, repeat until the shortfall is
/// covered or the policy gives up.
fn naive_select(
    policy: &mut dyn CachePolicy,
    n: NodeId,
    shortfall: u64,
    resident: &mut BTreeMap<BlockId, u64>,
) -> Vec<BlockId> {
    let mut victims = Vec::new();
    let mut freed = 0u64;
    while freed < shortfall {
        let cands: Vec<BlockId> = resident.keys().copied().collect();
        if cands.is_empty() {
            break;
        }
        let Some(v) = policy.pick_victim(n, &cands) else {
            break;
        };
        let size = resident.remove(&v).expect("victim must be a candidate");
        policy.on_remove(n, v);
        freed += size;
        victims.push(v);
    }
    victims
}

/// The batched protocol the runtime uses now.
fn batched_select(
    policy: &mut dyn CachePolicy,
    n: NodeId,
    shortfall: u64,
    resident: &mut BTreeMap<BlockId, u64>,
) -> Vec<BlockId> {
    let victims = policy.select_victims(n, shortfall, resident);
    for &v in &victims {
        assert!(
            resident.remove(&v).is_some(),
            "selected non-resident victim {v}"
        );
        policy.on_remove(n, v);
    }
    victims
}

/// Drive `reference` through the naive protocol and `indexed` through the
/// batched one with an identical event stream; every eviction must produce
/// the same victim sequence.
fn assert_equivalent(
    mut reference: Box<dyn CachePolicy>,
    mut indexed: Box<dyn CachePolicy>,
    events: &[Ev],
) {
    let prof = profile();
    let mut ca = Cluster::new();
    let mut cb = Cluster::new();
    reference.on_job_submit(JobId(0), &prof);
    indexed.on_job_submit(JobId(0), &prof);
    let mut stage = 0u8;
    for ev in events {
        match *ev {
            Ev::Insert(b, nn) => {
                let (b, n) = (blk(b), node(nn));
                for (p, c) in [(&mut reference, &mut ca), (&mut indexed, &mut cb)] {
                    c.at(n).insert(b, size_of(b));
                    p.on_insert(n, b);
                }
            }
            Ev::Access(b, nn) => {
                let (b, n) = (blk(b), node(nn));
                reference.on_access(n, b);
                indexed.on_access(n, b);
            }
            Ev::Remove(b, nn) => {
                let (b, n) = (blk(b), node(nn));
                // Only resident blocks can leave memory (a store-level fact
                // both mirrors share).
                if ca.at(n).remove(&b).is_some() {
                    cb.at(n).remove(&b).expect("mirrors agree on residency");
                    reference.on_remove(n, b);
                    indexed.on_remove(n, b);
                }
            }
            Ev::Evict(s, nn) => {
                let n = node(nn);
                let shortfall = u64::from(s) % 9 + 1;
                let va = naive_select(reference.as_mut(), n, shortfall, ca.at(n));
                let vb = batched_select(indexed.as_mut(), n, shortfall, cb.at(n));
                assert_eq!(
                    va, vb,
                    "victim sequences diverged (policy {}, node {n:?}, shortfall {shortfall})",
                    reference.name(),
                );
            }
            Ev::Stage(s) => {
                stage = stage.max(s);
                reference.on_stage_start(StageId(stage as u32), &prof);
                indexed.on_stage_start(StageId(stage as u32), &prof);
            }
            Ev::Job(j) => {
                reference.on_job_submit(JobId(j as u32), &prof);
                indexed.on_job_submit(JobId(j as u32), &prof);
            }
        }
        assert_eq!(ca.resident, cb.resident, "resident mirrors diverged");
    }
}

fn fresh_pair(kind: &str) -> (Box<dyn CachePolicy>, Box<dyn CachePolicy>) {
    fn build(kind: &str) -> Box<dyn CachePolicy> {
        let trace: Vec<BlockId> = (0..96u8).map(blk).collect();
        match kind {
            "lru" => Box::new(LruPolicy::new()),
            "fifo" => Box::new(FifoPolicy::new()),
            "lrc" => Box::new(LrcPolicy::new()),
            "memtune" => Box::new(MemTunePolicy::new()),
            // Same seed on both sides: the default select_victims must
            // consume the RNG exactly like repeated pick_victim calls did.
            "random" => Box::new(RandomPolicy::new(0xfeed)),
            "belady" => Box::new(BeladyMinPolicy::from_trace(&trace)),
            _ => unreachable!(),
        }
    }
    (build(kind), build(kind))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_select_matches_naive_scan(
        events in prop::collection::vec(ev_strategy(), 0..120),
    ) {
        for kind in ["lru", "fifo", "lrc", "memtune", "random", "belady"] {
            let (reference, indexed) = fresh_pair(kind);
            assert_equivalent(reference, indexed, &events);
        }
    }
}
