//! Belady's MIN — the clairvoyant optimal eviction oracle.
//!
//! The paper (§3.1) notes that DAG information only *approximates* Belady's
//! MIN because the exact task execution order is unknown ahead of time. To
//! quantify that gap we provide the real oracle: given the block access
//! trace recorded from a previous run of the same application (collected
//! with an unbounded cache so the trace is policy-independent), MIN evicts
//! the block whose next use lies furthest in the future.
//!
//! The oracle is deliberately forgiving about divergence: if the live run
//! touches blocks in a slightly different order than the trace (e.g. due to
//! recomputation after a miss), each access simply consumes that block's
//! next recorded use. Blocks with no remaining uses are infinitely far away
//! and evict first.

use crate::CachePolicy;
use refdist_dag::BlockId;
use refdist_store::NodeId;
use std::collections::{HashMap, VecDeque};

/// Belady MIN eviction over a recorded access trace.
#[derive(Debug)]
pub struct BeladyMinPolicy {
    /// Remaining use positions per block, ascending.
    future: HashMap<BlockId, VecDeque<u64>>,
}

impl BeladyMinPolicy {
    /// Build the oracle from an access trace (the order blocks are inserted
    /// or read over the whole run).
    pub fn from_trace(trace: &[BlockId]) -> Self {
        let mut future: HashMap<BlockId, VecDeque<u64>> = HashMap::new();
        for (i, &b) in trace.iter().enumerate() {
            future.entry(b).or_default().push_back(i as u64);
        }
        BeladyMinPolicy { future }
    }

    /// Position of the block's next use; `None` if never used again.
    pub fn next_use(&self, block: BlockId) -> Option<u64> {
        self.future.get(&block).and_then(|q| q.front().copied())
    }

    fn consume(&mut self, block: BlockId) {
        if let Some(q) = self.future.get_mut(&block) {
            q.pop_front();
            if q.is_empty() {
                self.future.remove(&block);
            }
        }
    }
}

impl CachePolicy for BeladyMinPolicy {
    fn name(&self) -> String {
        "Belady-MIN".into()
    }

    fn on_insert(&mut self, _node: NodeId, block: BlockId) {
        self.consume(block);
    }

    fn on_access(&mut self, _node: NodeId, block: BlockId) {
        self.consume(block);
    }

    fn pick_victim(&mut self, _node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        // Furthest next use evicts; never-used-again (None) is furthest of
        // all. Tie-break on block id for determinism.
        candidates
            .iter()
            .copied()
            .max_by_key(|b| (self.next_use(*b).map_or(u64::MAX, |p| p), *b))
    }

    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        in_memory
            .iter()
            .copied()
            .filter(|&b| self.next_use(b).is_none())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32) -> BlockId {
        BlockId::new(RddId(r), 0)
    }

    const N: NodeId = NodeId(0);

    #[test]
    fn evicts_furthest_next_use() {
        // Trace: a b a c b ... after consuming the first a and b,
        // next uses: a@2, b@4, c@3.
        let mut p = BeladyMinPolicy::from_trace(&[blk(0), blk(1), blk(0), blk(2), blk(1)]);
        p.on_insert(N, blk(0)); // consumes a@0
        p.on_insert(N, blk(1)); // consumes b@1
        let v = p.pick_victim(N, &[blk(0), blk(1)]);
        assert_eq!(v, Some(blk(1))); // b next used at 4 > a at 2
    }

    #[test]
    fn dead_blocks_evict_first() {
        let mut p = BeladyMinPolicy::from_trace(&[blk(0), blk(1), blk(0)]);
        p.on_insert(N, blk(0));
        p.on_insert(N, blk(1)); // b never used again
        assert_eq!(p.pick_victim(N, &[blk(0), blk(1)]), Some(blk(1)));
        assert_eq!(p.purge_candidates(&[blk(0), blk(1)]), vec![blk(1)]);
    }

    #[test]
    fn consume_advances_through_uses() {
        let mut p = BeladyMinPolicy::from_trace(&[blk(0), blk(0), blk(0)]);
        assert_eq!(p.next_use(blk(0)), Some(0));
        p.on_insert(N, blk(0));
        assert_eq!(p.next_use(blk(0)), Some(1));
        p.on_access(N, blk(0));
        p.on_access(N, blk(0));
        assert_eq!(p.next_use(blk(0)), None);
    }

    #[test]
    fn untraced_blocks_are_dead() {
        let mut p = BeladyMinPolicy::from_trace(&[blk(0)]);
        assert_eq!(p.next_use(blk(9)), None);
        assert_eq!(p.pick_victim(N, &[blk(0), blk(9)]), Some(blk(9)));
    }

    #[test]
    fn tolerates_extra_accesses() {
        let mut p = BeladyMinPolicy::from_trace(&[blk(0)]);
        p.on_access(N, blk(0));
        p.on_access(N, blk(0)); // beyond the trace: harmless
        assert_eq!(p.next_use(blk(0)), None);
    }
}
