//! Cache management policies.
//!
//! Defines the [`CachePolicy`] trait the cluster simulator drives, plus the
//! baseline policies the MRD paper evaluates against:
//!
//! * [`LruPolicy`] — Spark's default recency-based eviction (§2).
//! * [`FifoPolicy`], [`RandomPolicy`] — classic non-DAG baselines for
//!   ablations.
//! * [`LrcPolicy`] — Least Reference Count (Yu et al., INFOCOM'17): counts
//!   remaining DAG references per block, evicts the lowest.
//! * [`MemTunePolicy`] — MemTune's cache component (Xu et al., IPDPS'16):
//!   keeps lists of RDDs needed by runnable stages; evicts outside the list,
//!   prefetches inside it.
//! * [`BeladyMinPolicy`] — the clairvoyant MIN oracle over a recorded access
//!   trace, the unreachable upper bound MRD approximates (§3.1).
//!
//! The MRD policy itself lives in `refdist-core`; it implements the same
//! trait.

pub mod belady;
pub mod fifo;
pub mod index;
pub mod lrc;
pub mod lru;
pub mod memtune;
pub mod random;

pub use belady::BeladyMinPolicy;
pub use fifo::FifoPolicy;
pub use index::{OrderedIndex, VictimIndex};
pub use lrc::LrcPolicy;
pub use lru::LruPolicy;
pub use memtune::MemTunePolicy;
pub use random::RandomPolicy;

use refdist_dag::{AppProfile, BlockId, BlockSlots, JobId, StageId};
use refdist_store::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A cache management policy, driven by the cluster runtime.
///
/// The runtime calls the `on_*` hooks as the simulated application executes
/// and consults `pick_victim` under memory pressure, `purge_candidates` for
/// proactive cluster-wide eviction, and `prefetch_order` when a policy does
/// prefetching. All hooks are infallible and must be cheap: the paper's §4.4
/// argues MRD's bookkeeping is comparable to LRU's, and the criterion
/// benches in `refdist-bench` verify that claim for this implementation.
///
/// `Send` is a supertrait so boxed policies can move into the worker threads
/// of the parallel sweep engine (`refdist-bench`'s `sweep` module); every
/// policy is plain owned data, so this costs implementors nothing.
pub trait CachePolicy: Send {
    /// Human-readable policy name for reports.
    fn name(&self) -> String;

    /// The runtime's dense block-slot arena for the application about to
    /// run, offered once before any other hook. Policies that keep
    /// per-block state may switch it to slot-indexed tables; the default
    /// ignores the arena and keeps hash-backed state. Must not change
    /// observable behavior — only representation (the hash-vs-dense
    /// differential tests drive both paths).
    fn attach_slots(&mut self, slots: &Arc<BlockSlots>) {
        let _ = slots;
    }

    /// A job's DAG has been submitted; `visible` is the reference profile
    /// known so far (whole application for recurring runs, everything up to
    /// this job for ad-hoc runs).
    fn on_job_submit(&mut self, job: JobId, visible: &AppProfile) {
        let _ = (job, visible);
    }

    /// Execution advanced to `stage`.
    fn on_stage_start(&mut self, stage: StageId, visible: &AppProfile) {
        let _ = (stage, visible);
    }

    /// `block` was inserted into `node`'s memory cache.
    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        let _ = (node, block);
    }

    /// `block` was read from `node`'s memory cache (a hit).
    fn on_access(&mut self, node: NodeId, block: BlockId) {
        let _ = (node, block);
    }

    /// `block` left `node`'s memory cache (eviction or purge).
    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        let _ = (node, block);
    }

    /// A replacement executor registered on `node` after downtime (fault
    /// injection with a rejoin): its caches are cold and any per-node agent
    /// state died with the old executor. The runtime reported each lost
    /// block via [`on_remove`](CachePolicy::on_remove) at crash time, so
    /// block-level bookkeeping is already clean; this hook is for per-node
    /// state re-issue (MRD re-sends the distance-table replica to the new
    /// monitor, paper §4.4). The default does nothing.
    fn on_node_join(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Under memory pressure on `node`, choose which of `candidates` (the
    /// node's unpinned resident blocks, in deterministic order) to evict.
    ///
    /// Returning `None` aborts the insert (nothing evictable is worth less
    /// than the incoming block, or the candidate list is empty).
    fn pick_victim(&mut self, node: NodeId, candidates: &[BlockId]) -> Option<BlockId>;

    /// Batched victim selection: under memory pressure on `node`, choose
    /// victims (in eviction order) whose sizes cover at least `shortfall`
    /// bytes. `resident` maps the node's unpinned resident blocks to their
    /// sizes; every entry was previously reported via [`on_insert`] for this
    /// node. The runtime evicts the returned blocks in order and calls
    /// [`on_remove`] for each — implementations must not mutate their own
    /// bookkeeping for the victims here.
    ///
    /// A result covering less than `shortfall` means eviction alone cannot
    /// make room (the runtime aborts the pending insert after evicting what
    /// was returned, matching the one-at-a-time protocol).
    ///
    /// The default delegates to repeated [`pick_victim`] over a shrinking
    /// sorted candidate list, so existing policies keep their exact victim
    /// sequence. Policies with an incremental index override this with an
    /// O(log n)-per-victim pop; the differential property tests assert both
    /// paths produce byte-identical sequences.
    ///
    /// [`on_insert`]: CachePolicy::on_insert
    /// [`on_remove`]: CachePolicy::on_remove
    /// [`pick_victim`]: CachePolicy::pick_victim
    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        let mut candidates: Vec<BlockId> = resident.keys().copied().collect();
        let mut victims = Vec::new();
        let mut freed = 0u64;
        while freed < shortfall && !candidates.is_empty() {
            let Some(victim) = self.pick_victim(node, &candidates) else {
                break;
            };
            let Ok(pos) = candidates.binary_search(&victim) else {
                break; // policy returned a non-candidate; abort like None
            };
            candidates.remove(pos);
            freed += resident[&victim];
            victims.push(victim);
        }
        victims
    }

    /// Among `in_memory` blocks cluster-wide, those that should be purged
    /// proactively (MRD's "all-out purge" of infinite-distance data, §4.2).
    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        let _ = in_memory;
        Vec::new()
    }

    /// Whether [`purge_candidates`] can ever return candidates or has side
    /// effects worth triggering. Policies that keep the default (empty,
    /// side-effect-free) implementation override this to `false`, letting
    /// the runtime skip the per-stage residency collection entirely.
    ///
    /// [`purge_candidates`]: CachePolicy::purge_candidates
    fn wants_purge(&self) -> bool {
        true
    }

    /// Rank `missing` blocks (cached-RDD blocks not in `node`'s memory) in
    /// prefetch priority order, best first. Empty means "prefetch nothing".
    fn prefetch_order(&mut self, node: NodeId, missing: &[BlockId]) -> Vec<BlockId> {
        let _ = (node, missing);
        Vec::new()
    }

    /// Whether the runtime should run the prefetch engine for this policy.
    fn wants_prefetch(&self) -> bool {
        false
    }
}

/// Baseline policy selector, used by benches and examples to construct
/// policies by name. MRD is constructed separately (it carries a config);
/// see `refdist_core::MrdPolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least Recently Used (Spark default).
    Lru,
    /// First-In First-Out.
    Fifo,
    /// Uniform random victim (seeded).
    Random,
    /// Least Reference Count.
    Lrc,
    /// MemTune's dependency-list policy.
    MemTune,
}

impl PolicyKind {
    /// Instantiate the baseline policy.
    pub fn build(self) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::Random => Box::new(RandomPolicy::new(0x5eed)),
            PolicyKind::Lrc => Box::new(LrcPolicy::new()),
            PolicyKind::MemTune => Box::new(MemTunePolicy::new()),
        }
    }

    /// All baseline kinds, for sweeps.
    pub fn all() -> &'static [PolicyKind] {
        &[
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::Lrc,
            PolicyKind::MemTune,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_named_policies() {
        for &k in PolicyKind::all() {
            let p = k.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        // A minimal policy relying on every default must still be usable.
        struct Nop;
        impl CachePolicy for Nop {
            fn name(&self) -> String {
                "nop".into()
            }
            fn pick_victim(&mut self, _: NodeId, c: &[BlockId]) -> Option<BlockId> {
                c.first().copied()
            }
        }
        let mut p = Nop;
        assert!(!p.wants_prefetch());
        assert!(p.purge_candidates(&[]).is_empty());
        assert!(p.prefetch_order(NodeId(0), &[]).is_empty());
        // Defaults conservatively assume purge_candidates matters.
        assert!(p.wants_purge());
    }

    #[test]
    fn baselines_opt_out_of_purging() {
        // These keep the default (empty) purge_candidates, so the runtime
        // may skip the per-stage residency collection for them entirely.
        for &k in PolicyKind::all() {
            let expected = k == PolicyKind::Lrc;
            assert_eq!(k.build().wants_purge(), expected, "{k:?}");
        }
    }
}
