//! Least Reference Count (LRC) — Yu et al., INFOCOM 2017.
//!
//! Traverses the DAG and counts the references to each data block; as the
//! application runs, each access decrements the block's remaining count, and
//! eviction removes the block with the lowest count. Blocks with zero
//! remaining references are dead and evict first.
//!
//! The paper (§2, §3.3) points out LRC's weakness that MRD fixes: a block
//! with many references *far in the future* keeps a high count and squats in
//! the cache, while a block with a single *imminent* reference is evicted.
//! This implementation follows the LRC paper's mechanism so that weakness is
//! faithfully reproduced (see `lrc_keeps_far_future_block` below).

use crate::index::VictimIndex;
use crate::CachePolicy;
use refdist_dag::{AppProfile, BlockId, JobId, RddId, StageId};
use refdist_store::NodeId;
use std::collections::{BTreeMap, HashMap};

/// LRC's eviction rank: lowest remaining count, then least recent, then id.
type LrcKey = (u32, u64);

/// Least Reference Count eviction.
#[derive(Debug, Default)]
pub struct LrcPolicy {
    /// Total references per RDD, from the DAG profile.
    total_refs: HashMap<RddId, u32>,
    /// References already consumed, per block.
    consumed: HashMap<BlockId, u32>,
    /// Logical clock for LRU tie-breaking among equal counts.
    clock: u64,
    last_touch: HashMap<BlockId, u64>,
    index: VictimIndex<LrcKey>,
}

impl LrcPolicy {
    /// New LRC policy; reference counts arrive via `on_job_submit`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remaining reference count of a block.
    pub fn remaining(&self, block: BlockId) -> u32 {
        let total = self.total_refs.get(&block.rdd).copied().unwrap_or(0);
        let used = self.consumed.get(&block).copied().unwrap_or(0);
        total.saturating_sub(used)
    }

    fn key(&self, block: BlockId) -> LrcKey {
        (
            self.remaining(block),
            self.last_touch.get(&block).copied().unwrap_or(0),
        )
    }

    fn consume(&mut self, block: BlockId) {
        *self.consumed.entry(block).or_insert(0) += 1;
        self.clock += 1;
        self.last_touch.insert(block, self.clock);
    }
}

impl CachePolicy for LrcPolicy {
    fn name(&self) -> String {
        "LRC".into()
    }

    fn on_job_submit(&mut self, _job: JobId, visible: &AppProfile) {
        // Counts are refreshed from the currently visible profile; consumed
        // references stay, so remaining = visible total - consumed.
        for (&rdd, refs) in &visible.per_rdd {
            self.total_refs.insert(rdd, refs.count() as u32);
        }
        // A profile refresh can change every block's remaining count at once.
        let total_refs = &self.total_refs;
        let consumed = &self.consumed;
        let last_touch = &self.last_touch;
        self.index.rekey_all(|b| {
            let total = total_refs.get(&b.rdd).copied().unwrap_or(0);
            let used = consumed.get(&b).copied().unwrap_or(0);
            (
                total.saturating_sub(used),
                last_touch.get(&b).copied().unwrap_or(0),
            )
        });
    }

    fn on_stage_start(&mut self, _stage: StageId, _visible: &AppProfile) {}

    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        // Creation is the block's first reference; it is consumed by the act
        // of computing the block.
        self.consume(block);
        let key = self.key(block);
        self.index.insert(node, block, key);
        // Consuming a reference changes the rank of every copy of the block.
        self.index.rekey(block, key);
    }

    fn on_access(&mut self, _node: NodeId, block: BlockId) {
        self.consume(block);
        let key = self.key(block);
        self.index.rekey(block, key);
    }

    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        self.last_touch.remove(&block);
        // `consumed` is retained: if the block is recomputed later its past
        // references are still spent. A surviving copy keeps its remaining
        // count but loses recency.
        let orphan = (self.remaining(block), 0);
        self.index.remove(node, block, orphan);
    }

    fn pick_victim(&mut self, _node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        candidates.iter().copied().min_by_key(|b| {
            (
                self.remaining(*b),
                self.last_touch.get(b).copied().unwrap_or(0),
                *b,
            )
        })
    }

    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        self.index.select(node, shortfall, resident)
    }

    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        // Zero remaining references = dead data; LRC drops it eagerly.
        in_memory
            .iter()
            .copied()
            .filter(|&b| self.remaining(b) == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddRefs;
    use std::collections::BTreeMap;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    const N: NodeId = NodeId(0);

    /// Profile stub: rdd -> reference stages.
    fn profile(entries: &[(u32, &[u32])]) -> AppProfile {
        let mut per_rdd = BTreeMap::new();
        let mut max_stage = 0;
        for &(r, stages) in entries {
            per_rdd.insert(
                RddId(r),
                RddRefs {
                    rdd: RddId(r),
                    stages: stages.iter().map(|&s| StageId(s)).collect(),
                    jobs: stages.iter().map(|_| JobId(0)).collect(),
                },
            );
            max_stage = max_stage.max(stages.iter().copied().max().unwrap_or(0));
        }
        AppProfile {
            per_rdd,
            per_stage: vec![Default::default(); max_stage as usize + 1],
            stage_job: vec![JobId(0); max_stage as usize + 1].into(),
            num_jobs: 1,
        }
    }

    #[test]
    fn counts_initialize_from_profile() {
        let mut p = LrcPolicy::new();
        p.on_job_submit(JobId(0), &profile(&[(0, &[0, 2, 4]), (1, &[1])]));
        assert_eq!(p.remaining(blk(0, 0)), 3);
        assert_eq!(p.remaining(blk(1, 0)), 1);
        assert_eq!(p.remaining(blk(9, 0)), 0); // unknown rdd
    }

    #[test]
    fn insert_and_access_consume_references() {
        let mut p = LrcPolicy::new();
        p.on_job_submit(JobId(0), &profile(&[(0, &[0, 2, 4])]));
        p.on_insert(N, blk(0, 0));
        assert_eq!(p.remaining(blk(0, 0)), 2);
        p.on_access(N, blk(0, 0));
        assert_eq!(p.remaining(blk(0, 0)), 1);
        p.on_access(N, blk(0, 0));
        assert_eq!(p.remaining(blk(0, 0)), 0);
        p.on_access(N, blk(0, 0)); // over-consumption saturates
        assert_eq!(p.remaining(blk(0, 0)), 0);
    }

    #[test]
    fn evicts_lowest_count() {
        let mut p = LrcPolicy::new();
        p.on_job_submit(JobId(0), &profile(&[(0, &[0, 2, 4, 6]), (1, &[1, 3])]));
        p.on_insert(N, blk(0, 0)); // remaining 3
        p.on_insert(N, blk(1, 0)); // remaining 1
        let v = p.pick_victim(N, &[blk(0, 0), blk(1, 0)]);
        assert_eq!(v, Some(blk(1, 0)));
    }

    #[test]
    fn lrc_keeps_far_future_block() {
        // The pathology MRD fixes (paper §3.3, RDD22 example): a block with
        // many far-future references beats a block with one imminent
        // reference under LRC.
        let mut p = LrcPolicy::new();
        p.on_job_submit(JobId(0), &profile(&[(0, &[0, 90, 95, 99]), (1, &[1, 2])]));
        p.on_insert(N, blk(0, 0)); // 3 remaining, all far away
        p.on_insert(N, blk(1, 0)); // 1 remaining, imminent (stage 2)
                                   // LRC evicts the imminent single-reference block.
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(1, 0)]), Some(blk(1, 0)));
    }

    #[test]
    fn dead_blocks_purge() {
        let mut p = LrcPolicy::new();
        p.on_job_submit(JobId(0), &profile(&[(0, &[0]), (1, &[1, 5])]));
        p.on_insert(N, blk(0, 0)); // consumed its only ref
        p.on_insert(N, blk(1, 0)); // one ref left
        let purge = p.purge_candidates(&[blk(0, 0), blk(1, 0)]);
        assert_eq!(purge, vec![blk(0, 0)]);
    }

    #[test]
    fn ties_break_by_recency() {
        let mut p = LrcPolicy::new();
        p.on_job_submit(JobId(0), &profile(&[(0, &[0, 2]), (1, &[1, 3])]));
        p.on_insert(N, blk(0, 0)); // remaining 1
        p.on_insert(N, blk(1, 0)); // remaining 1, touched later
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(1, 0)]), Some(blk(0, 0)));
    }

    #[test]
    fn profile_update_extends_counts() {
        // Ad-hoc mode: a later job reveals more references.
        let mut p = LrcPolicy::new();
        p.on_job_submit(JobId(0), &profile(&[(0, &[0])]));
        p.on_insert(N, blk(0, 0));
        assert_eq!(p.remaining(blk(0, 0)), 0);
        p.on_job_submit(JobId(1), &profile(&[(0, &[0, 5, 7])]));
        assert_eq!(p.remaining(blk(0, 0)), 2);
    }

    #[test]
    fn no_prefetching() {
        let p = LrcPolicy::new();
        assert!(!p.wants_prefetch());
    }
}
