//! Least Recently Used — Spark's default cache policy.
//!
//! DAG-oblivious: tracks a logical access clock per block and evicts the
//! block idle the longest. This is the baseline every figure in the paper
//! normalizes against.

use crate::index::VictimIndex;
use crate::CachePolicy;
use refdist_dag::BlockId;
use refdist_store::NodeId;
use std::collections::{BTreeMap, HashMap};

/// LRU eviction.
///
/// The recency clock is global (one logical clock across nodes, matching how
/// `pick_victim` ranks any candidate list it is handed); the [`VictimIndex`]
/// mirrors it per node so batched selection pops victims in O(log n).
#[derive(Debug, Default)]
pub struct LruPolicy {
    clock: u64,
    last_touch: HashMap<BlockId, u64>,
    index: VictimIndex<u64>,
}

impl LruPolicy {
    /// New LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, block: BlockId) -> u64 {
        self.clock += 1;
        self.last_touch.insert(block, self.clock);
        self.clock
    }
}

impl CachePolicy for LruPolicy {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        let key = self.touch(block);
        self.index.insert(node, block, key);
        // The recency clock is global: a copy on another node re-ranks too.
        self.index.rekey(block, key);
    }

    fn on_access(&mut self, _node: NodeId, block: BlockId) {
        let key = self.touch(block);
        self.index.rekey(block, key);
    }

    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        self.last_touch.remove(&block);
        // A surviving copy on another node loses its recency (the clock is
        // global), so it re-ranks as untracked: key 0.
        self.index.remove(node, block, 0);
    }

    fn pick_victim(&mut self, _node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        candidates
            .iter()
            .copied()
            .min_by_key(|b| (self.last_touch.get(b).copied().unwrap_or(0), *b))
    }

    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        self.index.select(node, shortfall, resident)
    }

    fn wants_purge(&self) -> bool {
        false // recency-only: never purges proactively
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    const N: NodeId = NodeId(0);

    #[test]
    fn evicts_least_recently_touched() {
        let mut p = LruPolicy::new();
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        p.on_insert(N, blk(2, 0));
        p.on_access(N, blk(0, 0)); // 0 is now most recent
        let v = p.pick_victim(N, &[blk(0, 0), blk(1, 0), blk(2, 0)]);
        assert_eq!(v, Some(blk(1, 0)));
    }

    #[test]
    fn access_resets_recency() {
        let mut p = LruPolicy::new();
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        p.on_access(N, blk(0, 0));
        p.on_access(N, blk(1, 0));
        p.on_access(N, blk(0, 0));
        let v = p.pick_victim(N, &[blk(0, 0), blk(1, 0)]);
        assert_eq!(v, Some(blk(1, 0)));
    }

    #[test]
    fn untracked_blocks_evict_first() {
        let mut p = LruPolicy::new();
        p.on_insert(N, blk(0, 0));
        // blk(1,0) never seen by the policy: treated as oldest.
        let v = p.pick_victim(N, &[blk(0, 0), blk(1, 0)]);
        assert_eq!(v, Some(blk(1, 0)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut p = LruPolicy::new();
        assert_eq!(p.pick_victim(N, &[]), None);
    }

    #[test]
    fn remove_forgets_state() {
        let mut p = LruPolicy::new();
        p.on_insert(N, blk(0, 0));
        p.on_remove(N, blk(0, 0));
        assert!(p.last_touch.is_empty());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut p = LruPolicy::new();
        // Neither candidate tracked: ties broken by block id.
        let v = p.pick_victim(N, &[blk(2, 0), blk(1, 0)]);
        assert_eq!(v, Some(blk(1, 0)));
    }
}
