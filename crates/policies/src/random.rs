//! Uniform random eviction (seeded, deterministic per run).
//!
//! An ablation baseline: any DAG-aware policy should comfortably beat it.

use crate::CachePolicy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use refdist_dag::BlockId;
use refdist_store::NodeId;

/// Random eviction with a deterministic seed.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: SmallRng,
}

impl RandomPolicy {
    /// New random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl CachePolicy for RandomPolicy {
    fn name(&self) -> String {
        "Random".into()
    }

    fn pick_victim(&mut self, _node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        if candidates.is_empty() {
            None
        } else {
            let i = self.rng.random_range(0..candidates.len());
            Some(candidates[i])
        }
    }

    fn wants_purge(&self) -> bool {
        false // evicts only under pressure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32) -> BlockId {
        BlockId::new(RddId(r), 0)
    }

    #[test]
    fn picks_from_candidates() {
        let mut p = RandomPolicy::new(1);
        let cands = [blk(0), blk(1), blk(2)];
        for _ in 0..32 {
            let v = p.pick_victim(NodeId(0), &cands).unwrap();
            assert!(cands.contains(&v));
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let cands = [blk(0), blk(1), blk(2), blk(3)];
        let mut a = RandomPolicy::new(7);
        let mut b = RandomPolicy::new(7);
        for _ in 0..16 {
            assert_eq!(
                a.pick_victim(NodeId(0), &cands),
                b.pick_victim(NodeId(0), &cands)
            );
        }
    }

    #[test]
    fn empty_is_none() {
        let mut p = RandomPolicy::new(1);
        assert_eq!(p.pick_victim(NodeId(0), &[]), None);
    }
}
