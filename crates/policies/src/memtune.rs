//! MemTune's cache eviction/prefetch component — Xu et al., IPDPS 2016.
//!
//! MemTune uses DAG dependency information, but (as the MRD paper notes in
//! §2) "it restricts to local dependencies on runnable tasks, and keeps
//! information of all the required RDD blocks in a series of lists that do
//! not provide the fine-grained time-locality information the DAG is able to
//! provide". We model that as a lookahead *window*: the RDDs referenced by
//! the currently running stage and the immediately next stage form the
//! "needed" list. Eviction prefers blocks outside the list (LRU within each
//! class); prefetching pulls blocks inside it. There is no notion of *how
//! far* in the future a reference is — which is exactly the coarseness MRD
//! improves on.
//!
//! MemTune's dynamic resizing of Spark's storage/execution memory regions is
//! out of scope (see DESIGN.md §"Known deviations").

use crate::index::VictimIndex;
use crate::CachePolicy;
use refdist_dag::{AppProfile, BlockId, RddId, StageId};
use refdist_store::NodeId;
use std::collections::{BTreeMap, HashMap, HashSet};

/// MemTune's eviction rank: un-needed first (`false < true`), LRU within
/// each class, then id.
type MemTuneKey = (bool, u64);

/// MemTune-style list-based eviction and prefetching.
///
/// The needed/un-needed partition is *maintained* across stage starts: only
/// blocks of RDDs whose window membership actually flipped are re-ranked in
/// the victim index, instead of re-classifying the entire resident list on
/// every `pick_victim` call.
#[derive(Debug, Default)]
pub struct MemTunePolicy {
    /// RDDs needed by the runnable window (current + next stage).
    needed: HashSet<RddId>,
    /// RDDs needed by the current stage specifically (prefetched first).
    needed_now: HashSet<RddId>,
    clock: u64,
    last_touch: HashMap<BlockId, u64>,
    index: VictimIndex<MemTuneKey>,
    /// Tracked blocks per RDD, so a window flip re-ranks only that RDD.
    rdd_blocks: HashMap<RddId, Vec<BlockId>>,
}

impl MemTunePolicy {
    /// New MemTune policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, block: BlockId) -> MemTuneKey {
        self.clock += 1;
        self.last_touch.insert(block, self.clock);
        (self.needed.contains(&block.rdd), self.clock)
    }
}

impl CachePolicy for MemTunePolicy {
    fn name(&self) -> String {
        "MemTune".into()
    }

    fn on_stage_start(&mut self, stage: StageId, visible: &AppProfile) {
        let old_needed = std::mem::take(&mut self.needed);
        self.needed_now.clear();
        // Window = this stage and the next: the "runnable tasks" horizon.
        for (off, set) in [(0usize, true), (1usize, false)] {
            if let Some(touches) = visible.per_stage.get(stage.index() + off) {
                for &r in touches.reads.iter().chain(&touches.creates) {
                    self.needed.insert(r);
                    if set {
                        self.needed_now.insert(r);
                    }
                }
            }
        }
        // Re-rank only the RDDs that entered or left the window.
        for rdd in old_needed.symmetric_difference(&self.needed) {
            let Some(blocks) = self.rdd_blocks.get(rdd) else {
                continue;
            };
            let needed = self.needed.contains(rdd);
            for &b in blocks {
                let key = (needed, self.last_touch.get(&b).copied().unwrap_or(0));
                self.index.rekey(b, key);
            }
        }
    }

    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        let key = self.touch(block);
        if !self.index.is_tracked(block) {
            self.rdd_blocks.entry(block.rdd).or_default().push(block);
        }
        self.index.insert(node, block, key);
        self.index.rekey(block, key);
    }

    fn on_access(&mut self, _node: NodeId, block: BlockId) {
        let key = self.touch(block);
        self.index.rekey(block, key);
    }

    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        self.last_touch.remove(&block);
        let orphan = (self.needed.contains(&block.rdd), 0);
        if self.index.remove(node, block, orphan) {
            if let Some(blocks) = self.rdd_blocks.get_mut(&block.rdd) {
                blocks.retain(|&b| b != block);
                if blocks.is_empty() {
                    self.rdd_blocks.remove(&block.rdd);
                }
            }
        }
    }

    fn pick_victim(&mut self, _node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        // Evict un-needed blocks first (LRU among them), then needed (LRU).
        candidates.iter().copied().min_by_key(|b| {
            let needed = self.needed.contains(&b.rdd);
            (
                needed, // false < true: un-needed evict first
                self.last_touch.get(b).copied().unwrap_or(0),
                *b,
            )
        })
    }

    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        self.index.select(node, shortfall, resident)
    }

    fn prefetch_order(&mut self, _node: NodeId, missing: &[BlockId]) -> Vec<BlockId> {
        // Blocks needed by the current stage first, then by the next stage;
        // everything else is not prefetched.
        let mut order: Vec<BlockId> = missing
            .iter()
            .copied()
            .filter(|b| self.needed.contains(&b.rdd))
            .collect();
        order.sort_by_key(|b| (!self.needed_now.contains(&b.rdd), *b));
        order
    }

    fn wants_prefetch(&self) -> bool {
        true
    }

    fn wants_purge(&self) -> bool {
        false // evicts outside the need-lists only under pressure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::{JobId, RddRefs, StageTouches};
    use std::collections::BTreeMap;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    const N: NodeId = NodeId(0);

    /// Profile where stage i reads the RDDs in `reads[i]`.
    fn profile(reads: &[&[u32]]) -> AppProfile {
        let per_stage = reads
            .iter()
            .map(|rs| StageTouches {
                reads: rs.iter().map(|&r| RddId(r)).collect(),
                creates: vec![],
            })
            .collect::<Vec<_>>();
        let mut stages_of: BTreeMap<RddId, Vec<StageId>> = BTreeMap::new();
        for (s, rs) in reads.iter().enumerate() {
            for &r in rs.iter() {
                stages_of
                    .entry(RddId(r))
                    .or_default()
                    .push(StageId(s as u32));
            }
        }
        let per_rdd = stages_of
            .into_iter()
            .map(|(rdd, stages)| {
                let jobs: Vec<JobId> = stages.iter().map(|_| JobId(0)).collect();
                (
                    rdd,
                    RddRefs {
                        rdd,
                        stages: stages.into(),
                        jobs: jobs.into(),
                    },
                )
            })
            .collect();
        AppProfile {
            stage_job: vec![JobId(0); per_stage.len()].into(),
            per_stage,
            per_rdd,
            num_jobs: 1,
        }
    }

    #[test]
    fn window_covers_current_and_next_stage() {
        let mut p = MemTunePolicy::new();
        let prof = profile(&[&[0], &[1], &[2]]);
        p.on_stage_start(StageId(0), &prof);
        assert!(p.needed.contains(&RddId(0)));
        assert!(p.needed.contains(&RddId(1)));
        assert!(!p.needed.contains(&RddId(2)));
    }

    #[test]
    fn evicts_outside_window_first() {
        let mut p = MemTunePolicy::new();
        let prof = profile(&[&[0], &[1], &[2]]);
        p.on_stage_start(StageId(0), &prof);
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(2, 0));
        // rdd2 is outside the window, evict it even though rdd0 is older.
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(2, 0)]), Some(blk(2, 0)));
    }

    #[test]
    fn falls_back_to_lru_inside_window() {
        let mut p = MemTunePolicy::new();
        let prof = profile(&[&[0, 1], &[]]);
        p.on_stage_start(StageId(0), &prof);
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(1, 0)]), Some(blk(0, 0)));
    }

    #[test]
    fn prefetches_current_stage_rdds_first() {
        let mut p = MemTunePolicy::new();
        let prof = profile(&[&[1], &[2], &[3]]);
        p.on_stage_start(StageId(0), &prof);
        let order = p.prefetch_order(N, &[blk(3, 0), blk(2, 0), blk(1, 0)]);
        // rdd3 (stage 2) outside window: dropped. rdd1 (now) before rdd2.
        assert_eq!(order, vec![blk(1, 0), blk(2, 0)]);
    }

    #[test]
    fn window_advances_with_stages() {
        let mut p = MemTunePolicy::new();
        let prof = profile(&[&[0], &[1], &[2]]);
        p.on_stage_start(StageId(2), &prof);
        assert!(p.needed.contains(&RddId(2)));
        assert!(!p.needed.contains(&RddId(0)));
        // Final stage has no successor; window is just itself.
        assert_eq!(p.needed.len(), 1);
    }

    #[test]
    fn wants_prefetch() {
        assert!(MemTunePolicy::new().wants_prefetch());
    }
}
