//! First-In First-Out eviction: evicts the oldest-inserted block.
//!
//! Not in the paper's comparison set; included as an ablation baseline that
//! isolates how much of LRU's benefit comes from recency tracking at all.

use crate::index::VictimIndex;
use crate::CachePolicy;
use refdist_dag::BlockId;
use refdist_store::NodeId;
use std::collections::{BTreeMap, HashMap};

/// FIFO eviction.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    clock: u64,
    inserted_at: HashMap<BlockId, u64>,
    index: VictimIndex<u64>,
}

impl FifoPolicy {
    /// New FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CachePolicy for FifoPolicy {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        self.clock += 1;
        // Keep the original insertion time on re-insert.
        let key = *self.inserted_at.entry(block).or_insert(self.clock);
        self.index.insert(node, block, key);
        // The insertion time is global: if the block was re-inserted after a
        // removal elsewhere reset it, surviving copies re-rank to the new
        // time (no-op when the time was unchanged).
        self.index.rekey(block, key);
    }

    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        self.inserted_at.remove(&block);
        // Surviving copies lose the global insertion time: rank as key 0.
        self.index.remove(node, block, 0);
    }

    fn pick_victim(&mut self, _node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        candidates
            .iter()
            .copied()
            .min_by_key(|b| (self.inserted_at.get(b).copied().unwrap_or(0), *b))
    }

    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        self.index.select(node, shortfall, resident)
    }

    fn wants_purge(&self) -> bool {
        false // insertion-order only: never purges proactively
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    const N: NodeId = NodeId(0);

    #[test]
    fn evicts_oldest_insert_regardless_of_access() {
        let mut p = FifoPolicy::new();
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        p.on_access(N, blk(0, 0)); // access must not matter
        let v = p.pick_victim(N, &[blk(0, 0), blk(1, 0)]);
        assert_eq!(v, Some(blk(0, 0)));
    }

    #[test]
    fn reinsert_keeps_original_position() {
        let mut p = FifoPolicy::new();
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        p.on_insert(N, blk(0, 0)); // re-insert
        let v = p.pick_victim(N, &[blk(0, 0), blk(1, 0)]);
        assert_eq!(v, Some(blk(0, 0)));
    }

    #[test]
    fn remove_then_insert_moves_to_back() {
        let mut p = FifoPolicy::new();
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        p.on_remove(N, blk(0, 0));
        p.on_insert(N, blk(0, 0));
        let v = p.pick_victim(N, &[blk(0, 0), blk(1, 0)]);
        assert_eq!(v, Some(blk(1, 0)));
    }
}
