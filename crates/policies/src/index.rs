//! Ordered victim indexes: the data structure behind O(log n) batched
//! victim selection ([`crate::CachePolicy::select_victims`]).
//!
//! Every policy in this workspace ranks eviction candidates by a per-block
//! *rank key* and evicts the `(key, BlockId)`-minimal block (ties always
//! break toward the lowest block id, which is why the id is the final tuple
//! element). The naive `pick_victim` implementations recompute that minimum
//! with a linear scan per eviction; the structures here maintain the ranking
//! incrementally in a `BTreeSet<(K, BlockId)>` so a batch of victims pops in
//! O(log n) per block instead.
//!
//! Determinism contract: as long as the key stored for a block equals the
//! key the naive scan would compute for it, iterating the set in ascending
//! order visits blocks in *exactly* the order repeated naive scans would
//! pick them (removing a block never changes another block's key in any of
//! the workspace policies). The differential property tests in
//! `tests/differential_select.rs` pin this equivalence down for randomized
//! traces.
//!
//! [`VictimIndex`] adds the per-node bookkeeping the [`crate::CachePolicy`]
//! hook protocol needs: a block can be resident on several nodes at once
//! (disk promotes re-insert a block on the reading node while another node
//! still caches it), yet most policies keep *global* recency state that is
//! dropped when the block leaves **any** node. The index mirrors that
//! semantics: removing a block from one node re-keys the surviving copies
//! with the caller-provided "orphan" key — the same key the naive scan's
//! `unwrap_or(0)` fallback produces once the global state is gone.

use refdist_dag::BlockId;
use refdist_store::NodeId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A single ordered index: blocks ranked ascending by `(K, BlockId)`.
#[derive(Debug, Clone)]
pub struct OrderedIndex<K: Ord + Copy> {
    keys: HashMap<BlockId, K>,
    order: BTreeSet<(K, BlockId)>,
}

impl<K: Ord + Copy> Default for OrderedIndex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> OrderedIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        OrderedIndex {
            keys: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether `block` is indexed.
    pub fn contains(&self, block: BlockId) -> bool {
        self.keys.contains_key(&block)
    }

    /// Insert `block` with `key`, or update its key in place. O(log n).
    pub fn upsert(&mut self, block: BlockId, key: K) {
        if let Some(old) = self.keys.insert(block, key) {
            if old == key {
                return;
            }
            self.order.remove(&(old, block));
        }
        self.order.insert((key, block));
    }

    /// Drop `block` from the index (no-op if absent). O(log n).
    pub fn remove(&mut self, block: BlockId) {
        if let Some(old) = self.keys.remove(&block) {
            self.order.remove(&(old, block));
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.order.clear();
    }

    /// Blocks in eviction order (ascending `(key, id)`).
    pub fn iter_ordered(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.order.iter().map(|&(_, b)| b)
    }

    /// Select victims in eviction order until at least `shortfall` bytes of
    /// `resident` blocks are covered, skipping indexed blocks that are not
    /// in `resident` (pinned blocks, or copies on other nodes). Returns all
    /// eligible blocks when the shortfall cannot be met — exactly what the
    /// naive scan does when it runs out of candidates.
    pub fn select_until(&self, shortfall: u64, resident: &BTreeMap<BlockId, u64>) -> Vec<BlockId> {
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for &(_, b) in &self.order {
            if freed >= shortfall {
                break;
            }
            if let Some(&size) = resident.get(&b) {
                victims.push(b);
                freed += size;
            }
        }
        victims
    }
}

/// Per-node ordered victim indexes plus the block→nodes residency map that
/// keeps *global* policy state (recency clocks, reference counts) consistent
/// with per-node candidate lists.
#[derive(Debug, Clone)]
pub struct VictimIndex<K: Ord + Copy> {
    nodes: HashMap<NodeId, OrderedIndex<K>>,
    /// Nodes each block is currently resident on (usually exactly one).
    homes: HashMap<BlockId, Vec<NodeId>>,
}

impl<K: Ord + Copy> Default for VictimIndex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> VictimIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        VictimIndex {
            nodes: HashMap::new(),
            homes: HashMap::new(),
        }
    }

    /// Whether `block` is resident on at least one node.
    pub fn is_tracked(&self, block: BlockId) -> bool {
        self.homes.contains_key(&block)
    }

    /// Record `block` resident on `node` with rank `key` (re-inserts update
    /// the key in place).
    pub fn insert(&mut self, node: NodeId, block: BlockId, key: K) {
        let homes = self.homes.entry(block).or_default();
        if !homes.contains(&node) {
            homes.push(node);
        }
        self.nodes.entry(node).or_default().upsert(block, key);
    }

    /// Update `block`'s rank on every node it is resident on (global state
    /// like a recency clock changed).
    pub fn rekey(&mut self, block: BlockId, key: K) {
        if let Some(homes) = self.homes.get(&block) {
            for node in homes {
                if let Some(idx) = self.nodes.get_mut(node) {
                    idx.upsert(block, key);
                }
            }
        }
    }

    /// Re-rank every indexed block via `key_of` (a global input to the rank,
    /// e.g. LRC's total reference counts, changed for all blocks at once).
    pub fn rekey_all(&mut self, mut key_of: impl FnMut(BlockId) -> K) {
        for idx in self.nodes.values_mut() {
            let blocks: Vec<BlockId> = idx.keys.keys().copied().collect();
            for b in blocks {
                idx.upsert(b, key_of(b));
            }
        }
    }

    /// `block` left `node`'s memory. Surviving copies on other nodes are
    /// re-ranked with `orphan_key` — the rank the naive scan assigns once
    /// the block's global state is dropped. Returns whether the block is now
    /// gone from every node.
    pub fn remove(&mut self, node: NodeId, block: BlockId, orphan_key: K) -> bool {
        if let Some(idx) = self.nodes.get_mut(&node) {
            idx.remove(block);
        }
        let Some(homes) = self.homes.get_mut(&block) else {
            return true;
        };
        homes.retain(|&n| n != node);
        if homes.is_empty() {
            self.homes.remove(&block);
            return true;
        }
        for n in self.homes[&block].clone() {
            if let Some(idx) = self.nodes.get_mut(&n) {
                idx.upsert(block, orphan_key);
            }
        }
        false
    }

    /// Batched victim selection on `node`: see [`OrderedIndex::select_until`].
    pub fn select(
        &self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        match self.nodes.get(&node) {
            Some(idx) => idx.select_until(shortfall, resident),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);

    fn resident(blocks: &[(BlockId, u64)]) -> BTreeMap<BlockId, u64> {
        blocks.iter().copied().collect()
    }

    #[test]
    fn ordered_index_pops_in_key_then_id_order() {
        let mut idx = OrderedIndex::new();
        idx.upsert(blk(2, 0), 5u64);
        idx.upsert(blk(0, 0), 7);
        idx.upsert(blk(1, 0), 5);
        let order: Vec<_> = idx.iter_ordered().collect();
        assert_eq!(order, vec![blk(1, 0), blk(2, 0), blk(0, 0)]);
    }

    #[test]
    fn upsert_replaces_key() {
        let mut idx = OrderedIndex::new();
        idx.upsert(blk(0, 0), 1u64);
        idx.upsert(blk(0, 0), 9);
        assert_eq!(idx.len(), 1);
        let order: Vec<_> = idx.iter_ordered().collect();
        assert_eq!(order, vec![blk(0, 0)]);
    }

    #[test]
    fn select_until_accumulates_sizes_and_skips_non_resident() {
        let mut idx = OrderedIndex::new();
        idx.upsert(blk(0, 0), 1u64); // pinned: not in resident set
        idx.upsert(blk(1, 0), 2);
        idx.upsert(blk(2, 0), 3);
        let r = resident(&[(blk(1, 0), 4), (blk(2, 0), 4)]);
        assert_eq!(idx.select_until(5, &r), vec![blk(1, 0), blk(2, 0)]);
        assert_eq!(idx.select_until(4, &r), vec![blk(1, 0)]);
        // Shortfall unmeetable: every eligible block is returned.
        assert_eq!(idx.select_until(100, &r), vec![blk(1, 0), blk(2, 0)]);
    }

    #[test]
    fn victim_index_is_per_node() {
        let mut idx = VictimIndex::new();
        idx.insert(A, blk(0, 0), 1u64);
        idx.insert(B, blk(1, 0), 1);
        let r = resident(&[(blk(0, 0), 1), (blk(1, 0), 1)]);
        assert_eq!(idx.select(A, 1, &r), vec![blk(0, 0)]);
        assert_eq!(idx.select(B, 1, &r), vec![blk(1, 0)]);
        assert!(idx.select(NodeId(9), 1, &r).is_empty());
    }

    #[test]
    fn cross_node_removal_rekeys_survivors_to_orphan_key() {
        let mut idx = VictimIndex::new();
        // Same block resident on both nodes with a high (recent) key.
        idx.insert(A, blk(0, 0), 10u64);
        idx.insert(B, blk(0, 0), 10);
        idx.insert(B, blk(1, 0), 5);
        // Evicted from A: global recency is dropped, so on B the survivor
        // must now rank as key 0 — ahead of blk(1,0).
        assert!(!idx.remove(A, blk(0, 0), 0));
        let r = resident(&[(blk(0, 0), 1), (blk(1, 0), 1)]);
        assert_eq!(idx.select(B, 1, &r), vec![blk(0, 0)]);
        // Gone from the last node: fully untracked.
        assert!(idx.remove(B, blk(0, 0), 0));
        assert!(!idx.is_tracked(blk(0, 0)));
    }

    #[test]
    fn rekey_all_recomputes_every_rank() {
        let mut idx = VictimIndex::new();
        idx.insert(A, blk(0, 0), 1u64);
        idx.insert(A, blk(1, 0), 2);
        idx.rekey_all(|b| if b == blk(0, 0) { 9 } else { 2 });
        let r = resident(&[(blk(0, 0), 1), (blk(1, 0), 1)]);
        assert_eq!(idx.select(A, 2, &r), vec![blk(1, 0), blk(0, 0)]);
    }

    #[test]
    fn remove_unknown_block_is_noop() {
        let mut idx: VictimIndex<u64> = VictimIndex::new();
        assert!(idx.remove(A, blk(7, 7), 0));
    }
}
