//! Differential property test for fault-plan transparency.
//!
//! The fault-injection subsystem lives directly on [`SimConfig::faults`], so
//! every simulation now runs "through" it. The safety claim that makes that
//! acceptable: a plan that cannot draw a fault is *byte-invisible*. A default
//! (empty) plan — and, stronger, an inert plan whose probabilities are all
//! zero but whose retry/backoff knobs are tweaked — must produce reports,
//! task placements, access traces, and policy decision sequences identical
//! to a run that predates the subsystem entirely. This is what keeps every
//! golden file, BENCH number, and sweep key from PRs 1–4 valid.

use proptest::prelude::*;
use refdist_cluster::{ClusterConfig, FaultPlan, RunReport, SimConfig, Simulation};
use refdist_core::{MrdPolicy, ProfileMode};
use refdist_dag::{AppBuilder, AppPlan, AppSpec, BlockId, BlockSlots, StorageLevel};
use refdist_policies::{CachePolicy, PolicyKind};
use refdist_store::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Logs every eviction batch and purge decision so runs can be compared on
/// their decision *sequences*, not just aggregate counters.
struct Recorder {
    inner: Box<dyn CachePolicy>,
    victims: Vec<(NodeId, Vec<BlockId>)>,
    purges: Vec<Vec<BlockId>>,
}

impl Recorder {
    fn new(inner: Box<dyn CachePolicy>) -> Self {
        Recorder {
            inner,
            victims: Vec::new(),
            purges: Vec::new(),
        }
    }
}

impl CachePolicy for Recorder {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn attach_slots(&mut self, slots: &Arc<BlockSlots>) {
        self.inner.attach_slots(slots);
    }
    fn on_job_submit(&mut self, job: refdist_dag::JobId, visible: &refdist_dag::AppProfile) {
        self.inner.on_job_submit(job, visible);
    }
    fn on_stage_start(&mut self, stage: refdist_dag::StageId, visible: &refdist_dag::AppProfile) {
        self.inner.on_stage_start(stage, visible);
    }
    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_insert(node, block);
    }
    fn on_access(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_access(node, block);
    }
    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_remove(node, block);
    }
    fn on_node_join(&mut self, node: NodeId) {
        self.inner.on_node_join(node);
    }
    fn pick_victim(&mut self, node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        self.inner.pick_victim(node, candidates)
    }
    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        let v = self.inner.select_victims(node, shortfall, resident);
        self.victims.push((node, v.clone()));
        v
    }
    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        let p = self.inner.purge_candidates(in_memory);
        self.purges.push(p.clone());
        p
    }
    fn prefetch_order(&mut self, node: NodeId, missing: &[BlockId]) -> Vec<BlockId> {
        self.inner.prefetch_order(node, missing)
    }
    fn wants_prefetch(&self) -> bool {
        self.inner.wants_prefetch()
    }
    fn wants_purge(&self) -> bool {
        self.inner.wants_purge()
    }
}

#[derive(Debug, Clone)]
struct Params {
    iters: usize,
    parts: u32,
    block_kb: u64,
    mem_only: bool,
    nodes: u32,
    cache_frac: f64,
    jitter: f64,
    seed: u64,
}

fn build_app(p: &Params) -> AppSpec {
    let block = p.block_kb * 256 * 1024;
    let level = if p.mem_only {
        StorageLevel::MemoryOnly
    } else {
        StorageLevel::MemoryAndDisk
    };
    let mut b = AppBuilder::new("fault-diff-app");
    let input = b.input("in", p.parts, block, 2_000);
    let hot = b.narrow("hot", input, block, 5_000);
    b.persist(hot, level);
    for i in 0..p.iters {
        let s = b.shuffle(format!("agg{i}"), &[hot], p.parts, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

fn build_cfg(p: &Params, spec: &AppSpec) -> SimConfig {
    let footprint: u64 = spec
        .cached_rdds()
        .map(|r| r.num_partitions as u64 * r.block_size)
        .sum();
    let per_node = ((footprint as f64 * p.cache_frac) / p.nodes as f64) as u64;
    let mut cfg = SimConfig::new(ClusterConfig::tiny(p.nodes, per_node));
    cfg.seed = p.seed;
    cfg.compute_jitter = p.jitter;
    cfg.collect_trace = true;
    cfg.collect_placements = true;
    cfg
}

/// A plan that *looks* configured but can never draw a fault: all
/// probabilities zero, no scripted events, no speculation — only the
/// retry/backoff knobs differ from the default. If any of those knobs leaks
/// into a fault-free run, this catches it.
fn inert_plan() -> FaultPlan {
    FaultPlan {
        max_task_attempts: 9,
        retry_backoff_us: 1,
        max_backoff_us: 2,
        ..FaultPlan::default()
    }
}

type Build = Box<dyn Fn() -> Box<dyn CachePolicy>>;

fn all_policies() -> Vec<(&'static str, Build)> {
    vec![
        ("lru", Box::new(|| PolicyKind::Lru.build()) as Build),
        ("fifo", Box::new(|| PolicyKind::Fifo.build())),
        ("random", Box::new(|| PolicyKind::Random.build())),
        ("lrc", Box::new(|| PolicyKind::Lrc.build())),
        ("memtune", Box::new(|| PolicyKind::MemTune.build())),
        ("mrd", Box::new(|| Box::new(MrdPolicy::full()))),
    ]
}

fn run_once(spec: &AppSpec, plan: &AppPlan, cfg: SimConfig, build: &Build) -> (RunReport, Recorder) {
    let mut rec = Recorder::new(build());
    let report = Simulation::new(spec, plan, ProfileMode::Recurring, cfg).run(&mut rec);
    (report, rec)
}

fn assert_invisible(p: &Params) {
    let spec = build_app(p);
    let plan = AppPlan::build(&spec);
    for (name, build) in all_policies() {
        let clean_cfg = build_cfg(p, &spec);
        assert!(clean_cfg.faults.is_empty(), "default plan must be empty");
        let mut inert_cfg = build_cfg(p, &spec);
        inert_cfg.faults = inert_plan();
        assert!(inert_cfg.faults.is_empty(), "inert plan must count as empty");
        let (clean_report, clean_rec) = run_once(&spec, &plan, clean_cfg, &build);
        let (inert_report, inert_rec) = run_once(&spec, &plan, inert_cfg, &build);
        assert!(clean_report.faults.is_empty(), "fault-free run drew faults");
        assert_eq!(clean_report.faults.aborts, 0);
        assert!(clean_report.aborted.is_none());
        assert_eq!(
            format!("{clean_report:?}"),
            format!("{inert_report:?}"),
            "report diverged for {name} on {p:?}"
        );
        assert_eq!(
            clean_rec.victims, inert_rec.victims,
            "victim sequence diverged for {name} on {p:?}"
        );
        assert_eq!(
            clean_rec.purges, inert_rec.purges,
            "purge sequence diverged for {name} on {p:?}"
        );
    }
}

fn params_strategy() -> impl Strategy<Value = Params> {
    (
        (1usize..4, 1u32..8, 1u64..4, any::<bool>()),
        (
            1u32..4,
            prop_oneof![Just(0.3), Just(0.6), Just(2.0)],
            prop_oneof![Just(0.0), Just(0.1)],
            any::<u16>(),
        ),
    )
        .prop_map(
            |((iters, parts, block_kb, mem_only), (nodes, cache_frac, jitter, seed))| Params {
                iters,
                parts,
                block_kb,
                mem_only,
                nodes,
                cache_frac,
                jitter,
                seed: seed as u64,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn empty_fault_plan_is_byte_invisible(p in params_strategy()) {
        assert_invisible(&p);
    }
}

/// An aborting run must attribute the abort: the `StageAbort` carries the
/// application index (always 0 in the single-app engine) and the abort is
/// counted in `FaultStats`, so serve-mode reports stay attributable when a
/// tenant's submission dies mid-stream.
#[test]
fn aborts_carry_the_app_id_and_are_counted() {
    let p = Params {
        iters: 2,
        parts: 3,
        block_kb: 1,
        mem_only: false,
        nodes: 2,
        cache_frac: 2.0,
        jitter: 0.0,
        seed: 11,
    };
    let spec = build_app(&p);
    let plan = AppPlan::build(&spec);
    let mut cfg = build_cfg(&p, &spec);
    cfg.faults.task_failure_p = 1.0;
    cfg.faults.max_task_attempts = 2;
    let (report, _) = run_once(&spec, &plan, cfg, &all_policies()[0].1);
    let abort = report.aborted.expect("certain failure must abort");
    assert_eq!(abort.app, 0, "single-app engine stamps app 0");
    assert_eq!(report.faults.aborts, 1);
    assert!(report
        .summary()
        .contains(&format!("ABORTED at stage {} (app 0", abort.stage.0)));
}

/// Deterministic spot-check of the pressure-heavy corner, so the
/// transparency claim does not rest on random sampling alone.
#[test]
fn empty_fault_plan_is_invisible_under_pressure() {
    assert_invisible(&Params {
        iters: 3,
        parts: 7,
        block_kb: 2,
        mem_only: false,
        nodes: 3,
        cache_frac: 0.3,
        jitter: 0.1,
        seed: 7,
    });
}
