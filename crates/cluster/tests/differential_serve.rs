//! Differential property test for the multi-tenant serve driver.
//!
//! Serving is *equivalent by construction* to the single-app engine: a
//! 1-submission serve (one tenant, zero arrival delay, unlimited quota)
//! combines the spec into a clone of itself, the tenant mux passes every
//! policy hook through unchanged, and the driver performs exactly the legacy
//! `Engine::run` call sequence. This test holds the construction to the
//! proof obligation: for randomized applications × cluster configurations
//! (fault events included) × every policy family, the legacy engine and the
//! 1-tenant serve must produce byte-identical `RunReport`s (access trace and
//! task placements included) and identical victim/purge decision sequences
//! as observed through the policy interface.

use proptest::prelude::*;
use refdist_cluster::{
    ArrivalProcess, ClusterConfig, QuotaKind, RunReport, ServeConfig, ServeReport, ServeSched,
    ServeSim, SimConfig, Simulation,
};
use refdist_core::{DistanceMetric, MrdConfig, MrdMode, MrdPolicy, ProfileMode};
use refdist_dag::{AppBuilder, AppPlan, AppSpec, BlockId, BlockSlots, StorageLevel};
use refdist_policies::{CachePolicy, PolicyKind};
use refdist_store::NodeId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Decision log shared between the test and a [`Recorder`] that gets moved
/// into the serve driver (which consumes its policies).
#[derive(Default)]
struct DecisionLog {
    victims: Mutex<Vec<(NodeId, Vec<BlockId>)>>,
    purges: Mutex<Vec<Vec<BlockId>>>,
}

type VictimLog = Vec<(NodeId, Vec<BlockId>)>;
type PurgeLog = Vec<Vec<BlockId>>;

impl DecisionLog {
    fn snapshot(&self) -> (VictimLog, PurgeLog) {
        (
            self.victims.lock().unwrap().clone(),
            self.purges.lock().unwrap().clone(),
        )
    }
}

/// Wraps a policy and logs every eviction batch and purge decision into a
/// shared [`DecisionLog`], so runs that consume the policy (the serve
/// driver) can still be compared on their decision sequences.
struct Recorder {
    inner: Box<dyn CachePolicy>,
    log: Arc<DecisionLog>,
}

impl Recorder {
    fn new(inner: Box<dyn CachePolicy>, log: Arc<DecisionLog>) -> Self {
        Recorder { inner, log }
    }
}

impl CachePolicy for Recorder {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn attach_slots(&mut self, slots: &Arc<BlockSlots>) {
        self.inner.attach_slots(slots);
    }
    fn on_job_submit(&mut self, job: refdist_dag::JobId, visible: &refdist_dag::AppProfile) {
        self.inner.on_job_submit(job, visible);
    }
    fn on_stage_start(&mut self, stage: refdist_dag::StageId, visible: &refdist_dag::AppProfile) {
        self.inner.on_stage_start(stage, visible);
    }
    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_insert(node, block);
    }
    fn on_access(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_access(node, block);
    }
    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_remove(node, block);
    }
    fn on_node_join(&mut self, node: NodeId) {
        self.inner.on_node_join(node);
    }
    fn pick_victim(&mut self, node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        self.inner.pick_victim(node, candidates)
    }
    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        let v = self.inner.select_victims(node, shortfall, resident);
        self.log.victims.lock().unwrap().push((node, v.clone()));
        v
    }
    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        let p = self.inner.purge_candidates(in_memory);
        self.log.purges.lock().unwrap().push(p.clone());
        p
    }
    fn prefetch_order(&mut self, node: NodeId, missing: &[BlockId]) -> Vec<BlockId> {
        self.inner.prefetch_order(node, missing)
    }
    fn wants_prefetch(&self) -> bool {
        self.inner.wants_prefetch()
    }
    fn wants_purge(&self) -> bool {
        self.inner.wants_purge()
    }
}

/// Parameters of a randomized iterative application.
#[derive(Debug, Clone)]
struct AppParams {
    iters: usize,
    parts: u32,
    block_kb: u64,
    mem_only: bool,
    two_rdds: bool,
}

fn build_app(p: &AppParams) -> AppSpec {
    let block = p.block_kb * 256 * 1024;
    let level = if p.mem_only {
        StorageLevel::MemoryOnly
    } else {
        StorageLevel::MemoryAndDisk
    };
    let mut b = AppBuilder::new("diff-app");
    let input = b.input("in", p.parts, block, 2_000);
    let hot = b.narrow("hot", input, block, 5_000);
    b.persist(hot, level);
    if p.two_rdds {
        let cold = b.narrow("cold", input, block, 5_000);
        b.persist(cold, level);
        let both = b.narrow_multi("both", &[hot, cold], 1024, 100);
        b.action("create", both);
        for i in 0..p.iters {
            let s = b.shuffle(format!("hot{i}"), &[hot], p.parts, 1024, 500);
            b.action(format!("jh{i}"), s);
        }
        let s = b.shuffle("coldref", &[cold], p.parts, 1024, 500);
        b.action("jc", s);
    } else {
        for i in 0..p.iters {
            let s = b.shuffle(format!("agg{i}"), &[hot], p.parts, block / 4, 1_000);
            b.action(format!("job{i}"), s);
        }
    }
    b.build()
}

/// Parameters of a randomized cluster configuration.
#[derive(Debug, Clone)]
struct CfgParams {
    nodes: u32,
    cache_frac: f64,
    exec_mem: f64,
    jitter: f64,
    seed: u64,
    adaptive: bool,
    failure: bool,
    rejoin: bool,
    delay: Option<u64>,
}

fn build_cfg(c: &CfgParams, spec: &AppSpec) -> SimConfig {
    let footprint: u64 = spec
        .cached_rdds()
        .map(|r| r.num_partitions as u64 * r.block_size)
        .sum();
    let per_node = ((footprint as f64 * c.cache_frac) / c.nodes as f64) as u64;
    let mut cfg = SimConfig::new(ClusterConfig::tiny(c.nodes, per_node));
    cfg.seed = c.seed;
    cfg.compute_jitter = c.jitter;
    cfg.exec_mem_fraction = c.exec_mem;
    cfg.adaptive_threshold = c.adaptive;
    cfg.delay_scheduling_us = c.delay;
    cfg.collect_trace = true;
    cfg.collect_placements = true;
    if c.failure {
        cfg.faults.node_failure(c.nodes - 1, 2);
    }
    if c.rejoin {
        cfg.faults.crash_with_rejoin(0, 1, 2);
    }
    cfg
}

type Build = Box<dyn Fn() -> Box<dyn CachePolicy>>;

/// Every servable policy family: the five baselines plus MRD in all three
/// modes and with job-granular distances (Belady is excluded by design —
/// its whole-run trace has no meaning under serving).
fn all_policies() -> Vec<(&'static str, Build)> {
    let mut v: Vec<(&'static str, Build)> = vec![
        ("lru", Box::new(|| PolicyKind::Lru.build())),
        ("fifo", Box::new(|| PolicyKind::Fifo.build())),
        ("random", Box::new(|| PolicyKind::Random.build())),
        ("lrc", Box::new(|| PolicyKind::Lrc.build())),
        ("memtune", Box::new(|| PolicyKind::MemTune.build())),
    ];
    for (name, mode, metric) in [
        ("mrd-evict", MrdMode::EvictOnly, DistanceMetric::Stage),
        ("mrd-prefetch", MrdMode::PrefetchOnly, DistanceMetric::Stage),
        ("mrd-full", MrdMode::Full, DistanceMetric::Stage),
        ("mrd-full-job", MrdMode::Full, DistanceMetric::Job),
    ] {
        v.push((
            name,
            Box::new(move || {
                Box::new(MrdPolicy::new(MrdConfig {
                    mode,
                    metric,
                    ..Default::default()
                }))
            }),
        ));
    }
    v
}

fn run_legacy(
    spec: &AppSpec,
    plan: &AppPlan,
    cfg: SimConfig,
    build: &Build,
) -> (RunReport, Arc<DecisionLog>) {
    let log = Arc::new(DecisionLog::default());
    let mut rec = Recorder::new(build(), Arc::clone(&log));
    let report = Simulation::new(spec, plan, ProfileMode::Recurring, cfg).run(&mut rec);
    (report, log)
}

fn run_serve(spec: &AppSpec, cfg: SimConfig, build: &Build) -> (RunReport, Arc<DecisionLog>) {
    let log = Arc::new(DecisionLog::default());
    let rec = Recorder::new(build(), Arc::clone(&log));
    let serve = ServeSim::new(&[(spec, 0)], ServeConfig::passthrough(cfg));
    let mut sr = serve.run(vec![Box::new(rec)]);
    assert_eq!(sr.reports.len(), 1);
    assert_eq!(sr.makespan, sr.reports[0].jct);
    (sr.reports.remove(0), log)
}

fn assert_equivalent(p: &AppParams, c: &CfgParams) {
    let spec = build_app(p);
    let plan = AppPlan::build(&spec);
    for (name, build) in all_policies() {
        let (legacy_report, legacy_log) = run_legacy(&spec, &plan, build_cfg(c, &spec), &build);
        let (serve_report, serve_log) = run_serve(&spec, build_cfg(c, &spec), &build);
        assert_eq!(
            format!("{legacy_report:?}"),
            format!("{serve_report:?}"),
            "report diverged for {name} on {p:?} {c:?}"
        );
        let (lv, lp) = legacy_log.snapshot();
        let (sv, sp) = serve_log.snapshot();
        assert_eq!(lv, sv, "victim sequence diverged for {name} on {p:?} {c:?}");
        assert_eq!(lp, sp, "purge sequence diverged for {name} on {p:?} {c:?}");
    }
}

fn app_strategy() -> impl Strategy<Value = AppParams> {
    (1usize..4, 1u32..8, 1u64..4, any::<bool>(), any::<bool>()).prop_map(
        |(iters, parts, block_kb, mem_only, two_rdds)| AppParams {
            iters,
            parts,
            block_kb,
            mem_only,
            two_rdds,
        },
    )
}

fn cfg_strategy() -> impl Strategy<Value = CfgParams> {
    (
        (
            1u32..4,
            prop_oneof![Just(0.0), Just(0.3), Just(0.6), Just(2.0)],
            prop_oneof![Just(0.0), Just(0.3)],
            prop_oneof![Just(0.0), Just(0.1)],
        ),
        (
            any::<u16>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            prop_oneof![Just(None), Just(Some(0u64)), Just(Some(10_000u64))],
        ),
    )
        .prop_map(
            |((nodes, cache_frac, exec_mem, jitter), (seed, adaptive, failure, rejoin, delay))| {
                CfgParams {
                    nodes,
                    cache_frac,
                    exec_mem,
                    jitter,
                    seed: seed as u64,
                    adaptive,
                    failure,
                    rejoin: rejoin && nodes > 1,
                    delay,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn single_tenant_serve_is_indistinguishable_from_legacy(
        app in app_strategy(),
        cfg in cfg_strategy(),
    ) {
        assert_equivalent(&app, &cfg);
    }
}

// ---------------------------------------------------------------------------
// Streaming vs upfront
// ---------------------------------------------------------------------------

/// Parameters of a randomized multi-submission stream.
#[derive(Debug, Clone)]
struct StreamParams {
    /// Inter-arrival gaps; the stream has `gaps.len() + 1` submissions.
    gaps: Vec<u64>,
    tenants: usize,
    fair_share: bool,
    /// 0 = unlimited, 1 = equal-share, 2 = per-tenant byte budget.
    quota: u8,
    app: AppParams,
    /// Vary iteration counts across submissions (heterogeneous stream).
    vary: bool,
    /// Poisson arrivals instead of the trace built from `gaps`.
    poisson: bool,
}

fn run_stream(
    p: &StreamParams,
    c: &CfgParams,
    upfront: bool,
    intern: bool,
) -> (ServeReport, (VictimLog, PurgeLog)) {
    run_stream_with(p, c, upfront, intern, &|_| {})
}

fn run_stream_with(
    p: &StreamParams,
    c: &CfgParams,
    upfront: bool,
    intern: bool,
    tweak: &dyn Fn(&mut ServeConfig),
) -> (ServeReport, (VictimLog, PurgeLog)) {
    let n = p.gaps.len() + 1;
    let specs: Vec<AppSpec> = (0..n)
        .map(|i| {
            let mut ap = p.app.clone();
            if p.vary {
                ap.iters = 1 + (i % 3);
            }
            build_app(&ap)
        })
        .collect();
    let subs: Vec<(&AppSpec, u32)> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| (s, (i % p.tenants) as u32))
        .collect();
    let mut arrivals = vec![0u64];
    for g in &p.gaps {
        arrivals.push(arrivals.last().unwrap() + g);
    }
    let block = p.app.block_kb * 256 * 1024;
    let cfg = ServeConfig {
        sim: build_cfg(c, &specs[0]),
        arrivals: if p.poisson {
            ArrivalProcess::Poisson {
                mean_gap_us: p.gaps.first().copied().unwrap_or(0).max(1),
            }
        } else {
            ArrivalProcess::Trace(arrivals)
        },
        sched: if p.fair_share {
            ServeSched::FairShare
        } else {
            ServeSched::Fifo
        },
        quota: match p.quota {
            0 => QuotaKind::Unlimited,
            1 => QuotaKind::EqualShare,
            _ => QuotaKind::Bytes(block * 2),
        },
        upfront,
        intern,
        resilience: Default::default(),
    };
    let mut cfg = cfg;
    tweak(&mut cfg);
    let serve = ServeSim::new(&subs, cfg);
    // One shared log across every submission's recorder: the *global*
    // victim/purge call sequence must match, interleaving included.
    let log = Arc::new(DecisionLog::default());
    let fams = all_policies();
    let policies: Vec<Box<dyn CachePolicy>> = (0..n)
        .map(|i| {
            Box::new(Recorder::new(fams[i % fams.len()].1(), Arc::clone(&log)))
                as Box<dyn CachePolicy>
        })
        .collect();
    let report = serve.run(policies);
    (report, log.snapshot())
}

fn assert_stream_equivalent(p: &StreamParams, c: &CfgParams) {
    let (up, (uv, upu)) = run_stream(p, c, true, true);
    let (st, (sv, spu)) = run_stream(p, c, false, true);
    assert_eq!(
        format!("{:?}", up.reports),
        format!("{:?}", st.reports),
        "per-submission reports diverged on {p:?} {c:?}"
    );
    assert_eq!(up.arrivals, st.arrivals, "{p:?} {c:?}");
    assert_eq!(up.completions, st.completions, "{p:?} {c:?}");
    assert_eq!(up.tenants, st.tenants, "{p:?} {c:?}");
    assert_eq!(
        up.cross_evictions, st.cross_evictions,
        "eviction matrix diverged on {p:?} {c:?}"
    );
    assert_eq!(up.makespan, st.makespan, "{p:?} {c:?}");
    assert_eq!(up.summary(), st.summary(), "{p:?} {c:?}");
    assert_eq!(uv, sv, "victim sequence diverged on {p:?} {c:?}");
    assert_eq!(upu, spu, "purge sequence diverged on {p:?} {c:?}");
    // Residency is identical moment for moment, so the sampled peaks agree
    // exactly; the streaming arena must never exceed the upfront one (which
    // holds the whole stream).
    assert_eq!(up.peak_resident_blocks, st.peak_resident_blocks);
    assert_eq!(up.peak_resident_bytes, st.peak_resident_bytes);
    assert!(
        st.peak_arena_slots <= up.peak_arena_slots,
        "streaming arena ({}) exceeded upfront ({}) on {p:?} {c:?}",
        st.peak_arena_slots,
        up.peak_arena_slots
    );
}

/// Interned admission must be indistinguishable — report bytes and global
/// victim/purge decision sequences — from replanning every submission from
/// scratch. The planner and analyzer are deterministic, so a template cache
/// hit followed by an offset rebase has to reproduce `plan_one` exactly.
fn assert_interned_equivalent(p: &StreamParams, c: &CfgParams) {
    let (cold, (cv, cp)) = run_stream(p, c, false, false);
    let (hot, (hv, hp)) = run_stream(p, c, false, true);
    assert_eq!(
        format!("{:?}", cold.reports),
        format!("{:?}", hot.reports),
        "per-submission reports diverged between cold and interned admission on {p:?} {c:?}"
    );
    assert_eq!(cold.summary(), hot.summary(), "{p:?} {c:?}");
    assert_eq!(cold.cross_evictions, hot.cross_evictions, "{p:?} {c:?}");
    assert_eq!(cv, hv, "victim sequence diverged on {p:?} {c:?}");
    assert_eq!(cp, hp, "purge sequence diverged on {p:?} {c:?}");
    // Cold admission never touches the template cache; interned admission is
    // bounded by template diversity: `vary` cycles iters over 1 + (i % 3).
    assert_eq!(cold.distinct_templates, 0);
    let n = p.gaps.len() + 1;
    let distinct = if p.vary { n.min(3) } else { 1 };
    assert!(
        (1..=distinct).contains(&hot.distinct_templates),
        "expected 1..={distinct} distinct templates, interned {} on {p:?} {c:?}",
        hot.distinct_templates
    );
}

fn stream_strategy() -> impl Strategy<Value = StreamParams> {
    (
        (
            prop::collection::vec(0u64..400_000, 1..4),
            1usize..3,
            any::<bool>(),
        ),
        (0u8..3, app_strategy(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |((gaps, tenants, fair_share), (quota, app, vary, poisson))| StreamParams {
                gaps,
                tenants,
                fair_share,
                quota,
                app,
                vary,
                poisson,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn streaming_serve_is_byte_identical_to_upfront(
        stream in stream_strategy(),
        cfg in cfg_strategy(),
    ) {
        assert_stream_equivalent(&stream, &cfg);
    }

    #[test]
    fn interned_admission_is_byte_identical_to_per_submission(
        stream in stream_strategy(),
        cfg in cfg_strategy(),
    ) {
        assert_interned_equivalent(&stream, &cfg);
    }
}

/// Deterministic streaming spot-check of the nastiest corner: fair-share
/// dispatch (out-of-index-order admission), a byte quota, node failure and
/// rejoin chaos, heterogeneous submissions, and a cache far smaller than
/// the combined working set — the regime where admission re-seating, ghost
/// disk accounting and drain-then-retire ordering all have to be exact.
#[test]
fn streaming_matches_upfront_under_heavy_pressure() {
    let stream = StreamParams {
        gaps: vec![40_000, 0, 120_000, 10_000],
        tenants: 2,
        fair_share: true,
        quota: 2,
        app: AppParams {
            iters: 3,
            parts: 5,
            block_kb: 2,
            mem_only: false,
            two_rdds: true,
        },
        vary: true,
        poisson: false,
    };
    let cfg = CfgParams {
        nodes: 2,
        cache_frac: 0.4,
        exec_mem: 0.3,
        jitter: 0.1,
        seed: 11,
        adaptive: true,
        failure: true,
        rejoin: true,
        delay: Some(10_000),
    };
    assert_stream_equivalent(&stream, &cfg);
    assert_interned_equivalent(&stream, &cfg);
    // FIFO + unlimited quota exercises the drain-heavy path instead.
    let mut s2 = stream.clone();
    s2.fair_share = false;
    s2.quota = 0;
    let mut c2 = cfg.clone();
    c2.cache_frac = 0.3;
    c2.seed = 23;
    assert_stream_equivalent(&s2, &c2);
    assert_interned_equivalent(&s2, &c2);
}

/// The stream/config pair the resilience differentials run on: heavy cache
/// pressure, chaos events, heterogeneous submissions across two tenants.
fn pressure_stream() -> (StreamParams, CfgParams) {
    (
        StreamParams {
            gaps: vec![40_000, 0, 120_000, 10_000],
            tenants: 2,
            fair_share: true,
            quota: 2,
            app: AppParams {
                iters: 3,
                parts: 5,
                block_kb: 2,
                mem_only: false,
                two_rdds: true,
            },
            vary: true,
            poisson: false,
        },
        CfgParams {
            nodes: 2,
            cache_frac: 0.4,
            exec_mem: 0.3,
            jitter: 0.1,
            seed: 11,
            adaptive: true,
            failure: true,
            rejoin: true,
            delay: Some(10_000),
        },
    )
}

/// A `ResilienceConfig` with every *inert* knob set to a non-default value
/// must be byte-invisible — reports, summaries and the global victim/purge
/// decision sequences — to every serve path: streaming and upfront, interned
/// and cold, FIFO and fair-share, with quota and chaos in play.
#[test]
fn inert_resilience_config_is_byte_invisible_everywhere() {
    let (mut stream, cfg) = pressure_stream();
    let inert = |sc: &mut ServeConfig| {
        sc.resilience = refdist_cluster::ResilienceConfig {
            max_app_attempts: 1,
            retry_backoff_us: 123,
            max_retry_backoff_us: 456,
            admission: refdist_cluster::AdmissionPolicy::Degrade,
            max_active_apps: None,
            queue_cap: None,
            deadline_us: None,
        };
    };
    for fair_share in [true, false] {
        stream.fair_share = fair_share;
        for (upfront, intern) in [(false, true), (false, false), (true, true)] {
            let (base, blog) = run_stream(&stream, &cfg, upfront, intern);
            let (res, rlog) = run_stream_with(&stream, &cfg, upfront, intern, &inert);
            assert_eq!(
                format!("{:?}", base.reports),
                format!("{:?}", res.reports),
                "inert resilience config changed reports (fair_share={fair_share}, upfront={upfront}, intern={intern})"
            );
            assert_eq!(base.summary(), res.summary());
            assert_eq!(base.completions, res.completions);
            assert_eq!(base.cross_evictions, res.cross_evictions);
            assert_eq!(blog, rlog, "decision sequences diverged under an inert config");
            assert!(res.resilience.is_none(), "passive config must not report resilience");
        }
    }
}

/// Regression pin for the serve×chaos stage-indexing contract: stage-indexed
/// `CrashEvent`s fire against *per-application* stage numbering (fire-once,
/// cluster-wide), and wall-clock events (timed crashes, churn) fire against
/// the engine's monotone cluster clock — so a given chaos seed produces the
/// same fault sequence whether the stream runs under the `--upfront`
/// reference driver, the streaming driver, or streaming with template
/// interning.
#[test]
fn chaos_fault_sequence_is_driver_invariant() {
    let (stream, cfg) = pressure_stream();
    // Stage-indexed chaos (from `cfg`: node_failure + crash_with_rejoin)
    // plus the full wall-clock arsenal.
    let chaos = |sc: &mut ServeConfig| {
        sc.sim.faults.timed_crash(1, 200_000, Some(150_000));
        sc.sim.faults.timed_slowdown(0, 3.0, 100_000, Some(400_000));
        sc.sim.faults.node_churn(900_000, 300_000);
    };
    let (up, ulog) = run_stream_with(&stream, &cfg, true, true, &chaos);
    let (st, slog) = run_stream_with(&stream, &cfg, false, true, &chaos);
    let (cold, clog) = run_stream_with(&stream, &cfg, false, false, &chaos);

    let faults = |r: &ServeReport| -> Vec<String> {
        r.reports.iter().map(|x| format!("{:?}", x.faults)).collect()
    };
    assert_eq!(
        faults(&up),
        faults(&st),
        "per-submission fault sequence diverged between upfront and streaming"
    );
    assert_eq!(
        faults(&st),
        faults(&cold),
        "per-submission fault sequence diverged between interned and cold admission"
    );
    // The whole run — not just the fault counters — is driver-invariant.
    assert_eq!(format!("{:?}", up.reports), format!("{:?}", st.reports));
    assert_eq!(format!("{:?}", st.reports), format!("{:?}", cold.reports));
    assert_eq!(ulog, slog);
    assert_eq!(slog, clog);
    // And the chaos actually fired: this pin is vacuous on a quiet cluster.
    let total: u64 = st.reports.iter().map(|r| r.faults.crashes).sum();
    assert!(total > 0, "chaos plan must take nodes down during the stream");
    // Same chaos seed, same run: byte-deterministic replay.
    let (again, alog) = run_stream_with(&stream, &cfg, false, true, &chaos);
    assert_eq!(format!("{:?}", st.reports), format!("{:?}", again.reports));
    assert_eq!(slog, alog);
}

/// Deterministic spot-check of the pressure-heavy corner (cache far smaller
/// than the working set, execution-memory churn, prefetching, fault events),
/// so the equivalence claim does not rest on random sampling alone.
#[test]
fn serve_matches_legacy_under_heavy_pressure() {
    let app = AppParams {
        iters: 3,
        parts: 7,
        block_kb: 2,
        mem_only: false,
        two_rdds: true,
    };
    let cfg = CfgParams {
        nodes: 2,
        cache_frac: 0.3,
        exec_mem: 0.3,
        jitter: 0.1,
        seed: 7,
        adaptive: true,
        failure: true,
        rejoin: true,
        delay: Some(10_000),
    };
    assert_equivalent(&app, &cfg);
}
