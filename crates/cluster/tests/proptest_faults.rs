//! Property tests for the fault-injection subsystem: randomized
//! [`FaultPlan`]s (scripted crashes with and without rejoin, slowdown
//! windows, stochastic task/fetch/disk failures, speculation) × randomized
//! iterative apps × representative policies.
//!
//! Every sampled run must (a) terminate, (b) keep the block accounting
//! conserved — every miss is resolved by exactly one of disk hit or
//! recomputation, fault-forced recomputes are a subset of all recomputes,
//! speculative copies all resolve to a win or a loss, one placement per
//! task regardless of retries — and (c) be bit-deterministic: running the
//! identical configuration twice gives byte-identical reports.

use proptest::prelude::*;
use refdist_cluster::{
    AdmissionPolicy, ArrivalProcess, ClusterConfig, CrashEvent, FaultPlan, QuotaKind,
    ResilienceConfig, ServeConfig, ServeSched, ServeSim, SimConfig, Simulation, Slowdown,
};
use refdist_core::{MrdPolicy, ProfileMode};
use refdist_dag::{AppBuilder, AppPlan, AppSpec, StorageLevel};
use refdist_policies::{CachePolicy, PolicyKind};

#[derive(Debug, Clone)]
struct Params {
    iters: usize,
    parts: u32,
    block_kb: u64,
    nodes: u32,
    cache_frac: f64,
    seed: u64,
    crashes: Vec<(u32, u32, Option<u32>)>,
    slowdown: Option<(u32, f64, u32, Option<u32>)>,
    task_p: f64,
    fetch_p: f64,
    disk_p: f64,
    spec_q: f64,
    max_attempts: u32,
}

fn build_app(p: &Params) -> AppSpec {
    let block = p.block_kb * 256 * 1024;
    let mut b = AppBuilder::new("fault-prop-app");
    let input = b.input("in", p.parts, block, 2_000);
    let hot = b.narrow("hot", input, block, 5_000);
    b.persist(hot, StorageLevel::MemoryAndDisk);
    for i in 0..p.iters {
        let s = b.shuffle(format!("agg{i}"), &[hot], p.parts, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

fn build_plan(p: &Params) -> FaultPlan {
    let mut plan = FaultPlan {
        task_failure_p: p.task_p,
        fetch_failure_p: p.fetch_p,
        disk_failure_p: p.disk_p,
        speculation_quantile: p.spec_q,
        max_task_attempts: p.max_attempts,
        // Small backoffs keep randomized-abort runs short.
        retry_backoff_us: 1_000,
        max_backoff_us: 8_000,
        ..Default::default()
    };
    for &(node, at_stage, rejoin) in &p.crashes {
        plan.crashes.push(CrashEvent {
            node: node % p.nodes,
            at_stage,
            // A rejoin needs surviving nodes to carry the downtime.
            rejoin_after: rejoin.filter(|_| p.nodes > 1),
        });
    }
    if let Some((node, factor, from, until)) = p.slowdown {
        plan.slowdowns.push(Slowdown {
            node: node % p.nodes,
            factor,
            from_stage: from,
            until_stage: until.map(|u| from + u),
        });
    }
    plan.validate().expect("sampled plans are valid");
    plan
}

fn build_cfg(p: &Params, spec: &AppSpec) -> SimConfig {
    let footprint: u64 = spec
        .cached_rdds()
        .map(|r| r.num_partitions as u64 * r.block_size)
        .sum();
    let per_node = ((footprint as f64 * p.cache_frac) / p.nodes as f64) as u64;
    let mut cfg = SimConfig::new(ClusterConfig::tiny(p.nodes, per_node));
    cfg.seed = p.seed;
    cfg.collect_placements = true;
    cfg.faults = build_plan(p);
    cfg
}

fn policies() -> Vec<Box<dyn CachePolicy>> {
    vec![
        PolicyKind::Lru.build(),
        PolicyKind::Lrc.build(),
        Box::new(MrdPolicy::full()),
    ]
}

fn check(p: &Params) {
    let spec = build_app(p);
    let plan = AppPlan::build(&spec);
    for mut policy in policies() {
        let cfg = build_cfg(p, &spec);
        let report = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut *policy);
        let name = &report.policy;
        let s = &report.stats;
        let f = &report.faults;

        // Block accounting: every miss resolves through disk or lineage,
        // never both; fault-forced recomputes are a subset of recomputes.
        assert!(
            s.disk_hits + s.recomputes <= s.misses,
            "miss accounting broken for {name} on {p:?}: {s:?}"
        );
        assert!(
            f.fault_recomputes <= s.recomputes,
            "fault recomputes exceed recomputes for {name} on {p:?}: {f:?} vs {s:?}"
        );

        // Fault accounting closes.
        assert!(f.retries <= f.task_failures, "{name} on {p:?}: {f:?}");
        assert_eq!(
            f.spec_wins + f.spec_losses,
            f.spec_launched,
            "unresolved speculative copy for {name} on {p:?}: {f:?}"
        );
        assert!(f.rejoins <= f.crashes, "{name} on {p:?}: {f:?}");
        if let Some(a) = &report.aborted {
            assert_eq!(a.attempts, p.max_attempts, "{name} on {p:?}");
            assert!(f.task_failures >= p.max_attempts as u64, "{name} on {p:?}");
        } else {
            assert_eq!(f.retries, f.task_failures, "{name} on {p:?}: {f:?}");
        }
        if build_plan(p).is_empty() {
            assert!(f.is_empty(), "faults from an empty plan: {name} on {p:?}");
            assert!(report.aborted.is_none());
        }

        // One placement per task, no matter how many retries or copies.
        let placements = report.placements.as_ref().expect("placements requested");
        assert_eq!(
            placements.len() as u64,
            report.tasks,
            "placement count diverged from tasks for {name} on {p:?}"
        );

        // Bit-determinism: the identical configuration replays exactly.
        let mut policy2 = policies()
            .into_iter()
            .find(|q| q.name() == *name)
            .expect("same policy");
        let cfg2 = build_cfg(p, &spec);
        let report2 =
            Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg2).run(&mut *policy2);
        assert_eq!(
            format!("{report:?}"),
            format!("{report2:?}"),
            "nondeterministic run for {name} on {p:?}"
        );
    }
}

fn params_strategy() -> impl Strategy<Value = Params> {
    let crash = (any::<u32>(), 0u32..6, prop_oneof![Just(None), Just(Some(1)), Just(Some(3))]);
    let slowdown = (
        any::<u32>(),
        prop_oneof![Just(2.0), Just(8.0)],
        0u32..4,
        prop_oneof![Just(None), Just(Some(2u32))],
    );
    (
        (1usize..4, 1u32..8, 1u64..4, 1u32..4),
        (
            prop_oneof![Just(0.3), Just(0.6), Just(2.0)],
            any::<u16>(),
            proptest::collection::vec(crash, 0..3),
            prop_oneof![Just(None), slowdown.prop_map(Some)],
        ),
        (
            prop_oneof![Just(0.0), Just(0.05), Just(0.3)],
            prop_oneof![Just(0.0), Just(0.1)],
            prop_oneof![Just(0.0), Just(0.1)],
            prop_oneof![Just(0.0), Just(0.5), Just(0.75)],
            1u32..5,
        ),
    )
        .prop_map(
            |(
                (iters, parts, block_kb, nodes),
                (cache_frac, seed, crashes, slowdown),
                (task_p, fetch_p, disk_p, spec_q, max_attempts),
            )| Params {
                iters,
                parts,
                block_kb,
                nodes,
                cache_frac,
                seed: seed as u64,
                crashes,
                slowdown,
                task_p,
                fetch_p,
                disk_p,
                spec_q,
                max_attempts,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn randomized_fault_plans_terminate_and_conserve_accounting(p in params_strategy()) {
        check(&p);
    }
}

/// Randomized serve-mode resilience: a streaming multi-tenant run under
/// node churn, app-level retry, and overload admission control.
#[derive(Debug, Clone)]
struct ServeParams {
    apps: usize,
    tenants: u32,
    gap_us: u64,
    seed: u64,
    /// Churn mean-time-between-failures, ms; 0 disables churn.
    mtbf_ms: u64,
    retries: u32,
    max_active: Option<u32>,
    admission: u8,
    deadline_ms: Option<u64>,
    fair: bool,
}

fn serve_template() -> AppSpec {
    let block = 256 * 1024;
    let mut b = AppBuilder::new("serve-prop-app");
    let input = b.input("in", 4, block, 2_000);
    let hot = b.narrow("hot", input, block, 5_000);
    b.persist(hot, StorageLevel::MemoryAndDisk);
    for i in 0..2 {
        let s = b.shuffle(format!("agg{i}"), &[hot], 4, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

/// Every sampled churn+retry+admission stream must (a) terminate, (b)
/// partition its submissions exactly into shed / aborted / completed, (c)
/// respect the retry budget and shed only under an active Shed cap, and (d)
/// replay byte-identically from the same seed.
fn serve_check(p: &ServeParams) {
    let spec = serve_template();
    let subs: Vec<(&AppSpec, u32)> = (0..p.apps)
        .map(|i| (&spec, i as u32 % p.tenants))
        .collect();
    let admission = match p.admission % 3 {
        0 => AdmissionPolicy::Queue,
        1 => AdmissionPolicy::Shed,
        _ => AdmissionPolicy::Degrade,
    };
    let nodes = 2u32;
    let footprint: u64 = spec
        .cached_rdds()
        .map(|r| r.num_partitions as u64 * r.block_size)
        .sum();
    let per_node = ((footprint as f64 * 0.5) / nodes as f64) as u64;
    let run = || {
        let mut sim = SimConfig::new(ClusterConfig::tiny(nodes, per_node));
        sim.seed = p.seed;
        if p.mtbf_ms > 0 {
            let mtbf_us = p.mtbf_ms * 1_000;
            sim.faults.node_churn(mtbf_us, (mtbf_us / 3).max(1));
        }
        let serve = ServeSim::new(
            &subs,
            ServeConfig {
                sim,
                arrivals: ArrivalProcess::Poisson {
                    mean_gap_us: p.gap_us,
                },
                sched: if p.fair {
                    ServeSched::FairShare
                } else {
                    ServeSched::Fifo
                },
                quota: QuotaKind::Unlimited,
                upfront: false,
                intern: true,
                resilience: ResilienceConfig {
                    max_app_attempts: p.retries + 1,
                    // Small backoffs keep churned streams short.
                    retry_backoff_us: 1_000,
                    max_retry_backoff_us: 8_000,
                    admission,
                    max_active_apps: p.max_active,
                    queue_cap: None,
                    deadline_us: p.deadline_ms.map(|d| d * 1_000),
                },
            },
        );
        serve.run_with(|_| PolicyKind::Lru.build())
    };
    let rep = run();
    let n = p.apps;
    assert_eq!(rep.reports.len(), n, "one report per submission: {p:?}");
    assert_eq!(rep.completions.len(), n);
    let shed: Vec<bool> = match &rep.resilience {
        Some(r) => r.shed.clone(),
        None => vec![false; n],
    };
    let (mut shed_c, mut aborted_c, mut done_c) = (0usize, 0usize, 0usize);
    for (i, &was_shed) in shed.iter().enumerate() {
        let r = &rep.reports[i];
        assert!(
            rep.completions[i] >= rep.arrivals[i],
            "time ran backwards for submission {i}: {p:?}"
        );
        if was_shed {
            shed_c += 1;
            assert_eq!(r.app_attempts, 0, "shed submissions never run: {p:?}");
            assert_eq!(
                rep.completions[i], rep.arrivals[i],
                "a shed submission completes at its arrival: {p:?}"
            );
            assert!(r.aborted.is_none(), "shed and aborted overlap: {p:?}");
        } else if r.aborted.is_some() {
            aborted_c += 1;
        } else {
            done_c += 1;
        }
        if let Some(res) = &rep.resilience {
            assert!(
                res.app_attempts[i] <= p.retries + 1,
                "retry budget overrun for submission {i}: {p:?}"
            );
            assert_eq!(res.app_attempts[i] == 0, shed[i], "{p:?}");
        }
    }
    // The stream partitions exactly: shed + aborted + completed = submitted.
    assert_eq!(shed_c + aborted_c + done_c, n, "{p:?}");
    // Shedding needs an active-app cap with the Shed policy.
    if p.max_active.is_none() || admission != AdmissionPolicy::Shed {
        assert_eq!(shed_c, 0, "shed without a Shed cap: {p:?}");
    }
    // Aborts are only reachable through churn crashes in this plan.
    if p.mtbf_ms == 0 {
        assert_eq!(aborted_c, 0, "abort without any fault source: {p:?}");
    }
    // Byte-determinism: the identical stream replays exactly.
    let rep2 = run();
    assert_eq!(
        format!("{:?}", rep.reports),
        format!("{:?}", rep2.reports),
        "nondeterministic serve replay: {p:?}"
    );
    assert_eq!(rep.summary(), rep2.summary(), "{p:?}");
    assert_eq!(rep.resilience, rep2.resilience, "{p:?}");
}

fn serve_params_strategy() -> impl Strategy<Value = ServeParams> {
    (
        (1usize..6, 1u32..4, prop_oneof![Just(0u64), Just(5_000), Just(50_000)]),
        (
            any::<u16>(),
            prop_oneof![Just(0u64), Just(20), Just(100)],
            0u32..3,
        ),
        (
            prop_oneof![Just(None), Just(Some(1u32)), Just(Some(2))],
            0u8..3,
            prop_oneof![Just(None), Just(Some(1u64)), Just(Some(10_000))],
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (apps, tenants, gap_us),
                (seed, mtbf_ms, retries),
                (max_active, admission, deadline_ms, fair),
            )| ServeParams {
                apps,
                tenants,
                gap_us,
                seed: seed as u64,
                mtbf_ms,
                retries,
                max_active,
                admission,
                deadline_ms,
                fair,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn randomized_resilient_serve_streams_terminate_and_partition(p in serve_params_strategy()) {
        serve_check(&p);
    }
}

/// Deterministic spot-check of the resilient-serve corner: fast churn, a
/// retry budget, a tight Shed cap and a deadline, all at once.
#[test]
fn churned_shedding_serve_stream_partitions_and_replays() {
    serve_check(&ServeParams {
        apps: 5,
        tenants: 2,
        gap_us: 5_000,
        seed: 11,
        mtbf_ms: 20,
        retries: 2,
        max_active: Some(1),
        admission: 1, // Shed
        deadline_ms: Some(10_000),
        fair: true,
    });
}

/// Deterministic spot-check combining every fault class at once: two
/// crashes (one with downtime), a slowdown window, all three stochastic
/// processes, and speculation — under cache pressure.
#[test]
fn kitchen_sink_fault_plan_terminates_and_accounts() {
    check(&Params {
        iters: 3,
        parts: 7,
        block_kb: 2,
        nodes: 3,
        cache_frac: 0.3,
        seed: 11,
        crashes: vec![(2, 1, None), (0, 2, Some(2))],
        slowdown: Some((1, 8.0, 0, Some(3))),
        task_p: 0.05,
        fetch_p: 0.1,
        disk_p: 0.1,
        spec_q: 0.5,
        max_attempts: 4,
    });
}
