//! Differential property test for the indexed task scheduler.
//!
//! The engine places tasks with two interchangeable schedulers: the original
//! linear scans (`SimConfig::linear_sched = true`, kept as the reference
//! implementation — a per-task `min_by_key` over the home node's cores plus
//! a full nodes×cores scan per task under delay scheduling) and the
//! incrementally maintained `SlotIndex`. For randomized applications ×
//! cluster shapes (nodes, cores, jitter, stragglers, delay bounds, node
//! failures), the two must produce *byte-identical placement sequences* —
//! every task's `(node, slot, start)` — and byte-identical `RunReport`s.

use proptest::prelude::*;
use refdist_cluster::{ClusterConfig, RunReport, SimConfig, Simulation};
use refdist_core::{MrdPolicy, ProfileMode};
use refdist_dag::{AppBuilder, AppPlan, AppSpec, StorageLevel};
use refdist_policies::PolicyKind;

/// Parameters of a randomized iterative application.
#[derive(Debug, Clone)]
struct AppParams {
    iters: usize,
    parts: u32,
    block_kb: u64,
}

fn build_app(p: &AppParams) -> AppSpec {
    let block = p.block_kb * 256 * 1024;
    let mut b = AppBuilder::new("sched-app");
    let input = b.input("in", p.parts, block, 2_000);
    let data = b.narrow("data", input, block, 5_000);
    b.persist(data, StorageLevel::MemoryAndDisk);
    for i in 0..p.iters {
        let s = b.shuffle(format!("agg{i}"), &[data], p.parts, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

/// Parameters of a randomized cluster/scheduling configuration.
#[derive(Debug, Clone)]
struct CfgParams {
    nodes: u32,
    cores: u32,
    cache_frac: f64,
    jitter: f64,
    seed: u64,
    slow: bool,
    failure: bool,
    delay: Option<u64>,
}

fn build_cfg(c: &CfgParams, spec: &AppSpec) -> SimConfig {
    let footprint: u64 = spec
        .cached_rdds()
        .map(|r| r.num_partitions as u64 * r.block_size)
        .sum();
    let per_node = ((footprint as f64 * c.cache_frac) / c.nodes as f64) as u64;
    let mut cfg = SimConfig::new(ClusterConfig::tiny(c.nodes, per_node));
    cfg.cluster.cores_per_node = c.cores;
    cfg.seed = c.seed;
    cfg.compute_jitter = c.jitter;
    cfg.delay_scheduling_us = c.delay;
    cfg.collect_placements = true;
    if c.slow {
        cfg.faults.slow_node(0, 8.0);
    }
    if c.failure {
        cfg.faults.node_failure(c.nodes - 1, 2);
    }
    cfg
}

fn run_once(spec: &AppSpec, plan: &AppPlan, cfg: SimConfig, kind: &str) -> RunReport {
    let sim = Simulation::new(spec, plan, ProfileMode::Recurring, cfg);
    match kind {
        "lru" => sim.run(&mut *PolicyKind::Lru.build()),
        _ => sim.run(&mut MrdPolicy::full()),
    }
}

fn assert_equivalent(p: &AppParams, c: &CfgParams) {
    let spec = build_app(p);
    let plan = AppPlan::build(&spec);
    for kind in ["lru", "mrd"] {
        let mut linear_cfg = build_cfg(c, &spec);
        linear_cfg.linear_sched = true;
        let indexed_cfg = build_cfg(c, &spec);
        let linear = run_once(&spec, &plan, linear_cfg, kind);
        let indexed = run_once(&spec, &plan, indexed_cfg, kind);
        assert_eq!(
            linear.placements, indexed.placements,
            "placement sequence diverged for {kind} on {p:?} {c:?}"
        );
        assert_eq!(
            format!("{linear:?}"),
            format!("{indexed:?}"),
            "report diverged for {kind} on {p:?} {c:?}"
        );
    }
}

fn app_strategy() -> impl Strategy<Value = AppParams> {
    (1usize..4, 1u32..16, 1u64..4).prop_map(|(iters, parts, block_kb)| AppParams {
        iters,
        parts,
        block_kb,
    })
}

fn cfg_strategy() -> impl Strategy<Value = CfgParams> {
    (
        (
            1u32..6,
            1u32..5,
            prop_oneof![Just(0.3), Just(2.0)],
            prop_oneof![Just(0.0), Just(0.1)],
        ),
        (
            any::<u16>(),
            any::<bool>(),
            any::<bool>(),
            // None exercises the home-only path; 0 migrates aggressively
            // (maximum index churn); 5 ms sits at the decision boundary.
            prop_oneof![Just(None), Just(Some(0u64)), Just(Some(5_000u64))],
        ),
    )
        .prop_map(
            |((nodes, cores, cache_frac, jitter), (seed, slow, failure, delay))| CfgParams {
                nodes,
                cores,
                cache_frac,
                jitter,
                seed: seed as u64,
                slow,
                failure,
                delay,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn indexed_scheduler_is_indistinguishable_from_linear(
        app in app_strategy(),
        cfg in cfg_strategy(),
    ) {
        assert_equivalent(&app, &cfg);
    }
}

/// Deterministic spot-check of the migration-heavy corner: a straggler, many
/// task waves per node, a tight delay bound, and free-time ties from jitter
/// being off — the regime where tie-breaking mistakes actually surface.
#[test]
fn indexed_scheduler_matches_linear_under_migration_pressure() {
    let app = AppParams {
        iters: 4,
        parts: 13,
        block_kb: 2,
    };
    for delay in [Some(0), Some(5_000), Some(50_000)] {
        let cfg = CfgParams {
            nodes: 3,
            cores: 2,
            cache_frac: 2.0,
            jitter: 0.0,
            seed: 7,
            slow: true,
            failure: false,
            delay,
        };
        assert_equivalent(&app, &cfg);
    }
}
