//! Differential property test for the event-engine backends.
//!
//! PR 7 replaces the binary-heap event queue with a bucketed calendar queue
//! and moves the remaining per-task engine state into struct-of-arrays
//! scratch. The heap path stays live behind `SimConfig::heap_events` as the
//! reference implementation, and this suite is the proof that the swap is
//! *byte-invisible*: for arbitrary apps, clusters, policies, chaos plans and
//! serve streams, the calendar-backed engine must produce reports, task
//! placements, and victim/purge decision sequences identical to the heap
//! run. This is what keeps every golden file, BENCH number and sweep key
//! from PRs 1–6 valid.

use proptest::prelude::*;
use refdist_cluster::{
    ArrivalProcess, ClusterConfig, FaultPlan, QuotaKind, RunReport, ServeConfig, ServeSched,
    ServeSim, SimConfig, Simulation,
};
use refdist_core::{MrdPolicy, ProfileMode};
use refdist_dag::{AppBuilder, AppPlan, AppSpec, BlockId, BlockSlots, StorageLevel};
use refdist_policies::{CachePolicy, PolicyKind};
use refdist_store::NodeId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Victim/purge decision log, shared out of the policy box via `Arc` so the
/// serve driver (which consumes its policy boxes) still exposes sequences.
#[derive(Debug, Default, PartialEq)]
struct Log {
    victims: Vec<(NodeId, Vec<BlockId>)>,
    purges: Vec<Vec<BlockId>>,
}

/// Wraps any policy and records its decision sequences.
struct Recorder {
    inner: Box<dyn CachePolicy>,
    log: Arc<Mutex<Log>>,
}

impl Recorder {
    fn wrap(inner: Box<dyn CachePolicy>) -> (Box<dyn CachePolicy>, Arc<Mutex<Log>>) {
        let log = Arc::new(Mutex::new(Log::default()));
        (
            Box::new(Recorder {
                inner,
                log: Arc::clone(&log),
            }),
            log,
        )
    }
}

impl CachePolicy for Recorder {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn attach_slots(&mut self, slots: &Arc<BlockSlots>) {
        self.inner.attach_slots(slots);
    }
    fn on_job_submit(&mut self, job: refdist_dag::JobId, visible: &refdist_dag::AppProfile) {
        self.inner.on_job_submit(job, visible);
    }
    fn on_stage_start(&mut self, stage: refdist_dag::StageId, visible: &refdist_dag::AppProfile) {
        self.inner.on_stage_start(stage, visible);
    }
    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_insert(node, block);
    }
    fn on_access(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_access(node, block);
    }
    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_remove(node, block);
    }
    fn on_node_join(&mut self, node: NodeId) {
        self.inner.on_node_join(node);
    }
    fn pick_victim(&mut self, node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        self.inner.pick_victim(node, candidates)
    }
    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        let v = self.inner.select_victims(node, shortfall, resident);
        self.log.lock().unwrap().victims.push((node, v.clone()));
        v
    }
    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        let p = self.inner.purge_candidates(in_memory);
        self.log.lock().unwrap().purges.push(p.clone());
        p
    }
    fn prefetch_order(&mut self, node: NodeId, missing: &[BlockId]) -> Vec<BlockId> {
        self.inner.prefetch_order(node, missing)
    }
    fn wants_prefetch(&self) -> bool {
        self.inner.wants_prefetch()
    }
    fn wants_purge(&self) -> bool {
        self.inner.wants_purge()
    }
}

#[derive(Debug, Clone)]
struct Params {
    iters: usize,
    parts: u32,
    block_kb: u64,
    mem_only: bool,
    nodes: u32,
    cache_frac: f64,
    jitter: f64,
    seed: u64,
    /// Stochastic chaos plus speculation — the regime where the engine's
    /// internal event queue actually carries per-task completion events.
    chaos: bool,
}

fn build_app(p: &Params) -> AppSpec {
    let block = p.block_kb * 256 * 1024;
    let level = if p.mem_only {
        StorageLevel::MemoryOnly
    } else {
        StorageLevel::MemoryAndDisk
    };
    let mut b = AppBuilder::new("event-diff-app");
    let input = b.input("in", p.parts, block, 2_000);
    let hot = b.narrow("hot", input, block, 5_000);
    b.persist(hot, level);
    for i in 0..p.iters {
        let s = b.shuffle(format!("agg{i}"), &[hot], p.parts, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

fn build_cfg(p: &Params, spec: &AppSpec, heap_events: bool) -> SimConfig {
    let footprint: u64 = spec
        .cached_rdds()
        .map(|r| r.num_partitions as u64 * r.block_size)
        .sum();
    let per_node = ((footprint as f64 * p.cache_frac) / p.nodes as f64) as u64;
    let mut cfg = SimConfig::new(ClusterConfig::tiny(p.nodes, per_node));
    cfg.seed = p.seed;
    cfg.compute_jitter = p.jitter;
    cfg.collect_trace = true;
    cfg.collect_placements = true;
    cfg.heap_events = heap_events;
    if p.chaos {
        cfg.faults = FaultPlan::chaos(0.05);
        // Chaos alone never speculates; turn it on so the completion-event
        // queue (the k-th-pop threshold) is actually on the measured path,
        // and slow a node so stragglers exist to speculate on.
        cfg.faults.speculation_quantile = 0.5;
        cfg.faults.slow_node(0, 3.0);
    }
    cfg
}

type Build = Box<dyn Fn() -> Box<dyn CachePolicy>>;

fn all_policies() -> Vec<(&'static str, Build)> {
    vec![
        ("lru", Box::new(|| PolicyKind::Lru.build()) as Build),
        ("fifo", Box::new(|| PolicyKind::Fifo.build())),
        ("random", Box::new(|| PolicyKind::Random.build())),
        ("lrc", Box::new(|| PolicyKind::Lrc.build())),
        ("memtune", Box::new(|| PolicyKind::MemTune.build())),
        ("mrd", Box::new(|| Box::new(MrdPolicy::full()))),
    ]
}

fn run_solo(
    spec: &AppSpec,
    plan: &AppPlan,
    cfg: SimConfig,
    build: &Build,
) -> (RunReport, Arc<Mutex<Log>>) {
    let (mut rec, log) = Recorder::wrap(build());
    let report = Simulation::new(spec, plan, ProfileMode::Recurring, cfg).run(&mut *rec);
    (report, log)
}

/// Solo (and chaotic) engine runs: heap vs calendar must be byte-identical.
fn assert_solo_identical(p: &Params) {
    let spec = build_app(p);
    let plan = AppPlan::build(&spec);
    for (name, build) in all_policies() {
        let (heap_report, heap_log) = run_solo(&spec, &plan, build_cfg(p, &spec, true), &build);
        let (cal_report, cal_log) = run_solo(&spec, &plan, build_cfg(p, &spec, false), &build);
        assert_eq!(
            format!("{heap_report:?}"),
            format!("{cal_report:?}"),
            "report diverged for {name} on {p:?}"
        );
        assert!(
            heap_report.placements.is_some(),
            "placement log must be recorded"
        );
        assert_eq!(
            *heap_log.lock().unwrap(),
            *cal_log.lock().unwrap(),
            "decision sequences diverged for {name} on {p:?}"
        );
    }
}

/// Serve streams: three submissions across two tenants under both
/// disciplines; heap vs calendar must agree on the whole `ServeReport` and
/// on every submission's decision sequences.
fn assert_serve_identical(p: &Params, sched: ServeSched) {
    let spec_a = build_app(p);
    let spec_b = build_app(&Params {
        iters: (p.iters % 2) + 1,
        ..p.clone()
    });
    let subs: Vec<(&AppSpec, u32)> = vec![(&spec_a, 0), (&spec_b, 0), (&spec_a, 1)];
    let run = |heap_events: bool| {
        let cfg = ServeConfig {
            sim: build_cfg(p, &spec_a, heap_events),
            arrivals: ArrivalProcess::Poisson {
                mean_gap_us: 200_000,
            },
            sched,
            quota: QuotaKind::EqualShare,
            upfront: false,
            intern: true,
            resilience: Default::default(),
        };
        let serve = ServeSim::new(&subs, cfg);
        let mut logs = Vec::new();
        let mut policies: Vec<Box<dyn CachePolicy>> = Vec::new();
        for (_, build) in [&all_policies()[0], &all_policies()[5], &all_policies()[3]] {
            let (rec, log) = Recorder::wrap(build());
            policies.push(rec);
            logs.push(log);
        }
        (serve.run(policies), logs)
    };
    let (heap_report, heap_logs) = run(true);
    let (cal_report, cal_logs) = run(false);
    assert_eq!(
        format!("{heap_report:?}"),
        format!("{cal_report:?}"),
        "serve report diverged under {sched} on {p:?}"
    );
    for (i, (h, c)) in heap_logs.iter().zip(&cal_logs).enumerate() {
        assert_eq!(
            *h.lock().unwrap(),
            *c.lock().unwrap(),
            "submission {i} decision sequence diverged under {sched} on {p:?}"
        );
    }
}

fn params_strategy() -> impl Strategy<Value = Params> {
    (
        (1usize..4, 1u32..8, 1u64..4, any::<bool>()),
        (
            1u32..4,
            prop_oneof![Just(0.3), Just(0.6), Just(2.0)],
            prop_oneof![Just(0.0), Just(0.1)],
            any::<u16>(),
            any::<bool>(),
        ),
    )
        .prop_map(
            |((iters, parts, block_kb, mem_only), (nodes, cache_frac, jitter, seed, chaos))| {
                Params {
                    iters,
                    parts,
                    block_kb,
                    mem_only,
                    nodes,
                    cache_frac,
                    jitter,
                    seed: seed as u64,
                    chaos,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn calendar_engine_is_byte_identical_to_heap(p in params_strategy()) {
        assert_solo_identical(&p);
    }

    #[test]
    fn calendar_serve_is_byte_identical_to_heap(p in params_strategy()) {
        assert_serve_identical(&p, ServeSched::Fifo);
        assert_serve_identical(&p, ServeSched::FairShare);
    }
}

/// Deterministic spot-check of the pressure + chaos + speculation corner, so
/// the equivalence claim does not rest on random sampling alone.
#[test]
fn calendar_engine_identical_under_pressure_and_chaos() {
    assert_solo_identical(&Params {
        iters: 3,
        parts: 7,
        block_kb: 2,
        mem_only: false,
        nodes: 3,
        cache_frac: 0.3,
        jitter: 0.1,
        seed: 7,
        chaos: true,
    });
}

#[test]
fn calendar_serve_identical_under_pressure() {
    let p = Params {
        iters: 2,
        parts: 5,
        block_kb: 1,
        mem_only: false,
        nodes: 2,
        cache_frac: 0.4,
        jitter: 0.1,
        seed: 11,
        chaos: false,
    };
    assert_serve_identical(&p, ServeSched::Fifo);
    assert_serve_identical(&p, ServeSched::FairShare);
}
