//! Simulation run reports.

use crate::faults::{FaultStats, StageAbort};
use refdist_dag::{BlockId, StageId};
use refdist_simcore::{SimDuration, SimTime};
use refdist_store::CacheStats;

/// Task-placement counters for one run: where the scheduler put tasks
/// relative to their data's home node. Remote placements only happen under
/// delay scheduling ([`crate::SimConfig::delay_scheduling_us`]) — a task
/// migrates off its home node only when the home queue keeps it waiting past
/// the delay bound, so a migration target is never the home node itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Tasks that ran on their partition's home node.
    pub home_placements: u64,
    /// Tasks delay-scheduled onto another node (paying remote reads).
    pub remote_placements: u64,
}

/// Everything the evaluation harness needs from one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Policy name (from [`refdist_policies::CachePolicy::name`]).
    pub policy: String,
    /// Job completion time of the whole application (makespan).
    pub jct: SimDuration,
    /// Cluster-aggregated cache statistics.
    pub stats: CacheStats,
    /// Task-placement counters (home vs delay-scheduled remote).
    pub sched: SchedStats,
    /// Per-node cache statistics.
    pub per_node: Vec<CacheStats>,
    /// Total task time spent waiting on input I/O.
    pub io_time: SimDuration,
    /// Total task compute time.
    pub compute_time: SimDuration,
    /// Per executed stage: (stage, start, end).
    pub stage_times: Vec<(StageId, SimTime, SimTime)>,
    /// Number of tasks executed.
    pub tasks: u64,
    /// Fault accounting: retries, backoff time, fault-forced recomputes,
    /// crashes/rejoins, speculative wins/losses. All-zero when the run's
    /// [`crate::FaultPlan`] never fired.
    pub faults: FaultStats,
    /// Admissions this application consumed: always 1 for single-app runs
    /// and passive serve runs; >1 when serve-mode app-level retry
    /// re-admitted it; 0 for the placeholder report of a shed submission.
    pub app_attempts: u32,
    /// Set when some task exhausted its retry budget and the run stopped at
    /// that stage; later stages never executed and the report covers only
    /// the completed prefix.
    pub aborted: Option<StageAbort>,
    /// Global cached-block access trace, when requested
    /// ([`crate::SimConfig::collect_trace`]).
    pub trace: Option<Vec<BlockId>>,
    /// Per-task `(node, slot, start)` placements in execution order, when
    /// requested ([`crate::SimConfig::collect_placements`]).
    pub placements: Option<Vec<(u32, u32, SimTime)>>,
}

impl RunReport {
    /// Cluster-wide memory hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio()
    }

    /// JCT in seconds (for plots).
    pub fn jct_secs(&self) -> f64 {
        self.jct.as_secs_f64()
    }

    /// This run's JCT normalized against a baseline run (the paper reports
    /// everything as a fraction of LRU's JCT).
    pub fn normalized_jct(&self, baseline: &RunReport) -> f64 {
        let base = baseline.jct.micros();
        if base == 0 {
            1.0
        } else {
            self.jct.micros() as f64 / base as f64
        }
    }

    /// The stage timeline as CSV (`stage,job,start_s,end_s,duration_s`),
    /// ready for plotting.
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from("stage,start_s,end_s,duration_s\n");
        for (sid, start, end) in &self.stage_times {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                sid.0,
                start.as_secs_f64(),
                end.as_secs_f64(),
                (*end - *start).as_secs_f64()
            ));
        }
        out
    }

    /// Fraction of total task time spent waiting on input I/O.
    pub fn io_share(&self) -> f64 {
        let total = self.io_time.micros() + self.compute_time.micros();
        if total == 0 {
            0.0
        } else {
            self.io_time.micros() as f64 / total as f64
        }
    }

    /// One-line human-readable summary. Delay-scheduled remote placements
    /// (when any happened) and a nonzero bad-victim count (the policy
    /// selected non-evictable victims; see [`CacheStats::bad_victims`]) are
    /// appended so scheduling behaviour and divergences are visible even in
    /// release builds.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} under {}: JCT {:.3}s, hit ratio {:.1}%, {} hits / {} misses, {} evictions, {} prefetches",
            self.app,
            self.policy,
            self.jct.as_secs_f64(),
            self.hit_ratio() * 100.0,
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions + self.stats.purges,
            self.stats.prefetches,
        );
        if self.sched.remote_placements > 0 {
            s.push_str(&format!(
                ", {} of {} tasks delay-scheduled remotely",
                self.sched.remote_placements,
                self.sched.home_placements + self.sched.remote_placements
            ));
        }
        if self.stats.bad_victims > 0 {
            s.push_str(&format!(
                ", {} BAD victim selections",
                self.stats.bad_victims
            ));
        }
        if !self.faults.is_empty() {
            let f = &self.faults;
            s.push_str(&format!(
                ", faults: {} task failures / {} retries, {} fetch + {} disk read failures, {} fault recomputes, {} crashes / {} rejoins, {} speculative ({} won)",
                f.task_failures,
                f.retries,
                f.fetch_failures,
                f.disk_failures,
                f.fault_recomputes,
                f.crashes,
                f.rejoins,
                f.spec_launched,
                f.spec_wins,
            ));
        }
        if let Some(a) = &self.aborted {
            s.push_str(&format!(
                " — ABORTED at stage {} (app {}, task {} failed {} attempts)",
                a.stage.0, a.app, a.task, a.attempts
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(jct_us: u64) -> RunReport {
        RunReport {
            app: "test".into(),
            policy: "LRU".into(),
            jct: SimDuration(jct_us),
            stats: CacheStats {
                hits: 9,
                misses: 1,
                ..Default::default()
            },
            sched: SchedStats::default(),
            per_node: vec![],
            io_time: SimDuration(0),
            compute_time: SimDuration(0),
            stage_times: vec![],
            tasks: 0,
            faults: FaultStats::default(),
            app_attempts: 1,
            aborted: None,
            trace: None,
            placements: None,
        }
    }

    #[test]
    fn normalized_jct() {
        let base = report(1_000_000);
        let half = report(500_000);
        assert!((half.normalized_jct(&base) - 0.5).abs() < 1e-12);
        assert_eq!(half.normalized_jct(&report(0)), 1.0);
    }

    #[test]
    fn hit_ratio_passthrough() {
        assert!((report(1).hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = report(2_000_000).summary();
        assert!(s.contains("2.000s"));
        assert!(s.contains("90.0%"));
        assert!(!s.contains("BAD"));
        assert!(!s.contains("delay-scheduled"));
    }

    #[test]
    fn summary_surfaces_remote_placements() {
        let mut r = report(1);
        r.sched.home_placements = 7;
        r.sched.remote_placements = 3;
        assert!(r
            .summary()
            .contains("3 of 10 tasks delay-scheduled remotely"));
    }

    #[test]
    fn summary_surfaces_bad_victims() {
        let mut r = report(1);
        r.stats.bad_victims = 2;
        assert!(r.summary().contains("2 BAD victim selections"));
    }

    #[test]
    fn summary_stays_clean_without_faults() {
        let s = report(1).summary();
        assert!(!s.contains("faults:"));
        assert!(!s.contains("ABORTED"));
    }

    #[test]
    fn summary_surfaces_faults_and_aborts() {
        let mut r = report(1);
        r.faults.task_failures = 3;
        r.faults.retries = 2;
        r.faults.crashes = 1;
        r.aborted = Some(StageAbort {
            stage: StageId(4),
            app: 2,
            task: 7,
            attempts: 4,
        });
        let s = r.summary();
        assert!(s.contains("3 task failures / 2 retries"));
        assert!(s.contains("1 crashes / 0 rejoins"));
        assert!(s.contains("ABORTED at stage 4 (app 2, task 7 failed 4 attempts)"));
    }

    #[test]
    fn timeline_csv_format() {
        let mut r = report(10);
        r.stage_times = vec![
            (StageId(0), SimTime(0), SimTime(1_000_000)),
            (StageId(1), SimTime(1_000_000), SimTime(2_500_000)),
        ];
        let csv = r.timeline_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "stage,start_s,end_s,duration_s");
        assert_eq!(lines[1], "0,0.000000,1.000000,1.000000");
        assert_eq!(lines[2], "1,1.000000,2.500000,1.500000");
    }

    #[test]
    fn io_share_bounds() {
        let mut r = report(10);
        assert_eq!(r.io_share(), 0.0);
        r.io_time = SimDuration(300);
        r.compute_time = SimDuration(700);
        assert!((r.io_share() - 0.3).abs() < 1e-12);
    }
}
