//! Cluster and simulation configuration, with the paper's Table 4 presets.

use crate::faults::FaultPlan;

/// Static description of a cluster: homogeneous worker nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Preset name, for reports.
    pub name: String,
    /// Number of worker nodes.
    pub nodes: u32,
    /// Task slots (vCPUs) per node.
    pub cores_per_node: u32,
    /// Memory cache capacity per node, in bytes (Spark's storage memory).
    pub cache_bytes: u64,
    /// Local disk bandwidth per node, bytes/second.
    pub disk_bw: u64,
    /// NIC bandwidth per node, bytes/second.
    pub net_bw: u64,
}

const MB: u64 = 1024 * 1024;

impl ClusterConfig {
    /// The paper's *Main cluster*: 25 VMs, 4 vCPU, 8 GB RAM, 500 Mbps.
    ///
    /// Cache capacity defaults to 1 GiB of storage memory per node
    /// (8 GB × default `spark.memory.fraction` share left for storage after
    /// execution memory); experiments that sweep cache sizes override it.
    pub fn main_cluster() -> Self {
        ClusterConfig {
            name: "Main".into(),
            nodes: 25,
            cores_per_node: 4,
            cache_bytes: 1024 * MB,
            disk_bw: 100 * MB,
            net_bw: 500 / 8 * MB, // 500 Mbps
        }
    }

    /// The paper's *LRC cluster*: 20 VMs, 2 vCPU, 8 GB, 450 Mbps
    /// (Amazon EC2 m4.large equivalents).
    pub fn lrc_cluster() -> Self {
        ClusterConfig {
            name: "LRC".into(),
            nodes: 20,
            cores_per_node: 2,
            cache_bytes: 1024 * MB,
            disk_bw: 90 * MB,
            net_bw: 450 / 8 * MB,
        }
    }

    /// The paper's *MemTune cluster*: 6 VMs, 8 vCPU, 8 GB, 1 Gbps (System G).
    pub fn memtune_cluster() -> Self {
        ClusterConfig {
            name: "MemTune".into(),
            nodes: 6,
            cores_per_node: 8,
            cache_bytes: 1024 * MB,
            disk_bw: 140 * MB,
            net_bw: 1000 / 8 * MB,
        }
    }

    /// A small cluster for unit tests and examples.
    pub fn tiny(nodes: u32, cache_bytes: u64) -> Self {
        ClusterConfig {
            name: "tiny".into(),
            nodes,
            cores_per_node: 2,
            cache_bytes,
            disk_bw: 100 * MB,
            net_bw: 50 * MB,
        }
    }

    /// Copy with a different per-node cache capacity (cache-size sweeps).
    pub fn with_cache(&self, cache_bytes: u64) -> Self {
        ClusterConfig {
            cache_bytes,
            ..self.clone()
        }
    }

    /// Total task slots in the cluster.
    pub fn total_slots(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.cores_per_node == 0 {
            return Err("nodes need at least one core".into());
        }
        if self.disk_bw == 0 || self.net_bw == 0 {
            return Err("bandwidths must be positive".into());
        }
        Ok(())
    }
}

/// Per-run simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cluster to simulate.
    pub cluster: ClusterConfig,
    /// Master seed for all randomness (task jitter).
    pub seed: u64,
    /// Relative compute-time jitter per task (0.05 = ±5%).
    pub compute_jitter: f64,
    /// Free-memory fraction above which MRD forces prefetches that do not
    /// fit, evicting to make room (paper §4.3: "set experimentally at 25% of
    /// the cache space").
    pub prefetch_threshold: f64,
    /// Fraction of each node's storage region that execution memory borrows
    /// for the duration of every stage (Spark's unified memory manager:
    /// shuffle/aggregation buffers evict cached blocks and release the space
    /// at stage end). This churn is what gives the prefetcher its window —
    /// the released space at a stage boundary is where Algorithm 1's
    /// 25%-free threshold comes into play.
    pub exec_mem_fraction: f64,
    /// Maximum blocks prefetched per node per stage. Algorithm 1's
    /// prefetching phase pulls "the data block with the lowest value" per
    /// node each round; the cap keeps the background traffic from starving
    /// demand I/O of subsequent stages.
    pub max_prefetch_per_node: usize,
    /// Deserialization cost when a block is read from disk or across the
    /// network, in CPU microseconds per MiB. Memory hits skip it — Spark's
    /// MemoryStore holds deserialized objects, while disk and network blocks
    /// are serialized bytes. This is a large part of why a cache hit is so
    /// much cheaper than a "cheap" local-disk miss.
    pub deser_us_per_mb: u64,
    /// Record the global cached-block access trace (for the Belady oracle).
    pub collect_trace: bool,
    /// Fault injection: scripted crashes/slowdowns plus stochastic task,
    /// fetch and disk failures, retries, and speculative execution (see
    /// [`FaultPlan`]). The default plan is empty — no fault machinery runs
    /// and results are byte-identical to a fault-free build. The legacy
    /// single-failure knobs are available as sugar:
    /// [`FaultPlan::node_failure`] (a worker loses its memory cache and
    /// local disk at a stage start; shuffle files are modelled as externally
    /// replicated — the paper's §4.4 path, where lost blocks are recomputed
    /// or re-read and the MRDmanager re-issues the table replica) and
    /// [`FaultPlan::slow_node`] (a permanent straggler).
    pub faults: FaultPlan,
    /// Adapt the prefetch threshold per node at runtime (the paper's stated
    /// future work: "modifying the prefetching memory threshold to be
    /// dynamic and automated"). When enabled, a node that wastes prefetches
    /// raises its threshold (prefetches less eagerly) and a node whose
    /// prefetches all hit lowers it, within [0.05, 0.6].
    pub adaptive_threshold: bool,
    /// Delay-scheduling bound in microseconds: a task waits at most this
    /// long for a slot on its home node before running on the globally
    /// earliest slot (paying remote reads). `None` = always run at home,
    /// which is the calibrated default.
    pub delay_scheduling_us: Option<u64>,
    /// Run the engine on its original hash-backed per-block state instead of
    /// the dense slot-indexed tables. The hash path is kept as the reference
    /// implementation: the differential tests run every simulation both ways
    /// and require byte-identical reports, and the benches use it as the
    /// honest "before" baseline. Off (dense) by default.
    pub reference_state: bool,
    /// Schedule tasks with the original linear slot scans (per-task
    /// `min_by_key` over the home node's cores, plus a full nodes×cores scan
    /// per task when delay scheduling is on) instead of the incrementally
    /// maintained slot index. Kept as the scheduler's reference
    /// implementation — the differential tests require identical placement
    /// sequences from both, and `bench_sched` measures the gap. Implied by
    /// [`reference_state`](Self::reference_state). Off (indexed) by default.
    pub linear_sched: bool,
    /// Record every task placement as `(node, slot, start)` in
    /// [`RunReport::placements`](crate::RunReport::placements). Used by the
    /// scheduler-equivalence tests; off by default.
    pub collect_placements: bool,
    /// Run every event queue (speculation deadlines, serve-mode FIFO
    /// arrival streams) on the original binary-heap backend instead of the
    /// calendar queue. Kept as the event engine's reference implementation —
    /// the differential tests run every simulation both ways and require
    /// byte-identical reports, placements, and victim/purge sequences.
    /// Implied by [`reference_state`](Self::reference_state). Off (calendar)
    /// by default.
    pub heap_events: bool,
}

impl SimConfig {
    /// Defaults from the paper: 25% prefetch threshold, light jitter.
    pub fn new(cluster: ClusterConfig) -> Self {
        SimConfig {
            cluster,
            seed: 42,
            compute_jitter: 0.05,
            prefetch_threshold: 0.25,
            exec_mem_fraction: 0.3,
            max_prefetch_per_node: 8,
            deser_us_per_mb: 12_000,
            collect_trace: false,
            faults: FaultPlan::default(),
            adaptive_threshold: false,
            delay_scheduling_us: None,
            reference_state: false,
            linear_sched: false,
            collect_placements: false,
            heap_events: false,
        }
    }

    /// Copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether event queues should use the reference heap backend
    /// ([`heap_events`](Self::heap_events), implied by
    /// [`reference_state`](Self::reference_state)).
    pub fn use_heap_events(&self) -> bool {
        self.heap_events || self.reference_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table4() {
        let main = ClusterConfig::main_cluster();
        assert_eq!((main.nodes, main.cores_per_node), (25, 4));
        let lrc = ClusterConfig::lrc_cluster();
        assert_eq!((lrc.nodes, lrc.cores_per_node), (20, 2));
        let mt = ClusterConfig::memtune_cluster();
        assert_eq!((mt.nodes, mt.cores_per_node), (6, 8));
        // Network ordering: MemTune (1 Gbps) > Main (500) > LRC (450).
        assert!(mt.net_bw > main.net_bw && main.net_bw > lrc.net_bw);
        for c in [main, lrc, mt] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn with_cache_overrides_capacity() {
        let c = ClusterConfig::main_cluster().with_cache(123);
        assert_eq!(c.cache_bytes, 123);
        assert_eq!(c.nodes, 25);
    }

    #[test]
    fn total_slots() {
        assert_eq!(ClusterConfig::main_cluster().total_slots(), 100);
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = ClusterConfig::tiny(1, 100);
        c.nodes = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::tiny(1, 100);
        c.cores_per_node = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::tiny(1, 100);
        c.disk_bw = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sim_config_defaults() {
        let s = SimConfig::new(ClusterConfig::tiny(2, 100));
        assert_eq!(s.prefetch_threshold, 0.25);
        assert!(!s.collect_trace);
        assert!(s.faults.is_empty());
        assert!(!s.adaptive_threshold);
        assert!(s.delay_scheduling_us.is_none());
        assert!(!s.reference_state);
        assert!(!s.linear_sched);
        assert!(!s.collect_placements);
        assert!(!s.heap_events);
        assert!(!s.use_heap_events());
        assert_eq!(s.with_seed(7).seed, 7);
    }

    #[test]
    fn reference_state_implies_heap_events() {
        let mut s = SimConfig::new(ClusterConfig::tiny(2, 100));
        s.reference_state = true;
        assert!(s.use_heap_events());
        let mut s = SimConfig::new(ClusterConfig::tiny(2, 100));
        s.heap_events = true;
        assert!(s.use_heap_events());
    }
}
