//! Deterministic cluster simulator for DAG data-parallel applications.
//!
//! Replaces the paper's physical testbed (Table 4): a cluster of worker
//! nodes, each with a fixed number of task slots (vCPUs), a byte-capacity
//! memory cache, a FIFO-bandwidth local disk and a FIFO-bandwidth NIC. An
//! application ([`refdist_dag::AppSpec`]) executes job by job, stage by
//! stage; each task pays for its input acquisition (memory hit, local disk,
//! remote fetch, shuffle read, or recompute-from-lineage), its pipelined
//! compute, and its shuffle write. The cache policy under test decides what
//! stays in memory, and — for MRD — what gets prefetched in the background
//! while earlier stages compute.
//!
//! Everything is deterministic given the [`SimConfig`] seed, so experiments
//! are reproducible and policies are compared on identical workloads.
//!
//! ## Modelling decisions (see also DESIGN.md)
//!
//! * Stages execute sequentially in stage-ID order. This matches the
//!   paper's reference-distance clock (a single "current stage" pointer) and
//!   the synchronous stage barrier Spark's shuffle imposes.
//! * Resources are FIFO bandwidth queues; prefetch I/O is enqueued *after*
//!   the stage's task I/O, modelling background transfers that use leftover
//!   bandwidth but still contend with subsequent demand.
//! * Blocks carry sizes, not data; compute costs are per-partition
//!   microsecond figures from the workload generators, with a seeded ±jitter.

//! # Example
//!
//! ```
//! use refdist_cluster::{ClusterConfig, SimConfig, Simulation};
//! use refdist_core::{MrdPolicy, ProfileMode};
//! use refdist_dag::{AppBuilder, AppPlan, StorageLevel};
//!
//! let mut b = AppBuilder::new("demo");
//! let input = b.input("in", 8, 1 << 20, 5_000);
//! let data = b.narrow("data", input, 1 << 20, 10_000);
//! b.persist(data, StorageLevel::MemoryAndDisk);
//! for i in 0..3 {
//!     let agg = b.shuffle(format!("agg{i}"), &[data], 8, 1 << 12, 1_000);
//!     b.action(format!("job{i}"), agg);
//! }
//! let spec = b.build();
//! let plan = AppPlan::build(&spec);
//!
//! let cfg = SimConfig::new(ClusterConfig::tiny(2, 4 << 20));
//! let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);
//! let mut mrd = MrdPolicy::full();
//! let report = sim.run(&mut mrd);
//! assert!(report.jct.micros() > 0);
//! assert_eq!(report.stats.accesses(), report.stats.hits + report.stats.misses);
//! ```

pub mod config;
pub mod faults;
pub mod report;
pub mod runtime;
mod sched;
pub mod serve;

pub use config::{ClusterConfig, SimConfig};
pub use faults::{
    ChurnProcess, CrashEvent, FaultPlan, FaultStats, Slowdown, StageAbort, TimedCrash,
    TimedSlowdown,
};
pub use report::{RunReport, SchedStats};
pub use runtime::{collect_trace, EngineScratch, Simulation};
pub use serve::{
    AdmissionPolicy, ArrivalProcess, QuotaKind, ResilienceConfig, ResilienceReport, ServeConfig,
    ServeReport, ServeSched, ServeSim, TenantMux, TenantSummary,
};
