//! Multi-tenant service mode: a *stream* of applications on one shared
//! cluster.
//!
//! The single-app engine executes one planned DAG to completion. Serving
//! generalizes it without forking the stage machinery: the submissions are
//! concatenated into one combined [`AppSpec`] with per-submission RDD-id
//! offsets ([`refdist_dag::combine_specs`]), so block ids stay globally
//! unique and the stores, block master, slot arena and scheduler index work
//! unchanged. One [`Engine`] instance owns the shared cluster state; each
//! submission keeps its own [`AppState`] slice (clock, RNG streams,
//! accumulators, fault accounting) that the driver swaps in around every
//! stage. The inter-job scheduler picks which application's next stage runs;
//! cache-policy callbacks route through a [`TenantMux`] that owns one policy
//! instance per submission.
//!
//! **Equivalence by construction**: with one submission, zero arrival delay
//! and an unlimited quota, the combined spec is a clone of the original, the
//! mux passes every hook through unchanged, and the driver performs exactly
//! the legacy `Engine::run` call sequence — `tests/differential_serve.rs`
//! asserts byte-identical reports, placements and victim/purge sequences
//! against the single-app engine for every policy.
//!
//! Tenancy is a *grouping* of submissions: several submissions may belong to
//! one tenant. Per-tenant cache quotas (enforced inside
//! [`refdist_store::MemoryStore`]) make a tenant over its share evict its own
//! blocks first; the mux's victim selection prefers the evicting tenant's own
//! blocks and counts cross-tenant evictions when it has to spill over.
//!
//! The Belady MIN oracle is not servable: its recorded trace is a whole-run
//! artifact of the single-app engine and has no meaning under interleaving.

use crate::config::SimConfig;
use crate::report::RunReport;
use crate::runtime::{AppState, Engine, EngineScratch, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use refdist_core::AppProfiler;
use refdist_dag::{
    combine_specs, remap_plan, remap_profile, AppPlan, AppProfile, AppSpec, BlockId, BlockSlots,
    JobId, RddId, SlotArena, StageId, TemplateCache, TenantMap,
};
use refdist_policies::CachePolicy;
use refdist_simcore::{SimDuration, SimTime};
use refdist_store::{CacheStats, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// How application arrivals are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed arrival times in simulated microseconds, one per submission
    /// (missing entries repeat the last; empty = everything at t=0).
    /// Consumes zero random draws, so replays are trivially seed-independent.
    Trace(Vec<u64>),
    /// Poisson process: i.i.d. exponential gaps with the given mean. The
    /// first submission arrives at t=0. Draws come from a dedicated stream
    /// salted off the master seed (the fault-plan pattern), so arrival
    /// randomness never perturbs the in-run jitter or fault streams.
    Poisson {
        /// Mean inter-arrival gap, microseconds.
        mean_gap_us: u64,
    },
}

/// Salt decorrelating the arrival stream from the jitter (`seed`) and fault
/// (`seed` splitmixed) streams.
const ARRIVAL_SALT: u64 = 0x5E17_A3D4_9C2B_0F86;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-application engine seed: submission 0 uses the master seed verbatim
/// (byte-equality with a standalone run), later submissions get decorrelated
/// but fully seed-determined streams.
fn app_seed(master: u64, i: usize) -> u64 {
    if i == 0 {
        master
    } else {
        splitmix64(master ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

/// Engine seed for admission `attempt` (0-based) of a submission: attempt 0
/// is the submission's [`app_seed`] verbatim (byte-equality with the
/// no-retry path), app-level retries get decorrelated but fully
/// seed-determined streams so a retry does not replay the exact jitter and
/// fault draws that killed the previous attempt.
fn attempt_seed(base: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        base
    } else {
        splitmix64(base ^ (attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
    }
}

/// Simulated microseconds between admission re-polls of a queued submission
/// (admission control, [`AdmissionPolicy::Queue`]): under fair-share the
/// running submissions advance between polls, so the wait resolves as soon
/// as one finishes, quantized to this granularity.
const QUEUE_POLL_US: u64 = 1_000;

impl ArrivalProcess {
    /// Arrival times (microseconds, ascending) for `n` submissions. Pure:
    /// same `(self, n, master_seed)` always yields the same times, and the
    /// trace variant ignores the seed entirely.
    pub fn arrivals(&self, n: usize, master_seed: u64) -> Vec<u64> {
        match self {
            ArrivalProcess::Trace(t) => (0..n)
                .map(|i| {
                    t.get(i)
                        .copied()
                        .unwrap_or_else(|| t.last().copied().unwrap_or(0))
                })
                .collect(),
            ArrivalProcess::Poisson { mean_gap_us } => {
                let mut rng = SmallRng::seed_from_u64(splitmix64(master_seed ^ ARRIVAL_SALT));
                let mut at = 0u64;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            let u: f64 = rng.random();
                            // Inverse-transform exponential; 1-u ∈ (0, 1].
                            let gap = -(1.0 - u).ln() * *mean_gap_us as f64;
                            at = at.saturating_add(gap as u64);
                        }
                        at
                    })
                    .collect()
            }
        }
    }
}

/// Inter-job scheduling discipline over the shared task slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSched {
    /// Arrived submissions run to completion in arrival order.
    Fifo,
    /// Round-robin by application clock: the next stage to run belongs to
    /// the arrived, unfinished application with the smallest clock, so every
    /// tenant's applications make progress at comparable simulated rates.
    FairShare,
}

impl fmt::Display for ServeSched {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServeSched::Fifo => "fifo",
            ServeSched::FairShare => "fair-share",
        })
    }
}

/// Per-tenant cache quota policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaKind {
    /// No per-tenant limit; tenants contend for the whole storage region.
    Unlimited,
    /// Each tenant may cache at most `cache_bytes / num_tenants` per node.
    EqualShare,
    /// Each tenant may cache at most this many bytes per node.
    Bytes(u64),
}

impl fmt::Display for QuotaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotaKind::Unlimited => f.write_str("unlimited"),
            QuotaKind::EqualShare => f.write_str("equal-share"),
            QuotaKind::Bytes(b) => write!(f, "{b}B"),
        }
    }
}

/// What happens to a newly arriving submission when the cluster is already
/// running [`ResilienceConfig::max_active_apps`] submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Wait in a (bounded, see [`ResilienceConfig::queue_cap`]) pending
    /// queue until a running submission finishes. Queue wait counts into
    /// the submission's JCT and is reported as queue delay.
    #[default]
    Queue,
    /// Reject the submission outright: it never runs, its report is a
    /// placeholder, and it counts as a deadline miss when a deadline is set.
    Shed,
    /// Admit the submission anyway but with caching bypassed: it computes
    /// everything from lineage and inserts nothing into the shared cache,
    /// so it cannot add cache pressure to the submissions already running.
    Degrade,
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdmissionPolicy::Queue => "queue",
            AdmissionPolicy::Shed => "shed",
            AdmissionPolicy::Degrade => "degrade",
        })
    }
}

/// Serve-mode resilience knobs: app-level retry and overload admission
/// control. The default is fully passive — no retry budget beyond the first
/// attempt, no active-app cap, no deadline — and a passive config is
/// byte-invisible: the driver takes no extra branch, draws no extra random
/// number, and reports no resilience section (the differential serve suite
/// pins this).
///
/// Retry and admission control are *streaming-driver* features: the upfront
/// reference path predates them and stays byte-frozen, so it rejects a
/// non-passive config (deadline accounting excepted — it is pure reporting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Total admissions a submission may consume, aborts included. 1 (the
    /// default) = no app-level retry; an aborted submission with budget
    /// left is torn down (blocks purged, slots recycled, policy dropped)
    /// and re-admitted through the normal streaming admission path after a
    /// capped exponential backoff.
    pub max_app_attempts: u32,
    /// Base app-level retry backoff, simulated microseconds; doubles per
    /// failed attempt.
    pub retry_backoff_us: u64,
    /// Cap on the app-level exponential backoff.
    pub max_retry_backoff_us: u64,
    /// What to do with a first-time arrival when `max_active_apps` are
    /// already running. Retries re-enter unconditionally: the cluster
    /// already accepted the submission once.
    pub admission: AdmissionPolicy,
    /// Cap on concurrently *running* (admitted, unfinished) submissions;
    /// `None` = unbounded (admission control off).
    pub max_active_apps: Option<u32>,
    /// Bound on how many submissions may wait in the pending queue at once
    /// (admission [`AdmissionPolicy::Queue`] only); an arrival past the cap
    /// is shed. `None` = unbounded queue.
    pub queue_cap: Option<u32>,
    /// Per-submission completion deadline measured from *arrival*,
    /// microseconds. Pure accounting: deadline misses (shed submissions
    /// included) feed the per-tenant SLO attainment in the report.
    pub deadline_us: Option<u64>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_app_attempts: 1,
            retry_backoff_us: 500_000,
            max_retry_backoff_us: 8_000_000,
            admission: AdmissionPolicy::Queue,
            max_active_apps: None,
            queue_cap: None,
            deadline_us: None,
        }
    }
}

impl ResilienceConfig {
    /// Whether nothing in this config can change a run's behaviour or its
    /// report (backoff values and the admission policy are irrelevant when
    /// no retry budget and no active-app cap can trigger them).
    pub fn is_passive(&self) -> bool {
        self.max_app_attempts <= 1 && self.max_active_apps.is_none() && self.deadline_us.is_none()
    }

    /// Backoff before app-level retry number `failures` (1-based), capped.
    pub fn app_backoff_us(&self, failures: u32) -> u64 {
        let shift = failures.saturating_sub(1).min(20);
        self.retry_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_retry_backoff_us)
    }

    /// Sanity-check the knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_app_attempts == 0 {
            return Err("max_app_attempts must be at least 1".into());
        }
        if self.queue_cap.is_some() && self.max_active_apps.is_none() {
            return Err("queue_cap is meaningless without max_active_apps".into());
        }
        Ok(())
    }
}

/// Configuration of one serve run, wrapping the single-app [`SimConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The underlying cluster/simulation knobs (seed included).
    pub sim: SimConfig,
    /// Arrival process over the submissions.
    pub arrivals: ArrivalProcess,
    /// Inter-job scheduling discipline.
    pub sched: ServeSched,
    /// Per-tenant cache quota.
    pub quota: QuotaKind,
    /// Build every submission's plan, profile and slot range up front
    /// (the original serve path, kept as the byte-equality reference).
    /// When `false` (the default posture) the driver streams: each
    /// submission is admitted at its arrival event and retired once
    /// drained, so engine state is O(peak-active), not O(stream).
    pub upfront: bool,
    /// Streaming admission interns per-template planning artifacts
    /// ([`TemplateCache`]): repeat submissions of a structurally identical
    /// spec reuse one memoized local-space plan/profile and pay only the
    /// `Arc`-sharing rebase. When `false`, every admission replans from
    /// scratch (`plan_one` — the per-submission reference path the
    /// differential suite checks interning against). The upfront path
    /// always replans per submission and ignores this flag.
    pub intern: bool,
    /// App-level retry and overload admission control. Passive by default;
    /// see [`ResilienceConfig`].
    pub resilience: ResilienceConfig,
}

impl ServeConfig {
    /// The serve configuration that is equivalent to running `sim`'s single
    /// application alone: everything arrives at t=0, FIFO, no quota.
    pub fn passthrough(sim: SimConfig) -> ServeConfig {
        ServeConfig {
            sim,
            arrivals: ArrivalProcess::Trace(Vec::new()),
            sched: ServeSched::Fifo,
            quota: QuotaKind::Unlimited,
            upfront: false,
            intern: true,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Multiplexes [`CachePolicy`] callbacks over one policy instance per
/// submission. Block-keyed hooks route to the block's owning submission
/// (evictions of a foreign tenant's block must reach *that* tenant's policy);
/// stage/job hooks and victim selection route to the currently running
/// submission. With a single submission every dispatch is a full pass-through
/// — the byte-equality anchor of the differential serve tests.
pub struct TenantMux {
    /// One slot per submission; `None` before admission (streaming) and
    /// after retirement. Upfront construction fills every slot.
    inner: Vec<Option<Box<dyn CachePolicy>>>,
    /// Admitted, unretired submissions, ascending.
    active: Vec<usize>,
    /// The full submission → tenant map (shared with the stores).
    map: Arc<TenantMap>,
    /// Streaming compaction: an owned clone of the map whose retired
    /// prefix has been dropped. Lookups route here when present, so mux
    /// map state is O(active submissions), not O(stream). `None` until
    /// the first compaction (and always on the upfront path).
    compact: Option<TenantMap>,
    current: usize,
    /// `[evictor_tenant][victim_tenant]` victim-selection counts; the
    /// diagonal counts a tenant evicting its own blocks. Sized from the
    /// *full* map — compaction must not shrink the matrix.
    cross: Vec<Vec<u64>>,
    /// `select_victims` scratch, reused across calls (the purge-path
    /// pattern): per-submission split of the node's resident map,
    /// per-tenant evictable bytes, the submission visit order, the
    /// other-tenant sort buffer, and the indices of `per_app` entries
    /// filled by the current call (so clearing is O(touched), never
    /// O(stream)).
    per_app: Vec<BTreeMap<BlockId, u64>>,
    tenant_bytes: Vec<u64>,
    order: Vec<usize>,
    others: Vec<usize>,
    filled: Vec<usize>,
}

impl TenantMux {
    /// One policy per submission, in submission order, all admitted up
    /// front (the reference serve path).
    pub fn new(policies: Vec<Box<dyn CachePolicy>>, map: Arc<TenantMap>) -> TenantMux {
        assert_eq!(policies.len(), map.num_apps(), "one policy per submission");
        let n = policies.len();
        let mut mux = Self::new_streaming(n, map);
        for (a, p) in policies.into_iter().enumerate() {
            mux.inner[a] = Some(p);
        }
        mux.active = (0..n).collect();
        mux
    }

    /// Streaming construction: `n` submissions, none admitted yet. Policies
    /// arrive one at a time through [`TenantMux::admit`].
    pub fn new_streaming(n: usize, map: Arc<TenantMap>) -> TenantMux {
        assert_eq!(n, map.num_apps(), "one slot per submission");
        let nt = map.num_tenants();
        TenantMux {
            inner: (0..n).map(|_| None).collect(),
            active: Vec::new(),
            map,
            compact: None,
            current: 0,
            cross: vec![vec![0; nt]; nt],
            per_app: vec![BTreeMap::new(); n],
            tenant_bytes: vec![0; nt],
            order: Vec::new(),
            others: Vec::with_capacity(nt),
            filled: Vec::new(),
        }
    }

    /// Admit submission `app`: install its policy and (when dense state is
    /// on) attach the current slot-arena snapshot.
    pub fn admit(
        &mut self,
        app: usize,
        mut policy: Box<dyn CachePolicy>,
        slots: Option<&Arc<BlockSlots>>,
    ) {
        debug_assert!(self.inner[app].is_none(), "each submission admits once");
        if let Some(s) = slots {
            policy.attach_slots(s);
        }
        self.inner[app] = Some(policy);
        if let Err(pos) = self.active.binary_search(&app) {
            self.active.insert(pos, app);
        }
    }

    /// Retire submission `app`: drop its policy instance (and everything
    /// the policy holds — profile cursors, slot-keyed tables) and remove it
    /// from the active set. Its cross-eviction counts are kept.
    pub fn retire(&mut self, app: usize) {
        debug_assert!(self.inner[app].is_some(), "retire follows admit");
        self.inner[app] = None;
        if let Ok(pos) = self.active.binary_search(&app) {
            self.active.remove(pos);
        }
    }

    /// Drop the tenant map's rows for the retired prefix `..low`. The
    /// caller guarantees every submission below `low` is retired; `low`
    /// itself stays live so lookups for any admitted submission keep
    /// working.
    pub fn compact_to(&mut self, low: usize) {
        if low == 0 {
            return;
        }
        let full = &self.map;
        let c = self.compact.get_or_insert_with(|| (**full).clone());
        c.retire_prefix(low);
    }

    /// Admitted, unretired submissions right now.
    pub fn active_apps(&self) -> usize {
        self.active.len()
    }

    /// Route subsequent current-submission hooks to submission `app`.
    pub fn set_current(&mut self, app: usize) {
        debug_assert!(app < self.inner.len());
        self.current = app;
    }

    /// The policy name of submission `app` (which must be live).
    pub fn policy_name(&self, app: usize) -> String {
        self.inner[app].as_ref().expect("live submission").name()
    }

    /// The cross-tenant eviction matrix accumulated so far
    /// (`[evictor][victim]`; the diagonal is self-eviction).
    pub fn cross_evictions(&self) -> &Vec<Vec<u64>> {
        &self.cross
    }

    /// The map to resolve ownership against: the compacted clone once
    /// streaming retirement has advanced, the full map otherwise.
    fn tmap(&self) -> &TenantMap {
        self.compact.as_ref().unwrap_or(&self.map)
    }

    fn cur(&mut self) -> &mut Box<dyn CachePolicy> {
        self.inner[self.current]
            .as_mut()
            .expect("current submission is admitted")
    }

    fn owner(&self, block: BlockId) -> usize {
        self.tmap().app_of(block.rdd)
    }

    /// Retain only the blocks owned by the current submission.
    fn restrict(&self, blocks: &[BlockId]) -> Vec<BlockId> {
        let r = self.tmap().rdd_range(self.current);
        blocks
            .iter()
            .copied()
            .filter(|b| r.contains(&b.rdd.0))
            .collect()
    }
}

impl CachePolicy for TenantMux {
    fn name(&self) -> String {
        self.policy_name(self.current)
    }

    fn attach_slots(&mut self, slots: &Arc<BlockSlots>) {
        for p in self.inner.iter_mut().flatten() {
            p.attach_slots(slots);
        }
    }

    fn on_job_submit(&mut self, job: JobId, visible: &AppProfile) {
        self.cur().on_job_submit(job, visible);
    }

    fn on_stage_start(&mut self, stage: StageId, visible: &AppProfile) {
        self.cur().on_stage_start(stage, visible);
    }

    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        let o = self.owner(block);
        self.inner[o].as_mut().expect("live owner").on_insert(node, block);
    }

    fn on_access(&mut self, node: NodeId, block: BlockId) {
        let o = self.owner(block);
        self.inner[o].as_mut().expect("live owner").on_access(node, block);
    }

    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        // Only live/draining submissions can own a cached block: retirement
        // requires zero memory residency, so routing is always resolvable.
        let o = self.owner(block);
        self.inner[o].as_mut().expect("live owner").on_remove(node, block);
    }

    fn on_node_join(&mut self, node: NodeId) {
        for p in self.inner.iter_mut().flatten() {
            p.on_node_join(node);
        }
    }

    fn pick_victim(&mut self, node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        self.cur().pick_victim(node, candidates)
    }

    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        if self.inner.len() == 1 {
            // Single submission: exact pass-through.
            return self.inner[0]
                .as_mut()
                .expect("live submission")
                .select_victims(node, shortfall, resident);
        }
        // Field expression, not `self.tmap()`: the scratch buffers below
        // need disjoint mutable borrows alongside the map.
        let map = self.compact.as_ref().unwrap_or(&self.map);
        let nt = self.cross.len();
        let cur_tenant = map.tenant_of_app(self.current) as usize;

        // Split the node's evictable map by owning submission. All the
        // bookkeeping below runs on scratch buffers reused across calls —
        // victim selection fires on every eviction, and the old per-call
        // `Vec`/`BTreeMap` allocations dominated the serve hot path.
        // `filled` records which per-submission maps this call touched, so
        // both the clear and the byte totals are O(touched) + O(active),
        // never O(stream).
        self.filled.clear();
        for (&b, &sz) in resident {
            let a = map.app_of(b.rdd);
            if self.per_app[a].is_empty() {
                self.filled.push(a);
            }
            self.per_app[a].insert(b, sz);
        }

        // Own-first order: the evicting tenant's live submissions in
        // submission order, then other tenants by descending evictable
        // bytes (most over-represented first; ties by ascending tenant id),
        // each tenant's live submissions in submission order. Restricting
        // to the active set is exact: a retired submission has no resident
        // blocks, so the reference scan skipped it via the empty-map guard
        // anyway.
        self.order.clear();
        self.order.extend(
            self.active
                .iter()
                .copied()
                .filter(|&a| map.tenant_of_app(a) as usize == cur_tenant),
        );
        self.tenant_bytes.clear();
        self.tenant_bytes.resize(nt, 0);
        for &a in &self.filled {
            self.tenant_bytes[map.tenant_of_app(a) as usize] +=
                self.per_app[a].values().sum::<u64>();
        }
        self.others.clear();
        self.others
            .extend((0..nt).filter(|&t| t != cur_tenant && self.tenant_bytes[t] > 0));
        self.others
            .sort_by_key(|&t| (std::cmp::Reverse(self.tenant_bytes[t]), t));
        for i in 0..self.others.len() {
            let t = self.others[i];
            self.order.extend(
                self.active
                    .iter()
                    .copied()
                    .filter(|&a| map.tenant_of_app(a) as usize == t),
            );
        }

        let mut victims = Vec::new();
        let mut freed = 0u64;
        for i in 0..self.order.len() {
            let a = self.order[i];
            if freed >= shortfall {
                break;
            }
            if self.per_app[a].is_empty() {
                continue;
            }
            let vict_tenant = map.tenant_of_app(a) as usize;
            let picked = self.inner[a].as_mut().expect("active submission").select_victims(
                node,
                shortfall - freed,
                &self.per_app[a],
            );
            for b in picked {
                freed += self.per_app[a].get(&b).copied().unwrap_or(0);
                self.cross[cur_tenant][vict_tenant] += 1;
                victims.push(b);
            }
        }
        for &a in &self.filled {
            self.per_app[a].clear();
        }
        victims
    }

    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        // A submission's policy may only purge its own blocks — MRD's
        // "infinite distance" verdict on a foreign tenant's block merely
        // means *this* profile never references it.
        let own = self.restrict(in_memory);
        self.cur().purge_candidates(&own)
    }

    fn wants_purge(&self) -> bool {
        self.inner[self.current]
            .as_ref()
            .expect("current submission is admitted")
            .wants_purge()
    }

    fn prefetch_order(&mut self, node: NodeId, missing: &[BlockId]) -> Vec<BlockId> {
        let own = self.restrict(missing);
        self.cur().prefetch_order(node, &own)
    }

    fn wants_prefetch(&self) -> bool {
        self.inner[self.current]
            .as_ref()
            .expect("current submission is admitted")
            .wants_prefetch()
    }
}

/// High-water marks sampled after every stage of a serve run.
#[derive(Debug, Clone, Copy, Default)]
struct Peaks {
    resident_blocks: u64,
    resident_bytes: u64,
    arena_slots: u64,
    active_apps: u64,
}

/// The whole-stream artifacts the reference (upfront) path works from:
/// everything planned, profiled and slot-assigned before the first event.
struct UpfrontArtifacts {
    combined: AppSpec,
    /// Per-submission plans, RDD ids shifted into the combined space, stage
    /// and job ids local.
    plans: Vec<Arc<AppPlan>>,
    profilers: Vec<Arc<AppProfiler>>,
    arena: Arc<BlockSlots>,
}

/// Run the inter-job scheduling loop over `arrivals`: `advance(a)` runs one
/// stage of submission `a` and returns `(done, clock_after)`. Shared by the
/// streaming and upfront drivers so the two paths cannot drift in dispatch
/// order — equivalence reduces to the `advance` bodies.
fn drive(
    sched: ServeSched,
    use_heap: bool,
    arrivals: &[u64],
    mut advance: impl FnMut(usize) -> (bool, u64),
) {
    match sched {
        ServeSched::Fifo => {
            // Arrived submissions run to completion in `(arrival, index)`
            // order. The event queue pops exactly that order: every app
            // is scheduled once, in index order, so the queue's FIFO
            // sequence tie-break equals the reference scan's
            // smallest-index tie-break. Calendar-backed by default, heap
            // under `heap_events`/`reference_state`.
            let mut q: refdist_simcore::EventQueue<u32> =
                refdist_simcore::EventQueue::with_heap(use_heap);
            q.reserve(arrivals.len());
            for (i, &at) in arrivals.iter().enumerate() {
                q.schedule(SimTime(at), i as u32);
            }
            while let Some((_, i)) = q.pop() {
                let a = i as usize;
                while !advance(a).0 {}
            }
        }
        ServeSched::FairShare => {
            // Ready set ordered by `(app clock, submission index)`:
            // O(log n) per stage instead of the old O(n) rescan. Clocks
            // change every stage, so the reference tie-break (smallest
            // index among equal clocks) must come from the composite
            // key, not queue insertion order — which is why this is a
            // `BTreeSet` and not the FIFO event queue.
            let mut ready: std::collections::BTreeSet<(u64, usize)> =
                arrivals.iter().enumerate().map(|(i, &at)| (at, i)).collect();
            while let Some(&(k, i)) = ready.iter().next() {
                ready.remove(&(k, i));
                let (app_done, clock) = advance(i);
                if !app_done {
                    ready.insert((clock, i));
                }
            }
        }
    }
}

/// One serve run: a set of submissions (each tagged with a tenant), a shared
/// cluster, and the serve policy knobs. Construction just records the
/// stream; per-submission planning/profiling happens at admission time
/// (streaming, the default) or lazily all at once ([`ServeConfig::upfront`]).
pub struct ServeSim<'a> {
    subs: Vec<&'a AppSpec>,
    map: Arc<TenantMap>,
    cfg: ServeConfig,
    /// Reference-path artifacts, built on first upfront run. Lazy (rather
    /// than eager in `new`) so streaming runs never pay O(stream) planning,
    /// and `OnceLock` (rather than per-run) so benchmark harnesses reusing
    /// one `ServeSim` across timed runs keep planning out of the timed
    /// region, as the eager constructor did.
    upfront: OnceLock<UpfrontArtifacts>,
}

impl<'a> ServeSim<'a> {
    /// Record `submissions` (each `(spec, tenant)`) for serving under
    /// `cfg`. Each submission is planned and profiled *locally* — so
    /// reference-distance policies see exactly the profile the app would
    /// have alone — then shifted into the combined RDD space.
    pub fn new(submissions: &[(&'a AppSpec, u32)], cfg: ServeConfig) -> ServeSim<'a> {
        assert!(!submissions.is_empty(), "at least one submission");
        let specs: Vec<&AppSpec> = submissions.iter().map(|&(s, _)| s).collect();
        let tenants: Vec<u32> = submissions.iter().map(|&(_, t)| t).collect();
        let rdd_counts: Vec<u32> = specs.iter().map(|s| s.rdds.len() as u32).collect();
        let map = Arc::new(TenantMap::new(&rdd_counts, &tenants));
        ServeSim {
            subs: specs,
            map,
            cfg,
            upfront: OnceLock::new(),
        }
    }

    /// The submission → tenant map.
    pub fn tenant_map(&self) -> &Arc<TenantMap> {
        &self.map
    }

    /// Plan and profile submission `i` locally, then shift into the
    /// combined RDD space. Shared by upfront construction and the
    /// non-interned streaming admission, so both paths see bit-identical
    /// plans and profiles.
    fn plan_one(&self, i: usize) -> (Arc<AppPlan>, Arc<AppProfiler>) {
        let spec = self.subs[i];
        let tpl = refdist_dag::PlannedTemplate::build(spec);
        let off = self.map.offset(i);
        (
            remap_plan(&tpl.plan, off),
            Arc::new(AppProfiler::from_shared(
                spec.name.clone(),
                remap_profile(&tpl.profile, off),
            )),
        )
    }

    /// Template-interned admission: look the submission's structural
    /// template up in `cache` (planning and profiling it only on first
    /// sight) and rebase the shared local-space artifacts to the
    /// submission's offset. Planner and analyzer are deterministic
    /// functions of the structure, so the result is value-identical to
    /// [`plan_one`] — the differential serve suite pins that.
    fn plan_interned(&self, i: usize, cache: &mut TemplateCache) -> (Arc<AppPlan>, Arc<AppProfiler>) {
        let spec = self.subs[i];
        let tpl = cache.intern(spec);
        let off = self.map.offset(i);
        (
            remap_plan(&tpl.plan, off),
            Arc::new(AppProfiler::from_shared(
                spec.name.clone(),
                remap_profile(&tpl.profile, off),
            )),
        )
    }

    fn upfront_artifacts(&self) -> &UpfrontArtifacts {
        self.upfront.get_or_init(|| {
            let combined = combine_specs(&self.subs);
            let (plans, profilers): (Vec<_>, Vec<_>) =
                (0..self.subs.len()).map(|i| self.plan_one(i)).unzip();
            let arena = Arc::new(BlockSlots::new(&combined));
            UpfrontArtifacts {
                combined,
                plans,
                profilers,
                arena,
            }
        })
    }

    /// The effective per-tenant quota in bytes, `None` when unlimited.
    fn quota_bytes(&self) -> Option<u64> {
        match self.cfg.quota {
            QuotaKind::Unlimited => None,
            QuotaKind::EqualShare => Some(
                (self.cfg.sim.cluster.cache_bytes / self.map.num_tenants() as u64).max(1),
            ),
            QuotaKind::Bytes(b) => Some(b.max(1)),
        }
    }

    /// Execute the stream under one policy instance per submission (same
    /// order as the submissions passed to [`ServeSim::new`]).
    ///
    /// App-level retry re-admits a submission with a *fresh* policy
    /// instance, which a pre-built `Vec` cannot supply — use
    /// [`ServeSim::run_with`] when `max_app_attempts > 1`.
    pub fn run(&self, policies: Vec<Box<dyn CachePolicy>>) -> ServeReport {
        assert_eq!(policies.len(), self.subs.len(), "one policy per submission");
        assert!(
            self.cfg.resilience.max_app_attempts <= 1,
            "app-level retry needs fresh policy instances: use ServeSim::run_with"
        );
        let mut policies: Vec<Option<Box<dyn CachePolicy>>> =
            policies.into_iter().map(Some).collect();
        self.dispatch(&mut |i| policies[i].take().expect("each submission admits once"))
    }

    /// Execute the stream with `factory(i)` supplying a policy instance for
    /// every *admission* of submission `i` — called once per submission
    /// normally, once more per app-level retry.
    pub fn run_with(&self, mut factory: impl FnMut(usize) -> Box<dyn CachePolicy>) -> ServeReport {
        self.dispatch(&mut factory)
    }

    fn dispatch(&self, factory: &mut dyn FnMut(usize) -> Box<dyn CachePolicy>) -> ServeReport {
        if let Err(e) = self.cfg.resilience.validate() {
            panic!("invalid resilience config: {e}");
        }
        if self.cfg.upfront {
            // The upfront driver is the byte-frozen reference path: it
            // predates retry/admission control and must stay byte-identical
            // to pre-resilience behaviour. Deadline accounting is pure
            // reporting, so it is allowed through.
            let res = &self.cfg.resilience;
            assert!(
                res.max_app_attempts <= 1 && res.max_active_apps.is_none(),
                "app-level retry and admission control are streaming-only: \
                 disable `upfront` or make the resilience config passive"
            );
            self.run_upfront((0..self.subs.len()).map(factory).collect())
        } else {
            self.run_streaming(factory)
        }
    }

    /// The reference path: every submission planned, profiled and
    /// slot-assigned before the first event. State is O(stream).
    fn run_upfront(&self, policies: Vec<Box<dyn CachePolicy>>) -> ServeReport {
        let n = self.subs.len();
        let cfg = &self.cfg.sim;
        let nodes = cfg.cluster.nodes as usize;
        let arrivals = self.cfg.arrivals.arrivals(n, cfg.seed);
        let art = self.upfront_artifacts();

        let sim = Simulation::with_artifacts(
            &art.combined,
            &art.plans[0],
            Arc::clone(&art.profilers[0]),
            Arc::clone(&art.arena),
            cfg.clone(),
        );
        let mut engine = Engine::new(&sim, EngineScratch::default());
        if let Some(q) = self.quota_bytes() {
            engine.enable_store_tenancy(&self.map, q);
        }
        let mut mux = TenantMux::new(policies, Arc::clone(&self.map));
        if !cfg.reference_state {
            mux.attach_slots(&art.arena);
        }

        let mut states: Vec<AppState> = (0..n)
            .map(|i| AppState::fresh(app_seed(cfg.seed, i), SimTime(arrivals[i])))
            .collect();
        let mut visible: Vec<Arc<AppProfile>> = art
            .profilers
            .iter()
            .map(|p| p.visible_at_job_shared(JobId(0)))
            .collect();
        let mut submitted: Vec<Option<JobId>> = vec![None; n];
        let mut next_stage = vec![0usize; n];
        let mut per_node_acc: Vec<Vec<CacheStats>> = vec![vec![CacheStats::default(); nodes]; n];
        let mut done = vec![false; n];
        let mut reports: Vec<Option<RunReport>> = (0..n).map(|_| None).collect();
        let mut completions = vec![0u64; n];
        let mut peaks = Peaks {
            arena_slots: art.arena.len() as u64,
            ..Peaks::default()
        };
        let mut live_now = 0u64;

        // Advance application `a` by one stage; returns `(done, clock)`
        // where `clock` is the app's virtual time after the stage.
        let advance = |a: usize| -> (bool, u64) {
            if next_stage[a] == 0 {
                live_now += 1;
            }
            let stage = &art.plans[a].stages[next_stage[a]];
            engine.current_app = a as u32;
            mux.set_current(a);
            engine.swap_app(&mut states[a]);

            // Submit any of this app's jobs up to the stage's job, exactly
            // as the legacy loop does.
            let next = submitted[a].map_or(0, |j| j.0 + 1);
            for j in next..=stage.job.0 {
                visible[a] = art.profilers[a].visible_at_job_shared(JobId(j));
                mux.on_job_submit(JobId(j), &visible[a]);
                submitted[a] = Some(JobId(j));
            }
            mux.on_stage_start(stage.id, &visible[a]);

            let base = engine.node_stats();
            engine.run_one_stage(stage, &visible[a], &mut mux);
            let after = engine.node_stats();
            for (acc, (b, f)) in per_node_acc[a]
                .iter_mut()
                .zip(base.iter().zip(after.iter()))
            {
                acc.merge(&f.delta(b));
            }

            engine.swap_app(&mut states[a]);
            next_stage[a] += 1;
            if states[a].aborted.is_some() || next_stage[a] == art.plans[a].stages.len() {
                done[a] = true;
                completions[a] = states[a].now.0;
                live_now -= 1;
                reports[a] = Some(self.finish_report(
                    a,
                    &mut states[a],
                    &per_node_acc[a],
                    arrivals[a],
                    1,
                    &mux,
                ));
            }
            let (rb, rby) = engine.resident_totals();
            peaks.resident_blocks = peaks.resident_blocks.max(rb);
            peaks.resident_bytes = peaks.resident_bytes.max(rby);
            peaks.active_apps = peaks.active_apps.max(live_now);
            (done[a], states[a].now.0)
        };
        drive(self.cfg.sched, cfg.use_heap_events(), &arrivals, advance);

        // Only the deadline can be non-passive here (dispatch rejects the
        // rest): pure post-hoc accounting over an unchanged run.
        let res = &self.cfg.resilience;
        let resilience = (!res.is_passive()).then(|| ResilienceReport {
            app_attempts: vec![1; n],
            shed: vec![false; n],
            degraded: vec![false; n],
            queue_delay_us: vec![0; n],
            deadline_us: res.deadline_us,
        });
        self.make_report(reports, arrivals, completions, &mux, peaks, 0, resilience)
    }

    /// The streaming path: a submission's plan, profile, policy state and
    /// slot range materialize at its arrival event and are torn down once
    /// it has completed *and* no block it owns is memory-resident (the
    /// drain-then-retire rule — retiring at completion would change which
    /// blocks later evictions see, and therefore the victim sequences).
    /// Engine, mux and arena state are O(peak-active), not O(stream).
    ///
    /// This driver also owns the two active resilience features: app-level
    /// retry (an aborted submission is fully torn down — blocks purged,
    /// slots returned, policy dropped — and re-admitted through the same
    /// admission path after a capped exponential backoff) and overload
    /// admission control (queue/shed/degrade against
    /// [`ResilienceConfig::max_active_apps`]). With a passive config every
    /// resilience branch is statically false and the run is byte-identical
    /// to the pre-resilience driver.
    fn run_streaming(&self, factory: &mut dyn FnMut(usize) -> Box<dyn CachePolicy>) -> ServeReport {
        let n = self.subs.len();
        let cfg = &self.cfg.sim;
        let nodes = cfg.cluster.nodes as usize;
        let arrivals = self.cfg.arrivals.arrivals(n, cfg.seed);
        let res = &self.cfg.resilience;
        let retry_on = res.max_app_attempts > 1;
        let gate_on = res.max_active_apps.is_some();

        let mut arena = SlotArena::new();
        let mut engine =
            Engine::new_streaming(cfg, Arc::new(arena.snapshot()), EngineScratch::default());
        if let Some(q) = self.quota_bytes() {
            engine.enable_store_tenancy(&self.map, q);
        }
        let mut mux = TenantMux::new_streaming(n, Arc::clone(&self.map));

        let mut plans: Vec<Option<Arc<AppPlan>>> = (0..n).map(|_| None).collect();
        let mut profilers: Vec<Option<Arc<AppProfiler>>> = (0..n).map(|_| None).collect();
        let mut visible: Vec<Option<Arc<AppProfile>>> = (0..n).map(|_| None).collect();
        let mut states: Vec<AppState> = (0..n)
            .map(|i| AppState::fresh(app_seed(cfg.seed, i), SimTime(arrivals[i])))
            .collect();
        let mut submitted: Vec<Option<JobId>> = vec![None; n];
        let mut next_stage = vec![0usize; n];
        let mut per_node_acc: Vec<Vec<CacheStats>> = vec![vec![CacheStats::default(); nodes]; n];
        let mut done = vec![false; n];
        let mut reports: Vec<Option<RunReport>> = (0..n).map(|_| None).collect();
        let mut completions = vec![0u64; n];
        // Slot range each admitted submission carved out of the arena.
        let mut slot_runs = vec![(0u32, 0u32); n];
        // Completed submissions still holding memory-resident blocks.
        let mut draining: Vec<usize> = Vec::new();
        let mut retired = vec![false; n];
        // Smallest submission index not yet retired; the mux map may be
        // compacted up to (but never beyond) this point. A plain watermark
        // — not `min(draining)` — because fair-share can admit out of
        // index order, and un-admitted lower-index submissions still need
        // their map rows.
        let mut low = 0usize;
        let mut peaks = Peaks::default();
        // Per-run template cache: one memoized local-space plan/profile per
        // distinct submission structure. Lives for the whole stream — the
        // cache is bounded by template diversity, not stream length.
        let mut templates = TemplateCache::new();
        // Resilience accounting. `attempts` counts admissions consumed
        // (0 until first admission); `running` counts admitted, unfinished
        // submissions and drives the overload gate.
        let mut attempts = vec![0u32; n];
        let mut shed = vec![false; n];
        let mut degraded = vec![false; n];
        let mut queue_delay_us = vec![0u64; n];
        let mut waiting = vec![false; n];
        let mut waiting_count = 0usize;
        let mut running = 0usize;

        let advance = |a: usize| -> (bool, u64) {
            if plans[a].is_none() {
                // Overload admission control, first admission only: a retry
                // re-enters unconditionally (the cluster already accepted
                // the submission once). With `max_active_apps` unset this
                // whole block is dead and arrivals admit exactly as before.
                if attempts[a] == 0 {
                    if let Some(cap) = res.max_active_apps {
                        if running >= cap.max(1) as usize {
                            match res.admission {
                                AdmissionPolicy::Queue => {
                                    let qcap =
                                        res.queue_cap.map_or(usize::MAX, |c| c as usize);
                                    if !waiting[a] && waiting_count >= qcap {
                                        // Bounded queue overflow: shed on
                                        // arrival.
                                        shed[a] = true;
                                        done[a] = true;
                                        completions[a] = states[a].now.0;
                                        return (true, states[a].now.0);
                                    }
                                    if !waiting[a] {
                                        waiting[a] = true;
                                        waiting_count += 1;
                                    }
                                    // Re-poll one quantum later; under
                                    // fair-share the running submissions
                                    // advance in between, so the poll loop
                                    // terminates as soon as one finishes.
                                    let next =
                                        states[a].now.0.saturating_add(QUEUE_POLL_US);
                                    states[a].now = SimTime(next);
                                    return (false, next);
                                }
                                AdmissionPolicy::Shed => {
                                    shed[a] = true;
                                    done[a] = true;
                                    completions[a] = states[a].now.0;
                                    return (true, states[a].now.0);
                                }
                                AdmissionPolicy::Degrade => degraded[a] = true,
                            }
                        }
                    }
                    if waiting[a] {
                        waiting[a] = false;
                        waiting_count -= 1;
                        queue_delay_us[a] = states[a].now.0.saturating_sub(arrivals[a]);
                    }
                }
                // Admission: plan and profile this submission now, at its
                // arrival event, and carve its block range out of the
                // recyclable slot arena.
                let (plan, profiler) = if self.cfg.intern {
                    self.plan_interned(a, &mut templates)
                } else {
                    self.plan_one(a)
                };
                let spec = self.subs[a];
                let off = self.map.offset(a);
                let counts: Vec<(RddId, u32)> = spec
                    .rdds
                    .iter()
                    .map(|r| {
                        let parts = if r.is_cached() { r.num_partitions } else { 0 };
                        (RddId(r.id.0 + off), parts)
                    })
                    .collect();
                slot_runs[a] = arena.admit(&counts);
                let snap = Arc::new(arena.snapshot());
                engine.admit_app(spec, off, &snap);
                let policy = factory(a);
                mux.admit(a, policy, (!cfg.reference_state).then_some(&snap));
                visible[a] = Some(profiler.visible_at_job_shared(JobId(0)));
                plans[a] = Some(plan);
                profilers[a] = Some(profiler);
                attempts[a] += 1;
                running += 1;
            }
            let plan = plans[a].as_ref().expect("admitted");
            let profiler = profilers[a].as_ref().expect("admitted");
            let stage = &plan.stages[next_stage[a]];
            engine.current_app = a as u32;
            mux.set_current(a);
            engine.swap_app(&mut states[a]);

            let next = submitted[a].map_or(0, |j| j.0 + 1);
            for j in next..=stage.job.0 {
                visible[a] = Some(profiler.visible_at_job_shared(JobId(j)));
                mux.on_job_submit(JobId(j), visible[a].as_ref().expect("just set"));
                submitted[a] = Some(JobId(j));
            }
            let vis = visible[a].as_ref().expect("admitted");
            mux.on_stage_start(stage.id, vis);

            if gate_on {
                // Degraded submissions run with caching bypassed; the flag
                // is cluster-level engine state, so (re)assert it around
                // every stage rather than trusting the previous app's value.
                engine.cache_bypass = degraded[a];
            }
            let base = engine.node_stats();
            engine.run_one_stage(stage, vis, &mut mux);
            let after = engine.node_stats();
            for (acc, (b, f)) in per_node_acc[a]
                .iter_mut()
                .zip(base.iter().zip(after.iter()))
            {
                acc.merge(&f.delta(b));
            }
            let nstages = plan.stages.len();

            engine.swap_app(&mut states[a]);
            next_stage[a] += 1;
            let aborted_now = states[a].aborted.is_some();
            if aborted_now && retry_on && attempts[a] < res.max_app_attempts {
                // App-level retry: tear the failed attempt down completely
                // — purge its memory-resident blocks, return its slot run
                // and registry window, drop its policy instance — then
                // reset the admission markers so the next dispatch of this
                // submission re-enters the normal streaming admission path
                // (template re-intern, slot recycling, fresh policy from
                // the factory) after a capped exponential backoff. The
                // accumulators, stage log and fault counters carry over so
                // the final report covers every attempt.
                let range = self.map.rdd_range(a);
                engine.purge_app(range.clone(), &mut mux);
                let (sb, sl) = slot_runs[a];
                engine.retire_app(range.clone(), sb, sl);
                arena.retire(RddId(range.start));
                mux.retire(a);
                plans[a] = None;
                profilers[a] = None;
                visible[a] = None;
                submitted[a] = None;
                next_stage[a] = 0;
                running -= 1;
                let backoff = res.app_backoff_us(attempts[a]);
                let resume = states[a].now.0.saturating_add(backoff);
                let seed = attempt_seed(app_seed(cfg.seed, a), attempts[a]);
                let prev =
                    std::mem::replace(&mut states[a], AppState::fresh(seed, SimTime(resume)));
                states[a] = AppState::retry_from(prev, seed, SimTime(resume));
            } else if aborted_now || next_stage[a] == nstages {
                done[a] = true;
                completions[a] = states[a].now.0;
                running -= 1;
                reports[a] = Some(self.finish_report(
                    a,
                    &mut states[a],
                    &per_node_acc[a],
                    arrivals[a],
                    attempts[a],
                    &mux,
                ));
                // Completion: the plan, profile, visibility cursor and
                // stat accumulators die immediately; the submission drains
                // until nothing it owns is memory-resident, then retires.
                plans[a] = None;
                profilers[a] = None;
                visible[a] = None;
                per_node_acc[a] = Vec::new();
                draining.push(a);
            }

            // Retirement pass, after *every* stage: a draining submission's
            // blocks leave memory through other submissions' evictions, not
            // its own activity. Ascending index order keeps the free-list
            // coalescing sequence independent of completion order.
            let mut i = 0;
            while i < draining.len() {
                let d = draining[i];
                let range = self.map.rdd_range(d);
                if engine.any_resident(range.clone()) {
                    i += 1;
                    continue;
                }
                let (sb, sl) = slot_runs[d];
                engine.retire_app(range.clone(), sb, sl);
                arena.retire(RddId(range.start));
                mux.retire(d);
                retired[d] = true;
                draining.remove(i);
            }
            while low < n && retired[low] {
                low += 1;
            }
            if low > 0 {
                mux.compact_to(low.min(n - 1));
            }

            let (rb, rby) = engine.resident_totals();
            peaks.resident_blocks = peaks.resident_blocks.max(rb);
            peaks.resident_bytes = peaks.resident_bytes.max(rby);
            peaks.arena_slots = peaks.arena_slots.max(arena.capacity() as u64);
            peaks.active_apps = peaks.active_apps.max(mux.active_apps() as u64);
            (done[a], states[a].now.0)
        };
        drive(self.cfg.sched, cfg.use_heap_events(), &arrivals, advance);

        let distinct = templates.len();
        let resilience = (!res.is_passive()).then_some(ResilienceReport {
            app_attempts: attempts,
            shed,
            degraded,
            queue_delay_us,
            deadline_us: res.deadline_us,
        });
        self.make_report(reports, arrivals, completions, &mux, peaks, distinct, resilience)
    }

    #[allow(clippy::too_many_arguments)]
    fn make_report(
        &self,
        reports: Vec<Option<RunReport>>,
        arrivals: Vec<u64>,
        completions: Vec<u64>,
        mux: &TenantMux,
        peaks: Peaks,
        distinct_templates: usize,
        resilience: Option<ResilienceReport>,
    ) -> ServeReport {
        let n = self.subs.len();
        let makespan = SimDuration(completions.iter().copied().max().unwrap_or(0));
        ServeReport {
            reports: reports
                .into_iter()
                .enumerate()
                .map(|(a, r)| match r {
                    Some(r) => r,
                    // A shed submission never ran: its report is an inert
                    // placeholder so submission indices stay aligned.
                    None => self.shed_report(a),
                })
                .collect(),
            arrivals,
            completions,
            tenants: (0..n).map(|a| self.map.tenant_of_app(a)).collect(),
            cross_evictions: mux.cross_evictions().clone(),
            sched: self.cfg.sched,
            quota: self.cfg.quota,
            makespan,
            peak_resident_blocks: peaks.resident_blocks,
            peak_resident_bytes: peaks.resident_bytes,
            peak_arena_slots: peaks.arena_slots,
            peak_active_apps: peaks.active_apps,
            distinct_templates,
            resilience,
        }
    }

    /// The inert placeholder report of a shed submission: it consumed no
    /// attempt, ran no task and touched no cache.
    fn shed_report(&self, a: usize) -> RunReport {
        RunReport {
            app: self.subs[a].name.clone(),
            policy: "-".into(),
            jct: SimDuration::ZERO,
            stats: CacheStats::new(),
            sched: crate::report::SchedStats::default(),
            per_node: Vec::new(),
            io_time: SimDuration::ZERO,
            compute_time: SimDuration::ZERO,
            stage_times: Vec::new(),
            tasks: 0,
            faults: crate::faults::FaultStats::default(),
            app_attempts: 0,
            aborted: None,
            trace: None,
            placements: None,
        }
    }

    fn finish_report(
        &self,
        a: usize,
        st: &mut AppState,
        per_node: &[CacheStats],
        arrival: u64,
        attempts: u32,
        mux: &TenantMux,
    ) -> RunReport {
        let mut agg = CacheStats::new();
        for s in per_node {
            agg.merge(s);
        }
        RunReport {
            app: self.subs[a].name.clone(),
            policy: mux.policy_name(a),
            jct: st.now - SimTime(arrival),
            stats: agg,
            sched: st.sched_stats,
            per_node: per_node.to_vec(),
            io_time: st.io_accum,
            compute_time: st.compute_accum,
            stage_times: std::mem::take(&mut st.stage_times),
            tasks: st.tasks_run,
            faults: st.fstats,
            app_attempts: attempts,
            aborted: st.aborted,
            trace: self
                .cfg
                .sim
                .collect_trace
                .then(|| std::mem::take(&mut st.trace)),
            placements: self
                .cfg
                .sim
                .collect_placements
                .then(|| std::mem::take(&mut st.placements)),
        }
    }
}

/// Per-tenant JCT distribution over one serve run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSummary {
    /// Tenant id.
    pub tenant: u32,
    /// Submissions belonging to the tenant (shed submissions included).
    pub apps: usize,
    /// Mean JCT over the tenant's executed (non-shed) submissions.
    pub mean_jct: SimDuration,
    /// Nearest-rank 95th-percentile JCT.
    pub p95_jct: SimDuration,
    /// Nearest-rank 99th-percentile JCT.
    pub p99_jct: SimDuration,
    /// Submissions that aborted (retry budgets exhausted).
    pub aborts: u64,
    /// App-level retries the tenant's submissions consumed (resilience runs
    /// only; always 0 otherwise).
    pub retries: u64,
    /// Submissions shed at admission (never ran).
    pub shed: u64,
    /// Submissions admitted with caching bypassed.
    pub degraded: u64,
    /// Submissions that missed the deadline (shed submissions count as
    /// misses); 0 when no deadline was configured.
    pub deadline_misses: u64,
    /// Nearest-rank p95 admission-queue delay over the tenant's admitted
    /// submissions.
    pub queue_p95: SimDuration,
}

/// Per-submission resilience accounting; present on [`ServeReport`] only
/// when the run's [`ResilienceConfig`] was non-passive, so passive reports
/// stay byte-identical to pre-resilience ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Admissions each submission consumed (1 = first attempt succeeded or
    /// exhausted a budget of 1; 0 = shed before ever running).
    pub app_attempts: Vec<u32>,
    /// Whether each submission was shed at admission.
    pub shed: Vec<bool>,
    /// Whether each submission ran with caching bypassed.
    pub degraded: Vec<bool>,
    /// Admission-queue delay of each submission, microseconds (0 when
    /// admitted at arrival or shed).
    pub queue_delay_us: Vec<u64>,
    /// The configured per-submission deadline, if any.
    pub deadline_us: Option<u64>,
}

impl ResilienceReport {
    /// Total app-level retries across the stream.
    pub fn total_retries(&self) -> u64 {
        self.app_attempts
            .iter()
            .map(|&a| a.saturating_sub(1) as u64)
            .sum()
    }

    /// Submissions shed at admission.
    pub fn shed_count(&self) -> u64 {
        self.shed.iter().filter(|&&s| s).count() as u64
    }

    /// Submissions admitted with caching bypassed.
    pub fn degraded_count(&self) -> u64 {
        self.degraded.iter().filter(|&&d| d).count() as u64
    }

    /// Whether submission `i` met the deadline: it was not shed and its
    /// completion came within `deadline_us` of its arrival. `None` when no
    /// deadline was configured.
    pub fn met_deadline(&self, i: usize, arrival: u64, completion: u64) -> Option<bool> {
        let d = self.deadline_us?;
        Some(!self.shed[i] && completion.saturating_sub(arrival) <= d)
    }
}

/// Everything a serve run produced: one [`RunReport`] per submission plus
/// the stream-level accounting.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-submission reports, in submission order. `jct` is measured from
    /// the submission's *arrival*, not cluster time zero.
    pub reports: Vec<RunReport>,
    /// Arrival time of each submission, microseconds.
    pub arrivals: Vec<u64>,
    /// Completion time of each submission, microseconds.
    pub completions: Vec<u64>,
    /// Tenant of each submission.
    pub tenants: Vec<u32>,
    /// `[evictor_tenant][victim_tenant]` victim-selection counts; the
    /// diagonal is self-eviction, off-diagonal entries are cross-tenant
    /// evictions under quota/contention pressure.
    pub cross_evictions: Vec<Vec<u64>>,
    /// Scheduling discipline the run used.
    pub sched: ServeSched,
    /// Quota policy the run used.
    pub quota: QuotaKind,
    /// Completion time of the last submission.
    pub makespan: SimDuration,
    /// High-water mark of memory-resident blocks across the cluster,
    /// sampled after every stage.
    pub peak_resident_blocks: u64,
    /// High-water mark of memory-resident bytes across the cluster.
    pub peak_resident_bytes: u64,
    /// High-water mark of the slot arena, in slots. Streaming runs grow
    /// this with peak *active* footprint (ranges recycle); upfront runs
    /// pay the whole stream at once.
    pub peak_arena_slots: u64,
    /// High-water mark of concurrently live (arrived, unretired)
    /// submissions.
    pub peak_active_apps: u64,
    /// Distinct structural templates the interned streaming admission
    /// planned. Zero on the upfront path and when interning is disabled.
    pub distinct_templates: usize,
    /// Per-submission resilience accounting (retries, sheds, degrades,
    /// queue delays, deadline). `None` whenever the run's
    /// [`ResilienceConfig`] was passive.
    pub resilience: Option<ResilienceReport>,
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServeReport {
    /// Per-tenant JCT distributions, ascending by tenant id. On resilience
    /// runs the JCT distribution covers executed (non-shed) submissions
    /// only; `apps` always counts every submission.
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        let nt = self.tenants.iter().copied().max().unwrap_or(0) as usize + 1;
        let res = self.resilience.as_ref();
        let is_shed = |i: usize| res.is_some_and(|r| r.shed[i]);
        (0..nt as u32)
            .map(|t| {
                let idx: Vec<usize> = (0..self.tenants.len())
                    .filter(|&i| self.tenants[i] == t)
                    .collect();
                let mut jcts: Vec<u64> = idx
                    .iter()
                    .filter(|&&i| !is_shed(i))
                    .map(|&i| self.reports[i].jct.micros())
                    .collect();
                jcts.sort_unstable();
                let aborts = idx
                    .iter()
                    .filter(|&&i| self.reports[i].aborted.is_some())
                    .count() as u64;
                let mean = if jcts.is_empty() {
                    0
                } else {
                    jcts.iter().sum::<u64>() / jcts.len() as u64
                };
                let (mut retries, mut shed, mut degraded, mut misses) = (0u64, 0u64, 0u64, 0u64);
                let mut delays: Vec<u64> = Vec::new();
                if let Some(r) = res {
                    for &i in &idx {
                        retries += r.app_attempts[i].saturating_sub(1) as u64;
                        shed += r.shed[i] as u64;
                        degraded += r.degraded[i] as u64;
                        if r.met_deadline(i, self.arrivals[i], self.completions[i])
                            == Some(false)
                        {
                            misses += 1;
                        }
                        if !r.shed[i] {
                            delays.push(r.queue_delay_us[i]);
                        }
                    }
                    delays.sort_unstable();
                }
                TenantSummary {
                    tenant: t,
                    apps: idx.len(),
                    mean_jct: SimDuration(mean),
                    p95_jct: SimDuration(percentile(&jcts, 0.95)),
                    p99_jct: SimDuration(percentile(&jcts, 0.99)),
                    aborts,
                    retries,
                    shed,
                    degraded,
                    deadline_misses: misses,
                    queue_p95: SimDuration(percentile(&delays, 0.95)),
                }
            })
            .collect()
    }

    /// Human-readable (and golden-file-stable) summary: stream header,
    /// per-tenant JCT distribution table, cross-tenant eviction table.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "serve: {} apps over {} tenants, {}, quota {}, makespan {:.3}s\n",
            self.reports.len(),
            self.tenant_summaries().len(),
            self.sched,
            self.quota,
            self.makespan.as_secs_f64(),
        );
        for t in self.tenant_summaries() {
            s.push_str(&format!(
                "tenant {}: {} apps, mean JCT {:.3}s, p95 {:.3}s, p99 {:.3}s, {} aborts\n",
                t.tenant,
                t.apps,
                t.mean_jct.as_secs_f64(),
                t.p95_jct.as_secs_f64(),
                t.p99_jct.as_secs_f64(),
                t.aborts,
            ));
        }
        let mut cross_lines = Vec::new();
        for (i, row) in self.cross_evictions.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if i != j && c > 0 {
                    cross_lines.push(format!("  t{i} -> t{j}: {c}"));
                }
            }
        }
        if cross_lines.is_empty() {
            s.push_str("cross-tenant evictions: none\n");
        } else {
            s.push_str("cross-tenant evictions (evictor -> victim):\n");
            for l in cross_lines {
                s.push_str(&l);
                s.push('\n');
            }
        }
        // Resilience block, printed only on non-passive runs so passive
        // summaries (and their golden files) stay byte-identical.
        if let Some(res) = &self.resilience {
            let n = res.app_attempts.len();
            let mut delays: Vec<u64> = (0..n)
                .filter(|&i| !res.shed[i])
                .map(|i| res.queue_delay_us[i])
                .collect();
            delays.sort_unstable();
            s.push_str(&format!(
                "resilience: {} app retries, {} shed, {} degraded, queue delay p95 {:.3}s / p99 {:.3}s\n",
                res.total_retries(),
                res.shed_count(),
                res.degraded_count(),
                SimDuration(percentile(&delays, 0.95)).as_secs_f64(),
                SimDuration(percentile(&delays, 0.99)).as_secs_f64(),
            ));
            if let Some(d) = res.deadline_us {
                let met = (0..n)
                    .filter(|&i| {
                        res.met_deadline(i, self.arrivals[i], self.completions[i])
                            == Some(true)
                    })
                    .count();
                s.push_str(&format!(
                    "slo: {}/{} met the {:.3}s deadline ({:.1}% attainment)\n",
                    met,
                    n,
                    d as f64 / 1e6,
                    met as f64 / n.max(1) as f64 * 100.0,
                ));
            }
            for t in self.tenant_summaries() {
                s.push_str(&format!(
                    "tenant {} slo: {} retries, {} shed, {} degraded, {} deadline misses, queue p95 {:.3}s\n",
                    t.tenant,
                    t.retries,
                    t.shed,
                    t.degraded,
                    t.deadline_misses,
                    t.queue_p95.as_secs_f64(),
                ));
            }
        }
        s
    }

    /// Fold the stream into one [`RunReport`] shaped like a single-app run
    /// (JCT = makespan, counters summed), so the sweep engine's cell results
    /// and CSV code consume serve cells unchanged.
    pub fn merged_report(&self) -> RunReport {
        let first = &self.reports[0];
        let mut agg = CacheStats::new();
        // A shed submission's placeholder has no per-node rows (and a "-"
        // policy), so size and name the merge from reports that ran.
        let nn = self.reports.iter().map(|r| r.per_node.len()).max().unwrap_or(0);
        let mut per_node = vec![CacheStats::default(); nn];
        let mut sched = crate::report::SchedStats::default();
        let mut io = SimDuration::ZERO;
        let mut compute = SimDuration::ZERO;
        let mut tasks = 0u64;
        let mut faults = crate::faults::FaultStats::default();
        let mut stage_times = Vec::new();
        let mut aborted = None;
        let mut attempts = 0u32;
        for r in &self.reports {
            attempts = attempts.saturating_add(r.app_attempts);
            agg.merge(&r.stats);
            for (acc, s) in per_node.iter_mut().zip(&r.per_node) {
                acc.merge(s);
            }
            sched.home_placements += r.sched.home_placements;
            sched.remote_placements += r.sched.remote_placements;
            io += r.io_time;
            compute += r.compute_time;
            tasks += r.tasks;
            faults.merge(&r.faults);
            stage_times.extend_from_slice(&r.stage_times);
            if aborted.is_none() {
                aborted = r.aborted;
            }
        }
        RunReport {
            app: self
                .reports
                .iter()
                .map(|r| r.app.as_str())
                .collect::<Vec<_>>()
                .join("+"),
            policy: self
                .reports
                .iter()
                .map(|r| &r.policy)
                .find(|p| p.as_str() != "-")
                .unwrap_or(&first.policy)
                .clone(),
            jct: self.makespan,
            stats: agg,
            sched,
            per_node,
            io_time: io,
            compute_time: compute,
            stage_times,
            tasks,
            faults,
            app_attempts: attempts,
            aborted,
            trace: None,
            placements: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use refdist_core::ProfileMode;
    use refdist_dag::{AppBuilder, StorageLevel};
    use refdist_policies::LruPolicy;

    fn little_app(name: &str, iters: usize) -> AppSpec {
        let mut b = AppBuilder::new(name);
        let input = b.input("in", 4, 1 << 20, 5_000);
        let data = b.narrow("data", input, 1 << 20, 10_000);
        b.persist(data, StorageLevel::MemoryAndDisk);
        for i in 0..iters {
            let agg = b.shuffle(format!("agg{i}"), &[data], 4, 1 << 12, 1_000);
            b.action(format!("job{i}"), agg);
        }
        b.build()
    }

    fn cfg(nodes: u32, cache: u64) -> SimConfig {
        let mut c = SimConfig::new(ClusterConfig::tiny(nodes, cache));
        c.compute_jitter = 0.0;
        c.exec_mem_fraction = 0.0;
        c
    }

    #[test]
    fn single_submission_serve_matches_legacy() {
        let spec = little_app("solo", 3);
        let plan = AppPlan::build(&spec);
        let c = cfg(2, 3 << 20);

        let legacy = Simulation::new(&spec, &plan, ProfileMode::Recurring, c.clone())
            .run(&mut LruPolicy::new());

        let serve = ServeSim::new(&[(&spec, 0)], ServeConfig::passthrough(c));
        let sr = serve.run(vec![Box::new(LruPolicy::new())]);
        assert_eq!(sr.reports.len(), 1);
        assert_eq!(format!("{legacy:?}"), format!("{:?}", sr.reports[0]));
        assert_eq!(sr.makespan, legacy.jct);
    }

    #[test]
    fn poisson_arrivals_replay_deterministically() {
        let p = ArrivalProcess::Poisson { mean_gap_us: 500_000 };
        let a = p.arrivals(8, 42);
        let b = p.arrivals(8, 42);
        assert_eq!(a, b);
        assert_eq!(a[0], 0, "first submission arrives immediately");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "ascending arrivals");
        let c = p.arrivals(8, 43);
        assert_ne!(a, c, "different seeds give different streams");
        // The fixed trace ignores the seed entirely (zero draws).
        let t = ArrivalProcess::Trace(vec![0, 10, 20]);
        assert_eq!(t.arrivals(5, 1), vec![0, 10, 20, 20, 20]);
        assert_eq!(t.arrivals(5, 999), vec![0, 10, 20, 20, 20]);
    }

    #[test]
    fn fair_share_stream_completes_and_attributes_stats() {
        let a = little_app("alpha", 3);
        let b = little_app("beta", 2);
        let c = cfg(2, 2 << 20);
        let serve = ServeSim::new(
            &[(&a, 0), (&b, 1)],
            ServeConfig {
                sim: c,
                arrivals: ArrivalProcess::Trace(vec![0, 100_000]),
                sched: ServeSched::FairShare,
                quota: QuotaKind::EqualShare,
                upfront: false,
                intern: true,
                resilience: ResilienceConfig::default(),
            },
        );
        let sr = serve.run(vec![Box::new(LruPolicy::new()), Box::new(LruPolicy::new())]);
        assert_eq!(sr.reports.len(), 2);
        assert_eq!(sr.reports[0].app, "alpha");
        assert_eq!(sr.reports[1].app, "beta");
        for r in &sr.reports {
            assert!(r.aborted.is_none());
            assert!(r.jct.micros() > 0);
            assert!(r.tasks > 0);
        }
        // Stats attribution: each app's counters are its own, and the two
        // apps together account for every access the shared nodes saw.
        let merged = sr.merged_report();
        assert_eq!(
            merged.stats.accesses(),
            sr.reports[0].stats.accesses() + sr.reports[1].stats.accesses()
        );
        let sums = sr.tenant_summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].apps, 1);
        assert_eq!(sums[1].apps, 1);
        assert!(sr.summary().contains("2 apps over 2 tenants"));
        assert_eq!(sr.cross_evictions.len(), 2);
        assert!(sr.resilience.is_none(), "passive config reports no resilience");
        assert!(!sr.summary().contains("resilience:"));
    }

    fn serve_cfg(sim: SimConfig, sched: ServeSched, resilience: ResilienceConfig) -> ServeConfig {
        ServeConfig {
            sim,
            arrivals: ArrivalProcess::Trace(vec![0]),
            sched,
            quota: QuotaKind::Unlimited,
            upfront: false,
            intern: true,
            resilience,
        }
    }

    #[test]
    fn passive_resilience_values_are_byte_invisible() {
        let a = little_app("alpha", 3);
        let b = little_app("beta", 2);
        let run = |res: ResilienceConfig| {
            let mut c = serve_cfg(cfg(2, 2 << 20), ServeSched::FairShare, res);
            c.arrivals = ArrivalProcess::Trace(vec![0, 100_000]);
            c.quota = QuotaKind::EqualShare;
            let serve = ServeSim::new(&[(&a, 0), (&b, 1)], c);
            serve.run_with(|_| Box::new(LruPolicy::new()))
        };
        // Two passive configs with wildly different (but inert) knob values.
        let base = run(ResilienceConfig::default());
        let tweaked = run(ResilienceConfig {
            retry_backoff_us: 1,
            max_retry_backoff_us: 2,
            admission: AdmissionPolicy::Shed,
            queue_cap: None,
            ..ResilienceConfig::default()
        });
        assert_eq!(format!("{:?}", base.reports), format!("{:?}", tweaked.reports));
        assert_eq!(base.summary(), tweaked.summary());
        assert!(base.resilience.is_none() && tweaked.resilience.is_none());
    }

    #[test]
    fn app_level_retry_consumes_budget_and_reports_attempts() {
        // Every task attempt fails, so every app-level attempt aborts at
        // stage 0 and the budget is consumed in full.
        let spec = little_app("doomed", 2);
        let mut c = cfg(2, 3 << 20);
        c.faults.task_failure_p = 1.0;
        c.faults.max_task_attempts = 2;
        let res = ResilienceConfig {
            max_app_attempts: 3,
            retry_backoff_us: 50_000,
            ..ResilienceConfig::default()
        };
        let serve = ServeSim::new(&[(&spec, 0)], serve_cfg(c, ServeSched::Fifo, res));
        let mut built = 0u32;
        let sr = serve.run_with(|_| {
            built += 1;
            Box::new(LruPolicy::new())
        });
        assert_eq!(built, 3, "one fresh policy per admission attempt");
        let r = &sr.reports[0];
        assert_eq!(r.app_attempts, 3);
        assert!(r.aborted.is_some(), "budget exhausted: final abort stands");
        let res = sr.resilience.as_ref().expect("non-passive run");
        assert_eq!(res.app_attempts, vec![3]);
        assert_eq!(res.total_retries(), 2);
        assert!(
            sr.completions[0] >= 2 * 50_000,
            "completion includes two retry backoffs (got {})",
            sr.completions[0]
        );
        assert!(sr.summary().contains("resilience: 2 app retries"));
        assert_eq!(sr.tenant_summaries()[0].retries, 2);
        assert_eq!(sr.tenant_summaries()[0].aborts, 1);
    }

    #[test]
    fn retry_replays_byte_identically() {
        let spec = little_app("doomed", 2);
        let mut c = cfg(2, 3 << 20);
        c.faults.task_failure_p = 0.4;
        c.faults.max_task_attempts = 1;
        let res = ResilienceConfig {
            max_app_attempts: 4,
            ..ResilienceConfig::default()
        };
        let run = || {
            let serve =
                ServeSim::new(&[(&spec, 0)], serve_cfg(c.clone(), ServeSched::Fifo, res));
            serve.run_with(|_| Box::new(LruPolicy::new()))
        };
        let x = run();
        let y = run();
        assert_eq!(format!("{:?}", x.reports), format!("{:?}", y.reports));
        assert_eq!(x.summary(), y.summary());
    }

    #[test]
    fn admission_queue_delays_but_runs_everything() {
        let a = little_app("alpha", 3);
        let b = little_app("beta", 3);
        let d = little_app("gamma", 3);
        let res = ResilienceConfig {
            max_active_apps: Some(1),
            admission: AdmissionPolicy::Queue,
            ..ResilienceConfig::default()
        };
        let mut c = serve_cfg(cfg(2, 2 << 20), ServeSched::FairShare, res);
        c.arrivals = ArrivalProcess::Trace(vec![0, 0, 0]);
        let serve = ServeSim::new(&[(&a, 0), (&b, 0), (&d, 1)], c);
        let sr = serve.run_with(|_| Box::new(LruPolicy::new()));
        let res = sr.resilience.as_ref().expect("non-passive run");
        assert_eq!(res.shed_count(), 0);
        assert!(sr.reports.iter().all(|r| r.tasks > 0), "everything ran");
        assert!(
            res.queue_delay_us.iter().any(|&d| d > 0),
            "simultaneous arrivals past the cap must wait: {:?}",
            res.queue_delay_us
        );
        // Queue wait is part of JCT: a queued app's JCT covers admission
        // delay plus execution.
        let delayed = (0..3).find(|&i| res.queue_delay_us[i] > 0).unwrap();
        assert!(sr.reports[delayed].jct.micros() >= res.queue_delay_us[delayed]);
    }

    #[test]
    fn admission_shed_drops_overflow_and_keeps_indices_aligned() {
        let a = little_app("alpha", 3);
        let b = little_app("beta", 3);
        let d = little_app("gamma", 3);
        let res = ResilienceConfig {
            max_active_apps: Some(1),
            admission: AdmissionPolicy::Shed,
            ..ResilienceConfig::default()
        };
        let mut c = serve_cfg(cfg(2, 2 << 20), ServeSched::FairShare, res);
        c.arrivals = ArrivalProcess::Trace(vec![0, 0, 0]);
        let serve = ServeSim::new(&[(&a, 0), (&b, 0), (&d, 1)], c);
        let sr = serve.run_with(|_| Box::new(LruPolicy::new()));
        let res = sr.resilience.as_ref().expect("non-passive run");
        assert_eq!(res.shed_count(), 2, "only one submission fits");
        let shed_idx: Vec<usize> = (0..3).filter(|&i| res.shed[i]).collect();
        for &i in &shed_idx {
            assert_eq!(sr.reports[i].policy, "-");
            assert_eq!(sr.reports[i].tasks, 0);
            assert_eq!(sr.reports[i].app_attempts, 0);
            assert_eq!(sr.completions[i], sr.arrivals[i], "shed at arrival");
        }
        // shed + completed + aborted = submitted.
        let completed = sr
            .reports
            .iter()
            .enumerate()
            .filter(|(i, r)| !res.shed[*i] && r.aborted.is_none())
            .count() as u64;
        let aborted = sr.reports.iter().filter(|r| r.aborted.is_some()).count() as u64;
        assert_eq!(res.shed_count() + completed + aborted, 3);
        assert!(sr.summary().contains("2 shed"));
        // The merged report still sees every node and a real policy name.
        let merged = sr.merged_report();
        assert_eq!(merged.per_node.len(), 2);
        assert_eq!(merged.policy, "LRU");
    }

    #[test]
    fn admission_degrade_bypasses_caching() {
        let a = little_app("alpha", 4);
        let b = little_app("beta", 4);
        let res = ResilienceConfig {
            max_active_apps: Some(1),
            admission: AdmissionPolicy::Degrade,
            ..ResilienceConfig::default()
        };
        let mut c = serve_cfg(cfg(2, 4 << 20), ServeSched::FairShare, res);
        c.arrivals = ArrivalProcess::Trace(vec![0, 0]);
        let serve = ServeSim::new(&[(&a, 0), (&b, 1)], c);
        let sr = serve.run_with(|_| Box::new(LruPolicy::new()));
        let res = sr.resilience.as_ref().expect("non-passive run");
        assert_eq!(res.degraded_count(), 1);
        let deg = (0..2).find(|&i| res.degraded[i]).unwrap();
        let ok = 1 - deg;
        assert_eq!(
            sr.reports[deg].stats.hits, 0,
            "cache bypass: nothing it computes is ever cached"
        );
        assert!(sr.reports[ok].stats.hits > 0, "the admitted app caches normally");
        assert!(sr.reports[deg].tasks > 0, "degraded apps still run");
        assert!(sr.summary().contains("1 degraded"));
    }

    #[test]
    fn deadline_slo_accounting_is_post_hoc() {
        let a = little_app("alpha", 3);
        let b = little_app("beta", 3);
        // A 1us deadline nothing can meet, on an otherwise passive run.
        let res = ResilienceConfig {
            deadline_us: Some(1),
            ..ResilienceConfig::default()
        };
        let mut c = serve_cfg(cfg(2, 2 << 20), ServeSched::FairShare, res);
        c.arrivals = ArrivalProcess::Trace(vec![0, 100_000]);
        let serve = ServeSim::new(&[(&a, 0), (&b, 1)], c);
        let sr = serve.run_with(|_| Box::new(LruPolicy::new()));
        let res = sr.resilience.as_ref().expect("deadline makes the run non-passive");
        assert_eq!(res.met_deadline(0, sr.arrivals[0], sr.completions[0]), Some(false));
        assert!(sr.summary().contains("slo: 0/2 met the 0.000s deadline (0.0% attainment)"));
        let sums = sr.tenant_summaries();
        assert_eq!(sums[0].deadline_misses + sums[1].deadline_misses, 2);
        // And the run itself is byte-identical to the passive one: deadline
        // is pure reporting.
        let passive = {
            let mut c2 = serve_cfg(cfg(2, 2 << 20), ServeSched::FairShare, Default::default());
            c2.arrivals = ArrivalProcess::Trace(vec![0, 100_000]);
            ServeSim::new(&[(&a, 0), (&b, 1)], c2).run_with(|_| Box::new(LruPolicy::new()))
        };
        assert_eq!(format!("{:?}", sr.reports), format!("{:?}", passive.reports));
    }

    #[test]
    fn upfront_rejects_active_resilience_but_allows_deadline() {
        let a = little_app("alpha", 2);
        let res = ResilienceConfig {
            deadline_us: Some(1_000_000_000),
            ..ResilienceConfig::default()
        };
        let mut c = serve_cfg(cfg(2, 2 << 20), ServeSched::Fifo, res);
        c.upfront = true;
        let sr = ServeSim::new(&[(&a, 0)], c).run_with(|_| Box::new(LruPolicy::new()));
        let r = sr.resilience.as_ref().expect("deadline reported upfront too");
        assert_eq!(r.app_attempts, vec![1]);
        assert!(sr.summary().contains("slo: 1/1 met"));
    }

    #[test]
    #[should_panic(expected = "use ServeSim::run_with")]
    fn run_rejects_retry_budgets() {
        let a = little_app("alpha", 2);
        let res = ResilienceConfig {
            max_app_attempts: 2,
            ..ResilienceConfig::default()
        };
        let serve = ServeSim::new(&[(&a, 0)], serve_cfg(cfg(2, 2 << 20), ServeSched::Fifo, res));
        let _ = serve.run(vec![Box::new(LruPolicy::new())]);
    }
}
