//! Fault injection: scripted crash/slowdown events plus seeded stochastic
//! failure processes, and the per-run fault accounting.
//!
//! A [`FaultPlan`] rides on [`crate::SimConfig`] and describes everything
//! that can go wrong in a run:
//!
//! * **scripted crashes** ([`CrashEvent`]) — a node loses its memory cache
//!   and local disk at the start of a stage. With `rejoin_after: None` the
//!   executor is replaced immediately (the legacy `node_failure` shape);
//!   with `Some(k)` the node is *down* for `k` stages — its task slots are
//!   unavailable, tasks homed there run on the cluster-wide earliest slot —
//!   and then rejoins with cold caches, at which point the policy's
//!   [`refdist_policies::CachePolicy::on_node_join`] hook fires (for MRD:
//!   the manager re-issues the distance-table replica, paper §4.4);
//! * **slowdown windows** ([`Slowdown`]) — a node's compute runs `factor`×
//!   slower for a stage interval (transient noisy-neighbour effects);
//! * **wall-clock events** ([`TimedCrash`], [`TimedSlowdown`]) — the same
//!   two shapes indexed by simulated *time* instead of stage id. Stage ids
//!   are per-application, which makes stage-indexed events meaningless
//!   across a serve stream (each submission replays stages `0..n`, so a
//!   stage-indexed crash fires once per matching stage of *every* app);
//!   timed events fire against the cluster-wide clock high-water mark and
//!   hit whichever app happens to be running;
//! * **churn** ([`ChurnProcess`]) — a stochastic membership process: each
//!   node alternates exponentially distributed up (MTBF) and down (MTTR)
//!   intervals, drawn from a dedicated salted RNG stream (the fault-seed
//!   pattern) so churn timing is independent of every other random stream
//!   and of which applications the stream happens to contain;
//! * **stochastic processes** — per-task-attempt failure probability
//!   (failed attempts retry with capped exponential backoff up to
//!   [`FaultPlan::max_task_attempts`], then the run aborts), and per-fetch /
//!   per-disk-read failure probabilities (failed reads fall back to lineage
//!   recomputation, the paper's §4.4 recovery path);
//! * **speculative execution** — when [`FaultPlan::speculation_quantile`] is
//!   set, the slowest tail of each stage's tasks is re-launched on the
//!   cluster-wide earliest free slots and the first finisher wins.
//!
//! All stochastic draws come from a dedicated stream derived from the run's
//! master seed, separate from the compute-jitter stream, so (a) runs stay
//! byte-deterministic at any sweep thread count and (b) an empty plan leaves
//! the fault-free run byte-identical to a build without fault injection.

use refdist_dag::StageId;

/// One scripted executor loss.
///
/// **Serve-mode indexing:** stage ids are *per application* — every
/// submission in a serve stream replays local stages `0..n`. A
/// stage-indexed crash therefore fires at the first stage start whose local
/// id reaches `at_stage` (fire-once, tracked cluster-wide), i.e. against the
/// merged stream's stage numbering, not against any one submission. Which
/// submission that is depends only on arrival order and per-app stage
/// counts, both fixed by the seed — so a chaos seed yields the same fault
/// sequence under the streaming, upfront, and interned drivers (pinned by
/// `chaos_fault_sequence_is_driver_invariant` in `differential_serve.rs`).
/// For events that must not depend on stream composition at all, use
/// [`TimedCrash`]/[`ChurnProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// Node that crashes.
    pub node: u32,
    /// Stage (by id) at whose start the crash happens.
    pub at_stage: u32,
    /// `None`: the executor is replaced immediately (storage wiped, slots
    /// keep running — the legacy `node_failure` shape). `Some(k)`: the node
    /// is down for `k` stages, then rejoins with cold caches.
    pub rejoin_after: Option<u32>,
}

/// A transient compute slowdown on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// Affected node.
    pub node: u32,
    /// Compute-time multiplier (values below 1 are clamped to 1).
    pub factor: f64,
    /// First stage (by id) the slowdown applies to.
    pub from_stage: u32,
    /// Stage at which the slowdown ends (exclusive); `None` = permanent.
    pub until_stage: Option<u32>,
}

impl Slowdown {
    /// Whether the window covers `stage`.
    pub fn active_at(&self, stage: u32) -> bool {
        stage >= self.from_stage && self.until_stage.is_none_or(|u| stage < u)
    }
}

/// One scripted executor loss indexed by simulated wall-clock time instead
/// of stage id. In serve mode stage ids belong to whichever application is
/// running, so [`CrashEvent`] timing depends on stream composition; a
/// `TimedCrash` fires once, when the cluster clock's high-water mark first
/// reaches `at_time_us`, regardless of what is running.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedCrash {
    /// Node that crashes.
    pub node: u32,
    /// Simulated time (microseconds) at which the crash fires. The engine
    /// checks at stage starts, so the effective firing point is the first
    /// stage boundary at or after this instant.
    pub at_time_us: u64,
    /// `None`: storage wiped, executor replaced immediately. `Some(d)`: the
    /// node is down for `d` microseconds of simulated time, then rejoins
    /// with cold caches.
    pub rejoin_after_us: Option<u64>,
}

/// A transient compute slowdown on one node over a wall-clock window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedSlowdown {
    /// Affected node.
    pub node: u32,
    /// Compute-time multiplier (values below 1 are clamped to 1).
    pub factor: f64,
    /// Start of the window, simulated microseconds.
    pub from_time_us: u64,
    /// End of the window (exclusive); `None` = permanent.
    pub until_time_us: Option<u64>,
}

impl TimedSlowdown {
    /// Whether the window covers the instant `t` (microseconds).
    pub fn active_at_time(&self, t: u64) -> bool {
        t >= self.from_time_us && self.until_time_us.is_none_or(|u| t < u)
    }
}

/// Continuous stochastic membership churn: every node alternates
/// exponentially distributed up intervals (mean [`ChurnProcess::mtbf_us`])
/// and down intervals (mean [`ChurnProcess::mttr_us`]). Failures wipe the
/// node's storage exactly like a scripted downtime crash; repairs rejoin it
/// cold. All draws come from a dedicated salted stream of the master seed,
/// so a given seed produces one fixed fault timeline no matter which
/// applications the run contains or which serve driver executes them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    /// Mean time between failures per node, simulated microseconds.
    pub mtbf_us: u64,
    /// Mean time to repair per node, simulated microseconds.
    pub mttr_us: u64,
}

/// Everything that can go wrong in one run. `FaultPlan::default()` is the
/// empty plan: no events, zero probabilities, speculation off — runs are
/// byte-identical to a fault-free build (the differential tests prove it).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scripted executor losses, in any order.
    pub crashes: Vec<CrashEvent>,
    /// Transient compute slowdowns.
    pub slowdowns: Vec<Slowdown>,
    /// Wall-clock-indexed executor losses.
    pub timed_crashes: Vec<TimedCrash>,
    /// Wall-clock-indexed compute slowdowns.
    pub timed_slowdowns: Vec<TimedSlowdown>,
    /// Stochastic membership churn; `None` = nodes never churn.
    pub churn: Option<ChurnProcess>,
    /// Probability that a task attempt fails after doing its work.
    pub task_failure_p: f64,
    /// Probability that a remote-memory fetch fails mid-flight (the reader
    /// falls back to lineage recomputation).
    pub fetch_failure_p: f64,
    /// Probability that a disk read fails (ditto).
    pub disk_failure_p: f64,
    /// Attempts per task before the stage aborts (Spark's
    /// `spark.task.maxFailures`; minimum 1).
    pub max_task_attempts: u32,
    /// Base retry backoff in simulated microseconds; doubles per failure.
    pub retry_backoff_us: u64,
    /// Cap on the exponential backoff.
    pub max_backoff_us: u64,
    /// Speculative execution: fraction of a stage's tasks that must finish
    /// before copies of the still-running tail are launched on free slots
    /// (0 = off). The first finisher wins; the loser's slot time is still
    /// paid (the kill is not instantaneous).
    pub speculation_quantile: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            crashes: Vec::new(),
            slowdowns: Vec::new(),
            timed_crashes: Vec::new(),
            timed_slowdowns: Vec::new(),
            churn: None,
            task_failure_p: 0.0,
            fetch_failure_p: 0.0,
            disk_failure_p: 0.0,
            max_task_attempts: 4,
            retry_backoff_us: 250_000,
            max_backoff_us: 4_000_000,
            speculation_quantile: 0.0,
        }
    }
}

impl FaultPlan {
    /// No fault can occur under this plan (knob values are irrelevant when
    /// nothing triggers them).
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.slowdowns.is_empty()
            && self.timed_crashes.is_empty()
            && self.timed_slowdowns.is_empty()
            && self.churn.is_none()
            && self.task_failure_p == 0.0
            && self.fetch_failure_p == 0.0
            && self.disk_failure_p == 0.0
            && self.speculation_quantile == 0.0
    }

    /// Sugar for the legacy `SimConfig::node_failure` shape: `node`'s
    /// storage is wiped at the start of stage `at_stage`, the executor is
    /// replaced immediately.
    pub fn node_failure(&mut self, node: u32, at_stage: u32) -> &mut Self {
        self.crashes.push(CrashEvent {
            node,
            at_stage,
            rejoin_after: None,
        });
        self
    }

    /// A crash at stage `at_stage` with the node down for `down_stages`
    /// stages before rejoining cold.
    pub fn crash_with_rejoin(&mut self, node: u32, at_stage: u32, down_stages: u32) -> &mut Self {
        self.crashes.push(CrashEvent {
            node,
            at_stage,
            rejoin_after: Some(down_stages),
        });
        self
    }

    /// A wall-clock crash at `at_time_us` with the node down for
    /// `down_us` microseconds before rejoining cold; `down_us = None` is
    /// the instant-replacement shape.
    pub fn timed_crash(&mut self, node: u32, at_time_us: u64, down_us: Option<u64>) -> &mut Self {
        self.timed_crashes.push(TimedCrash {
            node,
            at_time_us,
            rejoin_after_us: down_us,
        });
        self
    }

    /// A wall-clock slowdown window on `node`.
    pub fn timed_slowdown(
        &mut self,
        node: u32,
        factor: f64,
        from_time_us: u64,
        until_time_us: Option<u64>,
    ) -> &mut Self {
        self.timed_slowdowns.push(TimedSlowdown {
            node,
            factor,
            from_time_us,
            until_time_us,
        });
        self
    }

    /// Enable continuous membership churn with the given per-node mean
    /// up/down times (microseconds).
    pub fn node_churn(&mut self, mtbf_us: u64, mttr_us: u64) -> &mut Self {
        self.churn = Some(ChurnProcess { mtbf_us, mttr_us });
        self
    }

    /// Sugar for the legacy `SimConfig::slow_node` shape: a permanent
    /// straggler from stage 0.
    pub fn slow_node(&mut self, node: u32, factor: f64) -> &mut Self {
        self.slowdowns.push(Slowdown {
            node,
            factor,
            from_stage: 0,
            until_stage: None,
        });
        self
    }

    /// A purely stochastic plan for chaos sweeps: task attempts and fetches
    /// fail with probability `rate`, disk reads at half that, with the
    /// default retry budget. `rate = 0` gives an empty plan.
    pub fn chaos(rate: f64) -> Self {
        FaultPlan {
            task_failure_p: rate,
            fetch_failure_p: rate,
            disk_failure_p: rate / 2.0,
            ..Default::default()
        }
    }

    /// Combined compute-slowdown factor for `node` at `stage` — the product
    /// of every active window's (clamped) factor.
    pub fn slow_factor(&self, node: u32, stage: u32) -> f64 {
        let mut f = 1.0;
        for s in &self.slowdowns {
            if s.node == node && s.active_at(stage) {
                f *= s.factor.max(1.0);
            }
        }
        f
    }

    /// Combined wall-clock slowdown factor for `node` at instant `t`
    /// (microseconds) — the product of every active timed window's
    /// (clamped) factor.
    pub fn slow_factor_at_time(&self, node: u32, t: u64) -> f64 {
        let mut f = 1.0;
        for s in &self.timed_slowdowns {
            if s.node == node && s.active_at_time(t) {
                f *= s.factor.max(1.0);
            }
        }
        f
    }

    /// Backoff before retry number `failures` (1-based), capped.
    pub fn backoff_us(&self, failures: u32) -> u64 {
        let shift = failures.saturating_sub(1).min(20);
        self.retry_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us)
    }

    /// Whether the engine must track the cluster-wide slot order: downtime
    /// crashes redirect homed tasks and speculation launches copies, both on
    /// the globally earliest slot.
    pub fn needs_global_slots(&self) -> bool {
        self.speculation_quantile > 0.0
            || self.crashes.iter().any(|c| c.rejoin_after.is_some())
            || self.timed_crashes.iter().any(|c| c.rejoin_after_us.is_some())
            || self.churn.is_some()
    }

    /// Sanity-check the plan's knobs.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("task_failure_p", self.task_failure_p),
            ("fetch_failure_p", self.fetch_failure_p),
            ("disk_failure_p", self.disk_failure_p),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if !(0.0..1.0).contains(&self.speculation_quantile) {
            return Err(format!(
                "speculation_quantile must be in [0, 1), got {}",
                self.speculation_quantile
            ));
        }
        if self.max_task_attempts == 0 {
            return Err("max_task_attempts must be at least 1".into());
        }
        if let Some(ch) = self.churn {
            if ch.mtbf_us == 0 || ch.mttr_us == 0 {
                return Err(format!(
                    "churn MTBF/MTTR must be nonzero, got {}/{}",
                    ch.mtbf_us, ch.mttr_us
                ));
            }
        }
        for s in &self.timed_slowdowns {
            if !s.factor.is_finite() {
                return Err(format!("timed slowdown factor must be finite, got {}", s.factor));
            }
        }
        Ok(())
    }
}

/// Fault accounting for one run, carried on
/// [`RunReport::faults`](crate::RunReport::faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Task attempts that failed (stochastic task failures).
    pub task_failures: u64,
    /// Failed attempts that were retried (failures minus any abort).
    pub retries: u64,
    /// Total simulated time spent in retry backoff, microseconds.
    pub backoff_us: u64,
    /// Remote-memory fetches that failed mid-flight.
    pub fetch_failures: u64,
    /// Disk reads that failed.
    pub disk_failures: u64,
    /// Lineage recomputations forced by failed fetches/disk reads (subset of
    /// `CacheStats::recomputes`).
    pub fault_recomputes: u64,
    /// Scripted crashes that fired.
    pub crashes: u64,
    /// Downed nodes that rejoined with cold caches.
    pub rejoins: u64,
    /// Speculative task copies launched.
    pub spec_launched: u64,
    /// Copies that beat the original attempt.
    pub spec_wins: u64,
    /// Copies that lost to the original attempt.
    pub spec_losses: u64,
    /// Stage aborts (a task exhausted its retry budget). At most 1 in a
    /// single-app run; in serve mode each application can abort once.
    pub aborts: u64,
}

impl FaultStats {
    /// True when no fault machinery fired at all.
    pub fn is_empty(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Sum another run's counters into this aggregate (serve mode folds the
    /// per-application fault accounting into one cluster-level view).
    pub fn merge(&mut self, other: &FaultStats) {
        self.task_failures += other.task_failures;
        self.retries += other.retries;
        self.backoff_us += other.backoff_us;
        self.fetch_failures += other.fetch_failures;
        self.disk_failures += other.disk_failures;
        self.fault_recomputes += other.fault_recomputes;
        self.crashes += other.crashes;
        self.rejoins += other.rejoins;
        self.spec_launched += other.spec_launched;
        self.spec_wins += other.spec_wins;
        self.spec_losses += other.spec_losses;
        self.aborts += other.aborts;
    }
}

/// A stage abort: some task exhausted its retry budget. Carried on
/// [`RunReport::aborted`](crate::RunReport::aborted); the stages after the
/// failing one never ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageAbort {
    /// The stage that aborted.
    pub stage: StageId,
    /// The application (submission index) the stage belonged to. Always 0
    /// in the single-app engine; serve mode records which tenant's
    /// submission died so the survivors' reports stay attributable.
    pub app: u32,
    /// The failing task's partition index.
    pub task: u32,
    /// Attempts consumed (== `max_task_attempts`).
    pub attempts: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(!p.needs_global_slots());
        p.validate().unwrap();
        assert_eq!(p.slow_factor(0, 0), 1.0);
    }

    #[test]
    fn sugar_builds_equivalent_events() {
        let mut p = FaultPlan::default();
        p.node_failure(1, 4).slow_node(0, 8.0);
        assert_eq!(
            p.crashes,
            vec![CrashEvent {
                node: 1,
                at_stage: 4,
                rejoin_after: None
            }]
        );
        assert!(!p.is_empty());
        // Instant-replacement crashes never need the global slot order.
        assert!(!p.needs_global_slots());
        assert_eq!(p.slow_factor(0, 0), 8.0);
        assert_eq!(p.slow_factor(0, 99), 8.0);
        assert_eq!(p.slow_factor(1, 0), 1.0);
    }

    #[test]
    fn downtime_and_speculation_need_global_slots() {
        let mut p = FaultPlan::default();
        p.crash_with_rejoin(0, 2, 3);
        assert!(p.needs_global_slots());
        let spec = FaultPlan {
            speculation_quantile: 0.75,
            ..Default::default()
        };
        assert!(spec.needs_global_slots());
    }

    #[test]
    fn timed_events_and_churn_extend_the_plan() {
        let mut p = FaultPlan::default();
        p.timed_crash(0, 1_000_000, None);
        assert!(!p.is_empty());
        // Instant-replacement timed crashes never need the global slot order.
        assert!(!p.needs_global_slots());
        p.timed_crash(1, 2_000_000, Some(500_000));
        assert!(p.needs_global_slots());
        p.validate().unwrap();

        let mut c = FaultPlan::default();
        c.node_churn(10_000_000, 1_000_000);
        assert!(!c.is_empty());
        assert!(c.needs_global_slots());
        c.validate().unwrap();
    }

    #[test]
    fn timed_slowdown_windows_bound_correctly() {
        let mut p = FaultPlan::default();
        p.timed_slowdown(0, 3.0, 2_000, Some(5_000));
        assert_eq!(p.slow_factor_at_time(0, 1_999), 1.0);
        assert_eq!(p.slow_factor_at_time(0, 2_000), 3.0);
        assert_eq!(p.slow_factor_at_time(0, 4_999), 3.0);
        assert_eq!(p.slow_factor_at_time(0, 5_000), 1.0);
        assert_eq!(p.slow_factor_at_time(1, 3_000), 1.0);
        // Permanent window + sub-unity clamping.
        p.timed_slowdown(1, 0.5, 0, None);
        assert_eq!(p.slow_factor_at_time(1, 9_999_999), 1.0);
        assert!(!p.is_empty());
        assert!(!p.needs_global_slots());
    }

    #[test]
    fn validate_rejects_zero_churn_means() {
        let mut p = FaultPlan::default();
        p.node_churn(0, 1_000);
        assert!(p.validate().is_err());
        let mut p = FaultPlan::default();
        p.node_churn(1_000, 0);
        assert!(p.validate().is_err());
        let mut p = FaultPlan::default();
        p.timed_slowdown(0, f64::INFINITY, 0, None);
        assert!(p.validate().is_err());
    }

    #[test]
    fn slowdown_windows_bound_correctly() {
        let s = Slowdown {
            node: 0,
            factor: 3.0,
            from_stage: 2,
            until_stage: Some(5),
        };
        assert!(!s.active_at(1));
        assert!(s.active_at(2));
        assert!(s.active_at(4));
        assert!(!s.active_at(5));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FaultPlan {
            retry_backoff_us: 1_000,
            max_backoff_us: 6_000,
            ..Default::default()
        };
        assert_eq!(p.backoff_us(1), 1_000);
        assert_eq!(p.backoff_us(2), 2_000);
        assert_eq!(p.backoff_us(3), 4_000);
        assert_eq!(p.backoff_us(4), 6_000);
        assert_eq!(p.backoff_us(40), 6_000);
    }

    #[test]
    fn chaos_scales_with_rate() {
        assert!(FaultPlan::chaos(0.0).is_empty());
        let p = FaultPlan::chaos(0.1);
        assert!(!p.is_empty());
        assert_eq!(p.task_failure_p, 0.1);
        assert_eq!(p.disk_failure_p, 0.05);
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let p = FaultPlan {
            task_failure_p: 1.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPlan {
            speculation_quantile: 1.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPlan {
            max_task_attempts: 0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }
}
