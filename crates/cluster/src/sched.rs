//! Incrementally maintained task-slot index for the scheduler hot path.
//!
//! The original scheduler (kept behind [`crate::SimConfig::linear_sched`] as
//! the reference implementation) finds a task's slot by scanning: a
//! `min_by_key` over the home node's cores per task, plus — when delay
//! scheduling is on — a flat-map over *all* nodes × cores per task for the
//! cluster-wide earliest slot. Both scans are linear in cluster size, which
//! dominates large-cluster runs (O(tasks × nodes × cores) per stage).
//!
//! [`SlotIndex`] keeps the same information in ordered sets updated in
//! O(log n) per task completion:
//!
//! * per node, a `BTreeSet<(free_time, slot)>` whose `first()` is exactly
//!   the linear scan's `min_by_key(|(i, &t)| (t, *i))` — earliest free
//!   time, lowest slot index on a tie;
//! * cluster-wide, a `BTreeSet<(free_time, node, slot)>` whose `first()` is
//!   exactly the flat-map's `min_by_key(|&(n, i, t)| (t, n, i))` — earliest
//!   free time, then lowest node, then lowest slot. Maintained only when
//!   delay scheduling can ask for it.
//!
//! Tie-breaking equivalence is enforced by the scheduler differential tests
//! (`tests/differential_sched.rs`), which require byte-identical placement
//! sequences from both schedulers across randomized configurations.

use refdist_simcore::SimTime;
use std::collections::BTreeSet;

/// Ordered view over per-node task-slot free times. The authoritative free
/// times stay in the engine's `slots` table; the index mirrors them.
#[derive(Debug, Clone)]
pub(crate) struct SlotIndex {
    /// Per node: (free_time, slot), ascending.
    per_node: Vec<BTreeSet<(SimTime, u32)>>,
    /// Cluster-wide: (free_time, node, slot), ascending; `None` when the
    /// global minimum is never queried (no delay scheduling).
    global: Option<BTreeSet<(SimTime, u32, u32)>>,
}

impl SlotIndex {
    /// Index over `free` (per node, per slot free times), tracking the
    /// cluster-wide order only when `track_global` is set.
    pub fn new(free: &[Vec<SimTime>], track_global: bool) -> Self {
        let per_node: Vec<BTreeSet<(SimTime, u32)>> = free
            .iter()
            .map(|slots| {
                slots
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| (t, i as u32))
                    .collect()
            })
            .collect();
        let global = track_global.then(|| {
            free.iter()
                .enumerate()
                .flat_map(|(n, slots)| {
                    slots
                        .iter()
                        .enumerate()
                        .map(move |(i, &t)| (t, n as u32, i as u32))
                })
                .collect()
        });
        SlotIndex { per_node, global }
    }

    /// Earliest-free slot on `node`: `(slot, free_time)`, lowest slot index
    /// on ties.
    #[inline]
    pub fn earliest_on(&self, node: usize) -> (usize, SimTime) {
        let &(t, i) = self.per_node[node]
            .first()
            .expect("nodes have at least one core");
        (i as usize, t)
    }

    /// Cluster-wide earliest slot: `(node, slot, free_time)`, lowest node
    /// then lowest slot on ties.
    ///
    /// # Panics
    /// Panics when the index was built without global tracking.
    #[inline]
    pub fn earliest_global(&self) -> (usize, usize, SimTime) {
        let &(t, n, i) = self
            .global
            .as_ref()
            .expect("global slot order not tracked")
            .first()
            .expect("cluster has slots");
        (n as usize, i as usize, t)
    }

    /// Record that `(node, slot)` moved from free time `old` to `new`.
    #[inline]
    pub fn commit(&mut self, node: usize, slot: usize, old: SimTime, new: SimTime) {
        let removed = self.per_node[node].remove(&(old, slot as u32));
        debug_assert!(removed, "index out of sync with the slot table");
        self.per_node[node].insert((new, slot as u32));
        if let Some(g) = &mut self.global {
            g.remove(&(old, node as u32, slot as u32));
            g.insert((new, node as u32, slot as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linear scans the index replaces, verbatim.
    fn linear_home(slots: &[SimTime]) -> (usize, SimTime) {
        let (i, &t) = slots
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .unwrap();
        (i, t)
    }

    fn linear_global(free: &[Vec<SimTime>]) -> (usize, usize, SimTime) {
        free.iter()
            .enumerate()
            .flat_map(|(n, slots)| slots.iter().enumerate().map(move |(i, &t)| (n, i, t)))
            .min_by_key(|&(n, i, t)| (t, n, i))
            .unwrap()
    }

    #[test]
    fn matches_linear_scans_through_random_commits() {
        // Deterministic xorshift so the test needs no rand dependency.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut free: Vec<Vec<SimTime>> = (0..5).map(|_| vec![SimTime::ZERO; 3]).collect();
        let mut idx = SlotIndex::new(&free, true);
        for step in 0..500 {
            for (n, node_free) in free.iter().enumerate() {
                assert_eq!(idx.earliest_on(n), linear_home(node_free), "step {step}");
            }
            assert_eq!(idx.earliest_global(), linear_global(&free), "step {step}");
            let n = (next() % free.len() as u64) as usize;
            let s = (next() % free[n].len() as u64) as usize;
            // Mix fresh times with repeats of existing ones so ties happen.
            let t = SimTime(next() % 8);
            let old = std::mem::replace(&mut free[n][s], t);
            idx.commit(n, s, old, t);
        }
    }

    #[test]
    fn ties_break_on_lowest_slot_then_node() {
        let free = vec![
            vec![SimTime(5), SimTime(2), SimTime(2)],
            vec![SimTime(2), SimTime(9)],
        ];
        let idx = SlotIndex::new(&free, true);
        assert_eq!(idx.earliest_on(0), (1, SimTime(2)));
        assert_eq!(idx.earliest_global(), (0, 1, SimTime(2)));
    }

    #[test]
    #[should_panic(expected = "global slot order not tracked")]
    fn untracked_global_queries_panic() {
        let idx = SlotIndex::new(&[vec![SimTime::ZERO]], false);
        let _ = idx.earliest_global();
    }
}
