//! The simulation engine: executes a planned application on a simulated
//! cluster under a cache policy.
//!
//! ## Execution model
//!
//! Jobs run in submission order; within the application, stages execute in
//! stage-ID order (a valid topological order — see `refdist_dag::plan`) with
//! a barrier between stages. Each stage runs one task per partition; tasks
//! are placed on their partition's home node (`partition mod nodes`) and
//! queue for that node's task slots.
//!
//! A task's cost is `input-I/O + pipelined compute (+ shuffle write)`:
//!
//! * **memory hit** — free (possibly waiting for an in-flight prefetch);
//! * **remote memory** — pays the reader's NIC;
//! * **disk** — pays the source disk (plus NIC when remote) and promotes the
//!   block back into the reader's memory;
//! * **gone** (MEMORY_ONLY eviction) — recomputes the lineage: descends
//!   through narrow parents, re-reading inputs and shuffle outputs, paying
//!   compute again;
//! * **shuffle read** — pays `parent_bytes / child_partitions` on the NIC;
//! * **external input** — pays the local disk.
//!
//! After a stage's tasks are scheduled, the prefetch engine (for policies
//! that want it) enqueues background fetches *behind* the stage's task I/O,
//! so prefetching genuinely overlaps computation and contends for the same
//! disk/NIC bandwidth (Algorithm 1's prefetching phase, threshold rule
//! included).
//!
//! ## Dense block-slot state
//!
//! The engine's per-block bookkeeping (materialization, in-flight arrival
//! times, unused prefetches, the per-node "prefetchable" set) lives in dense
//! vectors and bitsets indexed by [`BlockSlots`] — every cached-RDD block
//! maps to a `u32` slot, in `BlockId` sort order, so the hot path does no
//! hashing and the prefetcher reads an incrementally maintained bitset
//! instead of rescanning every cached RDD × partition each stage. The
//! original hash-backed representation is preserved behind
//! [`SimConfig::reference_state`] as the reference implementation; the
//! differential tests run both and require byte-identical reports.
//!
//! ## Scheduler index and shared artifacts
//!
//! Task placement runs off an incrementally maintained slot index
//! ([`crate::sched::SlotIndex`]) instead of linear scans over every core;
//! the original scans are kept behind [`SimConfig::linear_sched`] with the
//! same byte-identical-placements guarantee (`tests/differential_sched.rs`).
//! Run-independent artifacts — the [`AppProfiler`] and the [`BlockSlots`]
//! arena — are held as `Arc`s on [`Simulation`] so sweeps can build them
//! once per workload ([`Simulation::with_artifacts`]) and every run of the
//! same cell shares them; per-run engine allocations can likewise be
//! recycled across runs through [`EngineScratch`].

use crate::config::SimConfig;
use crate::faults::{FaultStats, StageAbort};
use crate::report::{RunReport, SchedStats};
use crate::sched::SlotIndex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use refdist_core::{AppProfiler, ProfileMode};
use refdist_dag::{
    shift_rdd, AppPlan, AppProfile, AppSpec, BlockId, BlockSlots, JobId, Rdd, RddId, SlotSet,
    Stage, StageKind, TenantMap,
};
use refdist_policies::{CachePolicy, LruPolicy};
use refdist_simcore::{EventQueue, FifoResource, SimDuration, SimTime};
use refdist_store::{BlockManager, BlockMaster, CacheStats, InsertError, NodeId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A configured simulation of one application on one cluster.
pub struct Simulation<'a> {
    spec: &'a AppSpec,
    plan: &'a AppPlan,
    profiler: Arc<AppProfiler>,
    arena: Arc<BlockSlots>,
    cfg: SimConfig,
}

impl<'a> Simulation<'a> {
    /// Create a simulation, building its shared artifacts (profiler and
    /// block-slot arena) from scratch. The profiler decides how much of the
    /// DAG each policy sees at each point (ad-hoc vs recurring, paper §5.8).
    pub fn new(spec: &'a AppSpec, plan: &'a AppPlan, mode: ProfileMode, cfg: SimConfig) -> Self {
        Self::with_artifacts(
            spec,
            plan,
            Arc::new(AppProfiler::new(spec, plan, mode)),
            Arc::new(BlockSlots::new(spec)),
            cfg,
        )
    }

    /// Create a simulation around pre-built shared artifacts. The profiler
    /// depends only on `(spec, plan, mode)` and the arena only on `spec`, so
    /// a sweep that runs one workload under many `(policy, fraction, seed)`
    /// cells builds each exactly once and shares the `Arc`s across cells
    /// instead of re-profiling the DAG and rebuilding the arena per run.
    ///
    /// `profiler` and `arena` must have been built from this same
    /// `(spec, plan)` — the engine trusts the arena's slot mapping.
    pub fn with_artifacts(
        spec: &'a AppSpec,
        plan: &'a AppPlan,
        profiler: Arc<AppProfiler>,
        arena: Arc<BlockSlots>,
        cfg: SimConfig,
    ) -> Self {
        cfg.cluster
            .validate()
            .unwrap_or_else(|e| panic!("invalid cluster config: {e}"));
        Simulation {
            spec,
            plan,
            profiler,
            arena,
            cfg,
        }
    }

    /// The profiler in use.
    pub fn profiler(&self) -> &AppProfiler {
        &self.profiler
    }

    /// Shared handles to the run-independent artifacts, for reuse in another
    /// simulation of the same workload ([`Simulation::with_artifacts`]).
    pub fn artifacts(&self) -> (Arc<AppProfiler>, Arc<BlockSlots>) {
        (Arc::clone(&self.profiler), Arc::clone(&self.arena))
    }

    /// Execute the application under `policy` and report.
    pub fn run(&self, policy: &mut dyn CachePolicy) -> RunReport {
        self.run_with_scratch(policy, &mut EngineScratch::default())
    }

    /// Execute the application under `policy`, recycling `scratch`'s buffers
    /// for the engine's per-run state and leaving them in `scratch` for the
    /// next run. Results are identical to [`Simulation::run`] — the engine
    /// resets every recycled buffer to its fresh state — but back-to-back
    /// runs (sweep cells on one worker thread) skip the allocations.
    pub fn run_with_scratch(
        &self,
        policy: &mut dyn CachePolicy,
        scratch: &mut EngineScratch,
    ) -> RunReport {
        let mut engine = Engine::new(self, std::mem::take(scratch));
        let report = engine.run(policy);
        *scratch = engine.into_scratch();
        report
    }
}

/// Reusable engine allocations, recycled across runs via
/// [`Simulation::run_with_scratch`]. Holds the per-run tables whose shapes
/// depend only on the cluster and workload sizes: slot free times, dense
/// per-block state, the lineage-walk epoch stamps, and the purge candidate
/// buffer. A default-constructed scratch is simply "no buffers yet".
#[derive(Debug, Default)]
pub struct EngineScratch {
    slots: Vec<Vec<SimTime>>,
    pending_d: Vec<Vec<SimTime>>,
    materialized_d: SlotSet,
    prefetched_d: Vec<SlotSet>,
    prefetchable: Vec<SlotSet>,
    visited_epoch: Vec<u64>,
    purge_buf: Vec<BlockId>,
    stage_tasks: TaskTable,
    missing_buf: Vec<BlockId>,
    events: EventQueue<u32>,
}

/// Struct-of-arrays record of one stage's launched tasks, indexed by the
/// dense task index (== partition, tasks launch in partition order). Only
/// filled when speculation needs the stage's completion profile; the
/// parallel `Vec`s replace the old per-stage `Vec` of 5-field tuples so the
/// speculation pass streams each column it needs instead of striding
/// through 40-byte records.
#[derive(Debug, Default)]
pub(crate) struct TaskTable {
    /// Finish time of the task's successful (or aborted) attempt.
    finish: Vec<SimTime>,
    /// Node the attempt ran on.
    node: Vec<u32>,
    /// Slot index on that node.
    slot: Vec<u32>,
    /// Start time of the *last* attempt (the one `finish` belongs to) — the
    /// deadline floor for killing a losing attempt.
    start: Vec<SimTime>,
    /// Attempts consumed (retries + 1).
    attempts: Vec<u32>,
}

impl TaskTable {
    fn clear(&mut self) {
        self.finish.clear();
        self.node.clear();
        self.slot.clear();
        self.start.clear();
        self.attempts.clear();
    }
    fn len(&self) -> usize {
        self.finish.len()
    }
    fn is_empty(&self) -> bool {
        self.finish.is_empty()
    }
    fn push(&mut self, finish: SimTime, node: u32, slot: u32, start: SimTime, attempts: u32) {
        self.finish.push(finish);
        self.node.push(node);
        self.slot.push(slot);
        self.start.push(start);
        self.attempts.push(attempts);
    }
}

/// Shape `rows` into `outer` rows of `inner` copies of `fill`, reusing row
/// allocations from a previous run.
fn reset_rows(rows: &mut Vec<Vec<SimTime>>, outer: usize, inner: usize, fill: SimTime) {
    rows.truncate(outer);
    for row in rows.iter_mut() {
        row.clear();
        row.resize(inner, fill);
    }
    while rows.len() < outer {
        rows.push(vec![fill; inner]);
    }
}

/// Shape `sets` into `outer` empty bitsets over `nslots` slots.
fn reset_sets(sets: &mut Vec<SlotSet>, outer: usize, nslots: usize) {
    sets.truncate(outer);
    for s in sets.iter_mut() {
        s.reset(nslots);
    }
    while sets.len() < outer {
        sets.push(SlotSet::new(nslots));
    }
}

/// Record the global cached-block access trace of an application by running
/// it once with an effectively infinite cache (no evictions). The Belady MIN
/// oracle consumes this trace.
pub fn collect_trace(spec: &AppSpec, plan: &AppPlan, cfg: &SimConfig) -> Vec<BlockId> {
    let mut big = cfg.clone();
    big.collect_trace = true;
    big.cluster = big.cluster.with_cache(1 << 60);
    let sim = Simulation::new(spec, plan, ProfileMode::Recurring, big);
    let mut lru = LruPolicy::new();
    sim.run(&mut lru)
        .trace
        .expect("trace collection was requested")
}

/// Where the engine resolves RDD metadata from: the whole application spec
/// (single-app runs and the upfront serve path), or an owned, windowed
/// registry that streaming serve populates at admission and drains at
/// retirement, so resolvable metadata is `O(live apps)` rather than
/// `O(total stream)`.
pub(crate) enum SpecSource<'a> {
    Whole(&'a AppSpec),
    Registry(SpecRegistry),
}

/// Owned, windowed RDD registry for the streaming engine. `rdds[i]` holds
/// the RDD with global id `rdd_base + i`; only live applications' RDDs are
/// resolvable. Global RDD ids are never recycled (they are embedded in
/// `BlockId`s, traces, and decision logs), so the window only ever covers
/// the live span and advances monotonically as the oldest apps retire.
#[derive(Debug, Default)]
pub(crate) struct SpecRegistry {
    rdd_base: usize,
    rdds: Vec<Option<Rdd>>,
}

impl SpecRegistry {
    fn rdd(&self, id: RddId) -> &Rdd {
        self.rdds[id.index() - self.rdd_base]
            .as_ref()
            .expect("rdd of a live application")
    }

    fn len(&self) -> usize {
        self.rdds.len()
    }

    /// Live cached RDDs, ascending by id — the streaming replacement for the
    /// reference prefetcher's whole-spec scan (retired apps' candidates were
    /// dead weight there anyway: the tenant mux filters every candidate list
    /// to the running app).
    fn cached_rdds(&self) -> impl Iterator<Item = &Rdd> + '_ {
        self.rdds.iter().flatten().filter(|r| r.is_cached())
    }

    /// Insert `spec`'s RDDs shifted by `offset` into the global id space.
    /// Returns how many entries were spliced in at the *front* (an admission
    /// below the current window — trace arrivals admit in arrival order, not
    /// id order), so parallel window tables stay index-aligned.
    fn admit(&mut self, spec: &AppSpec, offset: u32) -> usize {
        let first = offset as usize;
        let mut front = 0;
        if self.rdds.is_empty() {
            self.rdd_base = first;
        } else if first < self.rdd_base {
            front = self.rdd_base - first;
            self.rdds
                .splice(0..0, std::iter::repeat_with(|| None).take(front));
            self.rdd_base = first;
        }
        let end = first - self.rdd_base + spec.rdds.len();
        if end > self.rdds.len() {
            self.rdds.resize_with(end, || None);
        }
        for r in &spec.rdds {
            let shifted = shift_rdd(r, offset);
            let i = shifted.id.index() - self.rdd_base;
            debug_assert!(self.rdds[i].is_none(), "rdd ids are never recycled");
            self.rdds[i] = Some(shifted);
        }
        front
    }

    /// Drop one application's RDDs (`range` in the global id space) and
    /// advance the window past any leading retired entries. Returns the
    /// number of entries drained from the front so parallel window tables
    /// can drain in lockstep.
    fn retire(&mut self, range: std::ops::Range<u32>) -> usize {
        for ri in range {
            self.rdds[ri as usize - self.rdd_base] = None;
        }
        let lead = self.rdds.iter().take_while(|r| r.is_none()).count();
        if lead > 0 {
            self.rdds.drain(..lead);
            self.rdd_base += lead;
        }
        lead
    }
}

pub(crate) struct Engine<'a> {
    source: SpecSource<'a>,
    /// `None` for the streaming engine, which never calls [`Engine::run`]:
    /// the serve driver owns per-app plans and drives stages directly.
    plan: Option<&'a AppPlan>,
    profiler: Option<&'a AppProfiler>,
    cfg: &'a SimConfig,
    nodes: usize,

    managers: Vec<BlockManager>,
    master: BlockMaster,
    disk: Vec<FifoResource>,
    net: Vec<FifoResource>,
    /// Per node, per core: time the slot becomes free (authoritative).
    slots: Vec<Vec<SimTime>>,
    /// Ordered mirror of `slots` for O(log n) placement; `None` when the
    /// linear reference scheduler is in use (`cfg.linear_sched` or
    /// `cfg.reference_state`).
    sched: Option<SlotIndex>,
    /// Home vs delay-scheduled-remote placement counters.
    sched_stats: SchedStats,
    /// Per-task `(node, slot, start)` log (`cfg.collect_placements`).
    placements: Vec<(u32, u32, SimTime)>,

    /// Block → dense slot mapping over the cached RDDs.
    arena: Arc<BlockSlots>,
    /// Hash-backed reference state (`cfg.reference_state`).
    reference: bool,

    // --- reference (hash-backed) per-block state ---
    /// Blocks whose bytes are still in flight: usable only after the time.
    pending: HashMap<(usize, BlockId), SimTime>,
    /// Prefetched blocks not yet used (for wasted-prefetch accounting).
    prefetched_unused: HashSet<(usize, BlockId)>,
    /// Blocks that have been computed at least once this run.
    materialized: HashSet<BlockId>,
    /// Per-task de-duplication of lineage walks (reference mode allocates a
    /// fresh set per task, matching the original cost profile).
    visited_ref: HashSet<RddId>,

    // --- dense (slot-indexed) per-block state ---
    /// Per node, per slot: in-flight arrival time; `SimTime::ZERO` = not
    /// pending (real entries are always strictly later than the insert
    /// time, so the sentinel is unambiguous and `max()` with it is a no-op).
    pending_d: Vec<Vec<SimTime>>,
    /// Slots computed at least once this run.
    materialized_d: SlotSet,
    /// Per node: prefetched slots not yet used.
    prefetched_d: Vec<SlotSet>,
    /// Per node: slots that are materialized, homed on this node, and not
    /// resident in its memory — exactly the prefetcher's candidate set,
    /// maintained incrementally at every residency/materialization
    /// transition instead of rescanned each stage.
    prefetchable: Vec<SlotSet>,
    /// Per RDD: the epoch it was last visited in (epoch-stamped `visited`
    /// set — no per-task allocation). Indexed by `rdd.index() - vis_base`;
    /// the base is 0 except in streaming mode, where the table is windowed
    /// alongside the registry.
    visited_epoch: Vec<u64>,
    /// Window base of `visited_epoch` (streaming mode; 0 otherwise).
    vis_base: usize,
    epoch: u64,
    /// Purge candidate buffer, reused across stages (and runs, via scratch).
    purge_buf: Vec<BlockId>,
    /// Struct-of-arrays task records for the running stage (speculation).
    stage_tasks: TaskTable,
    /// Prefetch candidate buffer, reused across nodes and stages (dense
    /// mode; the reference path keeps its per-stage allocation).
    missing_buf: Vec<BlockId>,
    /// Task-completion event queue for the speculation threshold: calendar
    /// by default, heap under `cfg.heap_events`/`reference_state`.
    events: EventQueue<u32>,

    /// Per-node prefetch thresholds (adaptive when configured).
    thresholds: Vec<f64>,
    /// Per-node (prefetches, wasted) seen at the last adaptation point.
    adapt_baseline: Vec<(u64, u64)>,
    now: SimTime,
    io_accum: SimDuration,
    compute_accum: SimDuration,
    tasks_run: u64,
    stage_times: Vec<(refdist_dag::StageId, SimTime, SimTime)>,
    trace: Vec<BlockId>,
    rng: SmallRng,

    // --- fault injection (`cfg.faults`) ---
    /// Per node: currently down (crashed with a pending rejoin). Tasks homed
    /// on a down node run on the cluster-wide earliest slot instead.
    down: Vec<bool>,
    /// Per node: stage id at which a downed node rejoins.
    rejoin_at: Vec<Option<u32>>,
    /// Dedicated stream for the stochastic fault draws, derived from the
    /// master seed but separate from the compute-jitter stream (`rng`) so an
    /// empty plan draws nothing and fault-free runs stay byte-identical.
    frng: SmallRng,
    fstats: FaultStats,
    aborted: Option<StageAbort>,
    /// Per node: disk blocks of *retired* applications that streaming mode
    /// already purged but the upfront path would still hold. A later crash
    /// of the node counts them into `lost_blocks` (then forgets them), so
    /// crash accounting stays byte-identical to the upfront run.
    ghost_disk: Vec<u64>,
    /// Per scripted crash: whether it already fired. Legacy runs visit each
    /// stage id exactly once so this is inert there; the serve driver replays
    /// per-application stage counters that *do* recur, and a scripted crash
    /// must still fire at most once per simulation.
    crash_fired: Vec<bool>,
    /// Application index stamped onto [`StageAbort`]s. Always 0 for the
    /// single-app engine; the serve driver sets it to the running app.
    pub(crate) current_app: u32,

    // --- wall-clock faults (cluster-level; never swapped per-app) ---
    /// High-water mark of every stage-start clock observed so far. The
    /// per-app `now` is *not* monotone across a serve stream (FIFO runs an
    /// early arrival to completion before a later-arriving app starts at its
    /// earlier clock), so wall-clock events fire against this monotone mark
    /// instead. Maintained only when timed crashes or churn are configured.
    cluster_now: u64,
    /// Per scripted timed crash: whether it already fired.
    timed_fired: Vec<bool>,
    /// Per node: wall-clock instant at which a timed-crash downtime expires.
    rejoin_at_time: Vec<Option<u64>>,
    /// Dedicated churn stream — a third salt of the master seed, so churn
    /// timing is independent of jitter, fault draws, and arrivals, and zero
    /// draws happen when churn is off.
    churn_rng: Option<SmallRng>,
    /// Per node: wall-clock instant of the next churn transition.
    churn_next: Vec<u64>,
    /// Per node: whether the next churn transition is a repair (the node's
    /// current churn interval is a down interval) rather than a failure.
    churn_repair: Vec<bool>,
    /// Degraded-admission mode for the app currently swapped in: when set,
    /// nothing is inserted into the memory cache and no prefetch runs — the
    /// submission executes, it just cannot cache. Serve-driver controlled;
    /// always false elsewhere.
    pub(crate) cache_bypass: bool,
}

/// Slot free time marking an unavailable (down) node's cores: later than any
/// reachable simulated time, so ordered scans and the slot index never pick
/// them.
const NODE_DOWN: SimTime = SimTime(u64::MAX);

/// The fault-draw stream for `seed`: a splitmix of the master seed,
/// decorrelated from the jitter stream but fully determined by `seed`.
/// Shared between the engine and [`AppState`] so a serve app's swapped-in
/// streams match what a standalone run of the same seed would use.
fn fault_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64((seed ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9))
}

/// The churn stream for `seed`: yet another salt of the master seed
/// (distinct from the fault-draw and arrival salts), so the membership
/// timeline is a function of the seed alone — independent of which apps run,
/// their jitter, and their per-app fault draws.
fn churn_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64((seed ^ 0x6A09_E667_F3BC_C909).wrapping_mul(0x94D0_49BB_1331_11EB))
}

/// One exponentially distributed interval with the given mean, at least 1 µs
/// so successive churn transitions always advance the clock.
fn exp_gap(rng: &mut SmallRng, mean_us: u64) -> u64 {
    let u: f64 = rng.random();
    let gap = -(1.0 - u).ln() * mean_us as f64;
    (gap as u64).max(1)
}

/// The per-application slice of engine state. The serve driver keeps one per
/// submission and [`Engine::swap_app`]s it in around each stage, so one
/// engine (shared cluster, stores, master, scheduler) can interleave many
/// applications while each keeps its own clock, RNG streams, accumulators,
/// and fault/abort accounting.
pub(crate) struct AppState {
    pub(crate) now: SimTime,
    rng: SmallRng,
    frng: SmallRng,
    pub(crate) io_accum: SimDuration,
    pub(crate) compute_accum: SimDuration,
    pub(crate) tasks_run: u64,
    pub(crate) stage_times: Vec<(refdist_dag::StageId, SimTime, SimTime)>,
    pub(crate) trace: Vec<BlockId>,
    pub(crate) placements: Vec<(u32, u32, SimTime)>,
    pub(crate) sched_stats: SchedStats,
    pub(crate) fstats: FaultStats,
    pub(crate) aborted: Option<StageAbort>,
}

impl AppState {
    /// Fresh per-app state whose clock starts at `arrival` and whose RNG
    /// streams are seeded exactly as a standalone engine run with `seed`
    /// would seed them.
    pub(crate) fn fresh(seed: u64, arrival: SimTime) -> AppState {
        AppState {
            now: arrival,
            rng: SmallRng::seed_from_u64(seed),
            frng: fault_rng(seed),
            io_accum: SimDuration::ZERO,
            compute_accum: SimDuration::ZERO,
            tasks_run: 0,
            stage_times: Vec::new(),
            trace: Vec::new(),
            placements: Vec::new(),
            sched_stats: SchedStats::default(),
            fstats: FaultStats::default(),
            aborted: None,
        }
    }

    /// State for an app-level retry: fresh clock and RNG streams (seeded
    /// exactly as a standalone run of `seed` would be), with the failed
    /// attempts' accumulators, logs, and fault counters carried over so the
    /// submission's final report covers every attempt it consumed.
    pub(crate) fn retry_from(prev: AppState, seed: u64, arrival: SimTime) -> AppState {
        AppState {
            now: arrival,
            rng: SmallRng::seed_from_u64(seed),
            frng: fault_rng(seed),
            aborted: None,
            ..prev
        }
    }
}

impl<'a> Engine<'a> {
    pub(crate) fn new(sim: &'a Simulation<'_>, s: EngineScratch) -> Self {
        Self::build(
            SpecSource::Whole(sim.spec),
            Some(sim.plan),
            Some(&sim.profiler),
            &sim.cfg,
            Arc::clone(&sim.arena),
            sim.spec.rdds.len(),
            s,
        )
    }

    /// A streaming engine: starts with no resolvable RDDs and an empty slot
    /// arena snapshot; the serve driver grows both one application at a time
    /// via [`Engine::admit_app`] and shrinks them via [`Engine::retire_app`].
    pub(crate) fn new_streaming(
        cfg: &'a SimConfig,
        arena: Arc<BlockSlots>,
        s: EngineScratch,
    ) -> Self {
        Self::build(
            SpecSource::Registry(SpecRegistry::default()),
            None,
            None,
            cfg,
            arena,
            0,
            s,
        )
    }

    fn build(
        source: SpecSource<'a>,
        plan: Option<&'a AppPlan>,
        profiler: Option<&'a AppProfiler>,
        cfg: &'a SimConfig,
        arena: Arc<BlockSlots>,
        nrdds: usize,
        mut s: EngineScratch,
    ) -> Self {
        let n = cfg.cluster.nodes as usize;
        let reference = cfg.reference_state;
        let nslots = if reference { 0 } else { arena.len() };
        // Shape the recycled scratch buffers into exactly the state fresh
        // allocations would have — run_with_scratch feeds a previous run's
        // buffers back in, possibly from a different cluster/workload size.
        reset_rows(
            &mut s.slots,
            n,
            cfg.cluster.cores_per_node as usize,
            SimTime::ZERO,
        );
        reset_rows(&mut s.pending_d, n, nslots, SimTime::ZERO);
        s.materialized_d.reset(nslots);
        reset_sets(&mut s.prefetched_d, n, nslots);
        reset_sets(&mut s.prefetchable, n, nslots);
        s.visited_epoch.clear();
        if !reference {
            s.visited_epoch.resize(nrdds, 0);
        }
        s.purge_buf.clear();
        s.stage_tasks.clear();
        s.missing_buf.clear();
        if s.events.is_heap() == cfg.use_heap_events() {
            s.events.clear();
        } else {
            s.events = EventQueue::with_heap(cfg.use_heap_events());
        }
        let sched = (!reference && !cfg.linear_sched).then(|| {
            SlotIndex::new(
                &s.slots,
                cfg.delay_scheduling_us.is_some() || cfg.faults.needs_global_slots(),
            )
        });
        // Churn: draw every node's initial time-to-failure up front, in node
        // order, so the draw sequence is fixed by the seed alone.
        let churn_on = cfg.faults.churn.is_some();
        let mut churn_rng = cfg.faults.churn.map(|_| churn_rng(cfg.seed));
        let churn_next = match (&cfg.faults.churn, &mut churn_rng) {
            (Some(ch), Some(rng)) => (0..n).map(|_| exp_gap(rng, ch.mtbf_us)).collect(),
            _ => Vec::new(),
        };
        Engine {
            source,
            plan,
            profiler,
            cfg,
            nodes: n,
            managers: (0..n)
                .map(|i| {
                    let node = NodeId(i as u32);
                    if reference {
                        BlockManager::new(node, cfg.cluster.cache_bytes)
                    } else {
                        BlockManager::with_slots(node, cfg.cluster.cache_bytes, Arc::clone(&arena))
                    }
                })
                .collect(),
            master: if reference {
                BlockMaster::new()
            } else {
                BlockMaster::with_slots(Arc::clone(&arena))
            },
            disk: (0..n)
                .map(|_| FifoResource::new(cfg.cluster.disk_bw))
                .collect(),
            net: (0..n)
                .map(|_| FifoResource::new(cfg.cluster.net_bw))
                .collect(),
            slots: s.slots,
            sched,
            sched_stats: SchedStats::default(),
            placements: Vec::new(),
            reference,
            pending: HashMap::new(),
            prefetched_unused: HashSet::new(),
            materialized: HashSet::new(),
            visited_ref: HashSet::new(),
            pending_d: s.pending_d,
            materialized_d: s.materialized_d,
            prefetched_d: s.prefetched_d,
            prefetchable: s.prefetchable,
            visited_epoch: s.visited_epoch,
            vis_base: 0,
            epoch: 0,
            stage_tasks: s.stage_tasks,
            missing_buf: s.missing_buf,
            events: s.events,
            purge_buf: s.purge_buf,
            arena,
            thresholds: vec![cfg.prefetch_threshold; n],
            adapt_baseline: vec![(0, 0); n],
            now: SimTime::ZERO,
            io_accum: SimDuration::ZERO,
            compute_accum: SimDuration::ZERO,
            tasks_run: 0,
            stage_times: Vec::new(),
            trace: Vec::new(),
            rng: SmallRng::seed_from_u64(cfg.seed),
            down: vec![false; n],
            rejoin_at: vec![None; n],
            frng: fault_rng(cfg.seed),
            fstats: FaultStats::default(),
            aborted: None,
            ghost_disk: vec![0; n],
            crash_fired: vec![false; cfg.faults.crashes.len()],
            current_app: 0,
            cluster_now: 0,
            timed_fired: vec![false; cfg.faults.timed_crashes.len()],
            rejoin_at_time: vec![None; n],
            churn_rng,
            churn_next,
            churn_repair: vec![false; if churn_on { n } else { 0 }],
            cache_bypass: false,
        }
    }

    /// Swap the per-application state slice between the engine and `app`.
    /// Called in pairs by the serve driver: swap in before running one of the
    /// app's stages, swap out after. Shared cluster state (stores, master,
    /// slots, scheduler index, fault topology) stays in place.
    pub(crate) fn swap_app(&mut self, app: &mut AppState) {
        std::mem::swap(&mut self.now, &mut app.now);
        std::mem::swap(&mut self.rng, &mut app.rng);
        std::mem::swap(&mut self.frng, &mut app.frng);
        std::mem::swap(&mut self.io_accum, &mut app.io_accum);
        std::mem::swap(&mut self.compute_accum, &mut app.compute_accum);
        std::mem::swap(&mut self.tasks_run, &mut app.tasks_run);
        std::mem::swap(&mut self.stage_times, &mut app.stage_times);
        std::mem::swap(&mut self.trace, &mut app.trace);
        std::mem::swap(&mut self.placements, &mut app.placements);
        std::mem::swap(&mut self.sched_stats, &mut app.sched_stats);
        std::mem::swap(&mut self.fstats, &mut app.fstats);
        std::mem::swap(&mut self.aborted, &mut app.aborted);
    }

    /// Per-node cache-statistics snapshot. The serve driver diffs snapshots
    /// around each stage ([`CacheStats::delta`]) to attribute shared-node
    /// counters to the application whose stage just ran.
    pub(crate) fn node_stats(&self) -> Vec<CacheStats> {
        self.managers.iter().map(|m| m.stats).collect()
    }

    /// Turn on per-tenant cache quotas in every node's memory store. Must be
    /// called before any block is inserted (the stores assert emptiness).
    pub(crate) fn enable_store_tenancy(&mut self, map: &Arc<TenantMap>, quota_bytes: u64) {
        for m in &mut self.managers {
            m.memory.enable_tenancy(Arc::clone(map), quota_bytes);
        }
    }

    /// Admit one application into the streaming engine: its RDDs (shifted by
    /// `offset` into the global id space) become resolvable, and — in dense
    /// mode — every slot-indexed table grows to `snap`, the arena snapshot
    /// taken after the app's slot range was allocated. Tables grow to the
    /// arena's *capacity*, which tracks peak-active slots, not the stream
    /// length: retired ranges are recycled in place.
    pub(crate) fn admit_app(&mut self, spec: &AppSpec, offset: u32, snap: &Arc<BlockSlots>) {
        let SpecSource::Registry(reg) = &mut self.source else {
            panic!("admit_app is a streaming-engine operation");
        };
        let front = reg.admit(spec, offset);
        let len = reg.len();
        self.vis_base = reg.rdd_base;
        if self.reference {
            return;
        }
        // Keep the epoch window index-aligned with the registry window.
        if front > 0 {
            self.visited_epoch
                .splice(0..0, std::iter::repeat_n(0, front));
        }
        if self.visited_epoch.len() < len {
            self.visited_epoch.resize(len, 0);
        }
        let nslots = snap.len();
        for row in &mut self.pending_d {
            row.resize(nslots, SimTime::ZERO);
        }
        self.materialized_d.grow(nslots);
        for node in 0..self.nodes {
            self.prefetched_d[node].grow(nslots);
            self.prefetchable[node].grow(nslots);
            self.managers[node].adopt(snap);
        }
        self.master.adopt(snap);
        self.arena = Arc::clone(snap);
    }

    /// Retire one application from the streaming engine once none of its
    /// blocks are memory-resident: purge its surviving disk spills (with
    /// ghost accounting — see `ghost_disk`), zero its dense per-block state
    /// in the to-be-recycled slot range, and drop its RDDs from the registry
    /// (advancing the window when it was the oldest live app). No cache
    /// statistics are touched: the upfront path never removes these blocks,
    /// so any stat here would diverge from it.
    pub(crate) fn retire_app(&mut self, rdds: std::ops::Range<u32>, slot_base: u32, slot_len: u32) {
        for ri in rdds.clone() {
            let id = RddId(ri);
            let (cached, parts) = {
                let r = self.rdd(id);
                (r.is_cached(), r.num_partitions)
            };
            if !cached {
                continue;
            }
            for p in 0..parts {
                let b = BlockId::new(id, p);
                for node in 0..self.nodes {
                    if self.managers[node].disk.remove(b).is_some() {
                        self.master.unregister_disk(b, NodeId(node as u32));
                        self.ghost_disk[node] += 1;
                    }
                }
                if self.reference {
                    self.materialized.remove(&b);
                    for node in 0..self.nodes {
                        self.pending.remove(&(node, b));
                        self.prefetched_unused.remove(&(node, b));
                    }
                }
            }
        }
        if !self.reference && slot_len > 0 {
            self.materialized_d.clear_range(slot_base, slot_len);
            let range = slot_base as usize..(slot_base + slot_len) as usize;
            for node in 0..self.nodes {
                self.prefetched_d[node].clear_range(slot_base, slot_len);
                self.prefetchable[node].clear_range(slot_base, slot_len);
                self.pending_d[node][range.clone()].fill(SimTime::ZERO);
            }
        }
        let SpecSource::Registry(reg) = &mut self.source else {
            panic!("retire_app is a streaming-engine operation");
        };
        let drained = reg.retire(rdds);
        if !self.reference && drained > 0 {
            self.visited_epoch.drain(..drained);
        }
        self.vis_base = reg.rdd_base;
    }

    /// Forcibly evict every memory-resident block of `rdds` (an aborted
    /// attempt's range) so the range can be retired and re-admitted for an
    /// app-level retry. Removals route through `policy.on_remove` so policy
    /// bookkeeping stays consistent, but deliberately touch no cache
    /// statistics: the teardown is a driver artifact, not cache behaviour,
    /// and per-stage stat deltas have already been attributed.
    pub(crate) fn purge_app(&mut self, rdds: std::ops::Range<u32>, policy: &mut dyn CachePolicy) {
        for ri in rdds {
            let id = RddId(ri);
            let (cached, parts) = {
                let r = self.rdd(id);
                (r.is_cached(), r.num_partitions)
            };
            if !cached {
                continue;
            }
            for p in 0..parts {
                let b = BlockId::new(id, p);
                for node in 0..self.nodes {
                    if self.managers[node].memory.remove(b).is_some() {
                        self.master.unregister_memory(b, NodeId(node as u32));
                        self.clear_pending(node, b);
                        self.take_prefetched(node, b);
                        policy.on_remove(NodeId(node as u32), b);
                    }
                }
                self.sync_prefetchable(b);
            }
        }
    }

    /// Cluster-wide memory residency `(blocks, bytes)` — the serve driver's
    /// peak-footprint sample.
    pub(crate) fn resident_totals(&self) -> (u64, u64) {
        self.managers
            .iter()
            .fold((0, 0), |(n, b), m| {
                (n + m.memory.len() as u64, b + m.memory.used())
            })
    }

    /// Whether any block of the RDDs in `rdds` is memory-resident anywhere.
    /// A completed app with none left is drained and can retire.
    pub(crate) fn any_resident(&self, rdds: std::ops::Range<u32>) -> bool {
        for ri in rdds {
            let id = RddId(ri);
            let (cached, parts) = {
                let r = self.rdd(id);
                (r.is_cached(), r.num_partitions)
            };
            if !cached {
                continue;
            }
            for p in 0..parts {
                if self.master.in_memory_anywhere(BlockId::new(id, p)) {
                    return true;
                }
            }
        }
        false
    }

    /// One stochastic fault draw. Draws from the fault stream only when the
    /// probability is positive, so an empty plan draws nothing.
    fn fault_draw(&mut self, p: f64) -> bool {
        p > 0.0 && self.frng.random_bool(p.min(1.0))
    }

    /// Hand the reusable buffers back for the next run.
    fn into_scratch(self) -> EngineScratch {
        EngineScratch {
            slots: self.slots,
            pending_d: self.pending_d,
            materialized_d: self.materialized_d,
            prefetched_d: self.prefetched_d,
            prefetchable: self.prefetchable,
            visited_epoch: self.visited_epoch,
            purge_buf: self.purge_buf,
            stage_tasks: self.stage_tasks,
            missing_buf: self.missing_buf,
            events: self.events,
        }
    }

    fn home(&self, partition: u32) -> usize {
        partition as usize % self.nodes
    }

    /// Resolve RDD metadata from the active source (whole spec or the
    /// streaming registry). The returned borrow is tied to `&self`, so hot
    /// paths copy out the scalars they need rather than holding it across
    /// `&mut self` calls.
    #[inline]
    fn rdd(&self, id: RddId) -> &Rdd {
        match &self.source {
            SpecSource::Whole(s) => s.rdd(id),
            SpecSource::Registry(r) => r.rdd(id),
        }
    }

    fn block_size(&self, b: BlockId) -> u64 {
        self.rdd(b.rdd).block_size
    }

    /// Deserialization CPU cost for a block arriving from disk or network.
    fn deser_us(&self, bytes: u64) -> u64 {
        bytes * self.cfg.deser_us_per_mb / (1 << 20)
    }

    /// Dense slot of a cached-RDD block (dense mode only; every block the
    /// engine tracks belongs to a cached RDD, so the arena covers it).
    fn slot(&self, b: BlockId) -> u32 {
        self.arena
            .slot(b)
            .expect("engine-tracked blocks belong to cached RDDs")
    }

    /// Start a task's lineage walk: reset the visited set.
    fn begin_task(&mut self) {
        if self.reference {
            self.visited_ref = HashSet::new();
        } else {
            self.epoch += 1;
        }
    }

    /// Mark `rdd` visited in the current task; true on first visit.
    fn visit(&mut self, rdd: RddId) -> bool {
        if self.reference {
            self.visited_ref.insert(rdd)
        } else {
            let e = &mut self.visited_epoch[rdd.index() - self.vis_base];
            if *e == self.epoch {
                false
            } else {
                *e = self.epoch;
                true
            }
        }
    }

    /// When `b`'s bytes are still in flight to `node`: the arrival time,
    /// else `SimTime::ZERO` (callers `max()` it into their start time, and
    /// `max` with `ZERO` is the identity).
    fn pending_avail(&self, node: usize, b: BlockId) -> SimTime {
        if self.reference {
            self.pending
                .get(&(node, b))
                .copied()
                .unwrap_or(SimTime::ZERO)
        } else {
            self.pending_d[node][self.slot(b) as usize]
        }
    }

    fn set_pending(&mut self, node: usize, b: BlockId, at: SimTime) {
        if self.reference {
            self.pending.insert((node, b), at);
        } else {
            let s = self.slot(b) as usize;
            self.pending_d[node][s] = at;
        }
    }

    fn clear_pending(&mut self, node: usize, b: BlockId) {
        if self.reference {
            self.pending.remove(&(node, b));
        } else {
            let s = self.slot(b) as usize;
            self.pending_d[node][s] = SimTime::ZERO;
        }
    }

    fn is_materialized(&self, b: BlockId) -> bool {
        if self.reference {
            self.materialized.contains(&b)
        } else {
            self.materialized_d.contains(self.slot(b))
        }
    }

    fn mark_materialized(&mut self, b: BlockId) {
        if self.reference {
            self.materialized.insert(b);
        } else {
            let s = self.slot(b);
            self.materialized_d.insert(s);
            self.sync_prefetchable(b);
        }
    }

    fn mark_prefetched(&mut self, node: usize, b: BlockId) {
        if self.reference {
            self.prefetched_unused.insert((node, b));
        } else {
            let s = self.slot(b);
            self.prefetched_d[node].insert(s);
        }
    }

    /// Clear `b`'s unused-prefetch mark on `node`; true if it was set.
    fn take_prefetched(&mut self, node: usize, b: BlockId) -> bool {
        if self.reference {
            self.prefetched_unused.remove(&(node, b))
        } else {
            let s = self.slot(b);
            self.prefetched_d[node].remove(s)
        }
    }

    /// Recompute `b`'s membership in its home node's prefetchable set
    /// (materialized and not resident in the home memory). Idempotent;
    /// called at every transition that can change either input.
    fn sync_prefetchable(&mut self, b: BlockId) {
        if self.reference {
            return;
        }
        let home = self.home(b.partition);
        let s = self.slot(b);
        let on = self.materialized_d.contains(s) && !self.managers[home].memory.contains(b);
        if on {
            self.prefetchable[home].insert(s);
        } else {
            self.prefetchable[home].remove(s);
        }
    }

    fn run(&mut self, policy: &mut dyn CachePolicy) -> RunReport {
        if !self.reference {
            // Offer the arena before any other hook so policies can switch
            // their per-block state to slot-indexed tables. The reference
            // path never attaches: hash-backed policy state is part of the
            // reference implementation.
            policy.attach_slots(&self.arena);
        }
        let plan = self.plan.expect("single-app runs carry a plan");
        let profiler = self.profiler.expect("single-app runs carry a profiler");
        let mut submitted: Option<JobId> = None;
        // Shared handle: recurring mode hands out the one full profile per
        // job instead of cloning it.
        let mut visible: Arc<AppProfile> = profiler.visible_at_job_shared(JobId(0));

        for stage in &plan.stages {
            // Submit any jobs up to this stage's job.
            let next = submitted.map_or(0, |j| j.0 + 1);
            for j in next..=stage.job.0 {
                visible = profiler.visible_at_job_shared(JobId(j));
                policy.on_job_submit(JobId(j), &visible);
                submitted = Some(JobId(j));
            }

            policy.on_stage_start(stage.id, &visible);

            self.run_one_stage(stage, &visible, policy);
            if self.aborted.is_some() {
                // A task exhausted its retry budget: the driver gives up on
                // the application; later stages never run.
                break;
            }
        }

        let mut agg = CacheStats::new();
        for m in &self.managers {
            agg.merge(&m.stats);
        }
        RunReport {
            app: match &self.source {
                SpecSource::Whole(s) => s.name.clone(),
                SpecSource::Registry(_) => {
                    unreachable!("streaming serve builds its reports in the driver")
                }
            },
            policy: policy.name(),
            jct: self.now - SimTime::ZERO,
            stats: agg,
            sched: self.sched_stats,
            per_node: self.managers.iter().map(|m| m.stats).collect(),
            io_time: self.io_accum,
            compute_time: self.compute_accum,
            stage_times: std::mem::take(&mut self.stage_times),
            tasks: self.tasks_run,
            faults: self.fstats,
            app_attempts: 1,
            aborted: self.aborted,
            trace: if self.cfg.collect_trace {
                Some(std::mem::take(&mut self.trace))
            } else {
                None
            },
            placements: if self.cfg.collect_placements {
                Some(std::mem::take(&mut self.placements))
            } else {
                None
            },
        }
    }

    /// Execute one stage end to end: scripted fault events, cluster-wide
    /// purge, execution-memory reservation, the stage's tasks, then the
    /// prefetch pass and stage-clock advance. Job submission and
    /// `on_stage_start` belong to the caller — the legacy [`Engine::run`]
    /// loop and the multi-application serve driver both route through here,
    /// which is what makes single-tenant serving equivalent by construction.
    pub(crate) fn run_one_stage(
        &mut self,
        stage: &Stage,
        visible: &AppProfile,
        policy: &mut dyn CachePolicy,
    ) {
        // Wall-clock faults: advance the cluster-wide clock high-water mark
        // and fire everything due by it. Gated so fault-free runs (and runs
        // with only stage-indexed plans) pay nothing here.
        if !self.timed_fired.is_empty() || self.churn_rng.is_some() {
            self.cluster_now = self.cluster_now.max(self.now.0);
            self.process_time_events(policy);
        }

        // Scripted faults: rejoins due at this stage, then crashes.
        self.process_fault_events(stage.id.0, policy);

        self.run_purge(policy);

        // Execution memory borrows from the storage region for the
        // stage's duration, evicting cached blocks per the policy.
        let exec_bytes = (self.cfg.cluster.cache_bytes as f64
            * self.cfg.exec_mem_fraction.clamp(0.0, 1.0)) as u64;
        for node in 0..self.nodes {
            if self.down[node] {
                continue;
            }
            let used = self.managers[node].memory.used();
            if used + exec_bytes > self.cfg.cluster.cache_bytes {
                let shortfall = used + exec_bytes - self.cfg.cluster.cache_bytes;
                self.free_up(node, shortfall, policy);
            }
            self.managers[node].memory.set_reserved(exec_bytes);
        }

        let start = self.now;
        let end = self.run_stage_tasks(stage, policy);

        // The stage's execution memory is released; the freed headroom
        // is what the prefetcher fills.
        for node in 0..self.nodes {
            self.managers[node].memory.set_reserved(0);
        }
        if self.aborted.is_none() && !self.cache_bypass && policy.wants_prefetch() {
            self.run_prefetch(stage, visible, policy);
        }
        self.stage_times.push((stage.id, start, end));
        self.now = end;
    }

    /// Fire the scripted fault events due at the start of stage `stage`:
    /// first rejoins of nodes whose downtime expired, then crashes. Crashes
    /// on out-of-range nodes are ignored, as is a downtime crash that would
    /// take the last live node (the cluster must keep at least one).
    fn process_fault_events(&mut self, stage: u32, policy: &mut dyn CachePolicy) {
        for node in 0..self.nodes {
            // `<=` instead of `==`: a legacy run's stage counter hits every
            // value exactly once (identical behaviour), but the serve driver
            // interleaves per-app counters that can step past the due stage.
            if self.rejoin_at[node].is_some_and(|r| r <= stage) {
                self.rejoin_node(node, policy);
            }
        }
        for i in 0..self.cfg.faults.crashes.len() {
            let c = self.cfg.faults.crashes[i];
            let node = c.node as usize;
            if self.crash_fired[i] || c.at_stage != stage {
                continue;
            }
            // A scripted crash is consumed at its first due stage whether or
            // not it can fire — under serving, another app's stage counter
            // revisiting the same value must not re-crash the node.
            self.crash_fired[i] = true;
            if node >= self.nodes || self.down[node] {
                continue;
            }
            if let Some(downtime) = c.rejoin_after {
                if self.live_nodes() <= 1 {
                    continue;
                }
                self.take_node_down(node, policy);
                self.rejoin_at[node] = Some(stage.saturating_add(downtime.max(1)));
            } else {
                // Legacy shape: storage wiped, the replacement executor is
                // up immediately and the MRDmanager re-issues the table
                // replica on the next interaction (§4.4).
                self.fail_node(node, policy);
            }
        }
    }

    /// Fire the wall-clock fault events due by the cluster clock high-water
    /// mark: first timed rejoins whose downtime expired, then scripted timed
    /// crashes, then the churn process's transitions in strict `(time, node)`
    /// order — so the churn RNG's draw sequence, and with it the whole
    /// membership timeline, is a function of the seed alone.
    fn process_time_events(&mut self, policy: &mut dyn CachePolicy) {
        let tnow = self.cluster_now;
        for node in 0..self.nodes {
            if self.rejoin_at_time[node].is_some_and(|r| r <= tnow) {
                self.rejoin_at_time[node] = None;
                if self.down[node] {
                    self.rejoin_node(node, policy);
                }
            }
        }
        for i in 0..self.cfg.faults.timed_crashes.len() {
            let c = self.cfg.faults.timed_crashes[i];
            let node = c.node as usize;
            if self.timed_fired[i] || c.at_time_us > tnow {
                continue;
            }
            // Consumed at its first due stage boundary whether or not it can
            // fire, exactly like the stage-indexed shape.
            self.timed_fired[i] = true;
            if node >= self.nodes || self.down[node] {
                continue;
            }
            if let Some(downtime) = c.rejoin_after_us {
                if self.live_nodes() <= 1 {
                    continue;
                }
                self.take_node_down(node, policy);
                self.rejoin_at_time[node] = Some(c.at_time_us.saturating_add(downtime.max(1)));
            } else {
                self.fail_node(node, policy);
            }
        }
        let Some(ch) = self.cfg.faults.churn else {
            return;
        };
        loop {
            // Earliest due transition, ties broken by node index.
            let mut due: Option<(u64, usize)> = None;
            for node in 0..self.nodes {
                let t = self.churn_next[node];
                if t <= tnow && due.is_none_or(|(bt, bn)| (t, node) < (bt, bn)) {
                    due = Some((t, node));
                }
            }
            let Some((t, node)) = due else { break };
            let rng = self.churn_rng.as_mut().expect("churn rng exists when churn is on");
            if self.churn_repair[node] {
                // Repair: the drawn down interval is over; schedule the next
                // failure and rejoin — unless a scripted event owns the
                // node's downtime (its own rejoin will handle it).
                let gap = exp_gap(rng, ch.mtbf_us);
                self.churn_next[node] = t.saturating_add(gap);
                self.churn_repair[node] = false;
                if self.down[node]
                    && self.rejoin_at[node].is_none()
                    && self.rejoin_at_time[node].is_none()
                {
                    self.rejoin_node(node, policy);
                }
            } else {
                // Failure: the repair time is drawn unconditionally (fixed
                // draw order), but the node only goes down if it is up and
                // not the last one live.
                let gap = exp_gap(rng, ch.mttr_us);
                self.churn_next[node] = t.saturating_add(gap);
                self.churn_repair[node] = true;
                if !self.down[node] && self.live_nodes() > 1 {
                    self.take_node_down(node, policy);
                }
            }
        }
    }

    /// Number of nodes currently up.
    fn live_nodes(&self) -> usize {
        self.down.iter().filter(|d| !**d).count()
    }

    /// Take `node` down: storage wiped, slots parked at `NODE_DOWN` so no
    /// ordered scan or slot index can choose them until the rejoin.
    fn take_node_down(&mut self, node: usize, policy: &mut dyn CachePolicy) {
        self.fail_node(node, policy);
        self.down[node] = true;
        for slot in 0..self.slots[node].len() {
            let old = std::mem::replace(&mut self.slots[node][slot], NODE_DOWN);
            if let Some(idx) = &mut self.sched {
                idx.commit(node, slot, old, NODE_DOWN);
            }
        }
    }

    /// A downed node's replacement executor registers: slots become free
    /// from now, caches are cold, and the policy is told so it can re-issue
    /// per-node state (for MRD, the distance-table replica — §4.4).
    fn rejoin_node(&mut self, node: usize, policy: &mut dyn CachePolicy) {
        self.down[node] = false;
        self.rejoin_at[node] = None;
        for slot in 0..self.slots[node].len() {
            let old = std::mem::replace(&mut self.slots[node][slot], self.now);
            if let Some(idx) = &mut self.sched {
                idx.commit(node, slot, old, self.now);
            }
        }
        policy.on_node_join(NodeId(node as u32));
        self.fstats.rejoins += 1;
    }

    /// Wipe one node's memory and disk (executor loss). Lost cached blocks
    /// will be recomputed or re-read from surviving copies on access.
    fn fail_node(&mut self, node: usize, policy: &mut dyn CachePolicy) {
        let lost_mem = self.managers[node].memory.drain();
        for (b, _) in &lost_mem {
            self.clear_pending(node, *b);
            self.take_prefetched(node, *b);
            policy.on_remove(NodeId(node as u32), *b);
        }
        let lost_disk = self.managers[node].disk.drain();
        // One sweep de-registers every copy the node held (memory and disk).
        self.master.unregister_node(NodeId(node as u32));
        for (b, _) in &lost_mem {
            self.sync_prefetchable(*b);
        }
        // Ghosts: retired apps' disk blocks that streaming mode has already
        // purged, but which this crash would have destroyed on the upfront
        // path — count them once so the loss totals match byte for byte.
        self.managers[node].stats.lost_blocks +=
            (lost_mem.len() + lost_disk.len()) as u64 + self.ghost_disk[node];
        self.ghost_disk[node] = 0;
        self.fstats.crashes += 1;
    }

    /// Adapt a node's prefetch threshold from its recent prefetch economy
    /// (the paper's future-work item): mostly-wasted prefetches raise the
    /// threshold (require more free memory before forcing), an all-hit
    /// record lowers it.
    fn adapt_threshold(&mut self, node: usize) {
        let s = &self.managers[node].stats;
        let (base_pf, base_waste) = self.adapt_baseline[node];
        let pf = s.prefetches - base_pf;
        let waste = s.wasted_prefetches - base_waste;
        if pf == 0 {
            return;
        }
        self.adapt_baseline[node] = (s.prefetches, s.wasted_prefetches);
        let t = &mut self.thresholds[node];
        if waste * 5 >= pf {
            // More than 20% of recent prefetches were wasted: require more
            // free headroom before force-prefetching.
            *t = (*t + 0.05).min(0.6);
        } else if waste == 0 {
            *t = (*t - 0.02).max(0.05);
        }
    }

    /// Cluster-wide proactive purge (Algorithm 1, eviction phase part 1).
    fn run_purge(&mut self, policy: &mut dyn CachePolicy) {
        if !policy.wants_purge() {
            // Purge-free policies (LRU, FIFO, Random, MemTune): their
            // `purge_candidates` is an empty no-op, so skip the cluster-wide
            // residency collection entirely.
            return;
        }
        self.purge_buf.clear();
        if self.reference {
            // Reference path: collect every node's residents and
            // canonicalize (the original per-stage cost profile).
            let buf = &mut self.purge_buf;
            buf.extend(
                self.managers
                    .iter()
                    .flat_map(|m| m.memory.iter().map(|(b, _)| b)),
            );
            buf.sort_unstable();
            buf.dedup();
        } else {
            // Dense path: the master registry mirrors every node's memory
            // residency and its dense table iterates ascending by `BlockId`,
            // so it already *is* the sorted, deduped candidate list — no
            // per-stage collect + sort over all nodes.
            let master = &self.master;
            self.purge_buf.extend(master.memory_resident());
        }
        if self.purge_buf.is_empty() {
            // Still let the policy refresh its purge bookkeeping.
            let _ = policy.purge_candidates(&[]);
            return;
        }
        for b in policy.purge_candidates(&self.purge_buf) {
            for node in 0..self.nodes {
                let m = &mut self.managers[node];
                let had_mem = m.memory.contains(b) && !m.memory.is_pinned(b);
                let had_disk = m.disk.contains(b);
                if had_mem || had_disk {
                    m.purge(b);
                    if had_mem {
                        self.master.unregister_memory(b, NodeId(node as u32));
                        self.clear_pending(node, b);
                        if self.take_prefetched(node, b) {
                            self.managers[node].stats.wasted_prefetches += 1;
                        }
                        self.sync_prefetchable(b);
                        policy.on_remove(NodeId(node as u32), b);
                    }
                    if had_disk {
                        self.master.unregister_disk(b, NodeId(node as u32));
                    }
                }
            }
        }
    }

    /// Cluster-wide earliest free slot `(node, slot, free_time)`: O(log n)
    /// from the index, or the reference flat scan. Down nodes carry the
    /// `NODE_DOWN` free time, so neither path ever picks one while any live
    /// slot exists.
    fn earliest_global_slot(&self) -> (usize, usize, SimTime) {
        match &self.sched {
            Some(idx) => idx.earliest_global(),
            None => (0..self.nodes)
                .flat_map(|n| {
                    self.slots[n]
                        .iter()
                        .enumerate()
                        .map(move |(i, &t)| (n, i, t))
                })
                .min_by_key(|&(n, i, t)| (t, n, i))
                .expect("cluster has slots"),
        }
    }

    /// Run all tasks of a stage; returns the stage end time.
    fn run_stage_tasks(&mut self, stage: &Stage, policy: &mut dyn CachePolicy) -> SimTime {
        let stage_start = self.now;
        let mut stage_end = stage_start;
        let speculating = self.cfg.faults.speculation_quantile > 0.0;
        // Task records are kept only when speculation needs the stage's
        // completion profile (the placement is needed to free a loser
        // attempt's slot when its copy wins). Completion times also feed the
        // event queue, whose k-th pop is the speculation threshold.
        self.stage_tasks.clear();
        if speculating {
            self.events.clear();
            self.events.reserve(stage.num_tasks as usize);
        }
        for p in 0..stage.num_tasks {
            let home = self.home(p);
            // Earliest-free slot on the home node: O(log cores) from the
            // index, or the reference linear scan. Both break free-time ties
            // on the lowest slot index. A down home node has no slots to
            // offer; its tasks run on the cluster-wide earliest slot.
            let (mut node, mut slot_idx, mut slot_free) = if self.down[home] {
                self.earliest_global_slot()
            } else {
                match &self.sched {
                    Some(idx) => {
                        let (i, t) = idx.earliest_on(home);
                        (home, i, t)
                    }
                    None => {
                        let (i, &t) = self.slots[home]
                            .iter()
                            .enumerate()
                            .min_by_key(|(i, &t)| (t, *i))
                            .expect("nodes have at least one core");
                        (home, i, t)
                    }
                }
            };
            // Delay scheduling: if enabled and the home node keeps the task
            // waiting too long past the globally earliest slot, run it
            // remotely and pay remote reads instead.
            if let Some(delay) = self.cfg.delay_scheduling_us {
                if node == home {
                    let (gn, gi, gt) = self.earliest_global_slot();
                    if slot_free.max(stage_start).micros() > gt.max(stage_start).micros() + delay {
                        (node, slot_idx, slot_free) = (gn, gi, gt);
                    }
                }
            }
            let start = slot_free.max(stage_start);
            if node == home {
                self.sched_stats.home_placements += 1;
            } else {
                self.sched_stats.remote_placements += 1;
            }
            if self.cfg.collect_placements {
                self.placements.push((node as u32, slot_idx as u32, start));
            }

            // Attempt loop: each failed attempt occupies the slot for its
            // full duration, then retries after a capped exponential backoff
            // until it succeeds or the retry budget is spent (stage abort).
            let task_fail_p = self.cfg.faults.task_failure_p;
            let max_attempts = self.cfg.faults.max_task_attempts.max(1);
            let mut attempt_start = start;
            let mut attempts = 0u32;
            let task_end = loop {
                attempts += 1;
                let end = self.run_attempt(stage, p, node, attempt_start, policy);
                if !self.fault_draw(task_fail_p) {
                    break end;
                }
                self.fstats.task_failures += 1;
                if attempts >= max_attempts {
                    self.aborted = Some(StageAbort {
                        stage: stage.id,
                        app: self.current_app,
                        task: p,
                        attempts,
                    });
                    self.fstats.aborts += 1;
                    break end;
                }
                let backoff = self.cfg.faults.backoff_us(attempts);
                self.fstats.retries += 1;
                self.fstats.backoff_us += backoff;
                attempt_start = end + SimDuration::from_micros(backoff);
            };

            let old = std::mem::replace(&mut self.slots[node][slot_idx], task_end);
            if let Some(idx) = &mut self.sched {
                idx.commit(node, slot_idx, old, task_end);
            }
            self.tasks_run += 1;
            stage_end = stage_end.max(task_end);
            if self.aborted.is_some() {
                return stage_end;
            }
            if speculating {
                self.stage_tasks
                    .push(task_end, node as u32, slot_idx as u32, attempt_start, attempts);
                self.events.schedule(task_end, p);
            }
        }
        if speculating && !self.stage_tasks.is_empty() {
            stage_end = self.run_speculation(stage, policy);
        }
        stage_end
    }

    /// One task attempt on `node` starting at `start`: input acquisition,
    /// jittered (and possibly slowed-down) compute, shuffle write. Returns
    /// the attempt's finish time. Placement counters, the slot table, and
    /// `tasks_run` belong to the caller — retries and speculative copies
    /// share one placement.
    fn run_attempt(
        &mut self,
        stage: &Stage,
        p: u32,
        node: usize,
        start: SimTime,
        policy: &mut dyn CachePolicy,
    ) -> SimTime {
        self.begin_task();
        let (io_done, compute_us) = self.acquire(stage.final_rdd, p, node, start, policy);

        let mut jitter = if self.cfg.compute_jitter > 0.0 {
            1.0 + self
                .rng
                .random_range(-self.cfg.compute_jitter..=self.cfg.compute_jitter)
        } else {
            1.0
        };
        for s in &self.cfg.faults.slowdowns {
            if s.node as usize == node && s.active_at(stage.id.0) {
                jitter *= s.factor.max(1.0);
            }
        }
        // Wall-clock slowdown windows are matched against the attempt's own
        // start instant (the app clock): transient noise hits whatever runs
        // while the window is open.
        for s in &self.cfg.faults.timed_slowdowns {
            if s.node as usize == node && s.active_at_time(start.0) {
                jitter *= s.factor.max(1.0);
            }
        }
        let compute = SimDuration::from_secs_f64(compute_us as f64 * jitter / 1e6);
        let mut task_end = io_done + compute;

        if let StageKind::ShuffleMap { .. } = stage.kind {
            // Write this task's map output to local disk.
            let out = self.rdd(stage.final_rdd).block_size;
            task_end = self.disk[node].request(task_end, out);
        }
        self.io_accum += io_done - start;
        self.compute_accum += compute;
        task_end
    }

    /// Speculative execution over one finished stage schedule: once the
    /// fastest `speculation_quantile` fraction of tasks has completed, each
    /// still-running straggler gets a copy on the cluster-wide earliest free
    /// slot; the first finisher defines the task's completion and the losing
    /// attempt is killed — when the loser was the last occupant of its slot,
    /// that slot is released at the winner's finish, so a straggler node
    /// stops dragging later stages (Spark's `spark.speculation` semantics).
    /// Returns the corrected stage end.
    fn run_speculation(&mut self, stage: &Stage, policy: &mut dyn CachePolicy) -> SimTime {
        let q = self.cfg.faults.speculation_quantile.clamp(0.0, 1.0);
        // The threshold is the k-th smallest completion: k pops from the
        // event queue (which `run_stage_tasks` fed one completion event per
        // task) instead of cloning and fully sorting the end times. Ties
        // pop FIFO, but equal times yield the same threshold either way.
        let tasks = std::mem::take(&mut self.stage_tasks);
        let n = tasks.len();
        debug_assert_eq!(tasks.attempts.len(), n, "task columns stay parallel");
        let k = ((n as f64) * q).ceil() as usize;
        let mut threshold = SimTime::ZERO;
        for _ in 0..k.clamp(1, n) {
            threshold = self.events.pop().expect("one event per task").0;
        }
        self.events.clear();
        let mut stage_end = SimTime::ZERO;
        // Stragglers are visited in task (partition) order — not completion
        // order — so the speculative copies' RNG draws replay identically
        // to the reference implementation.
        for i in 0..n {
            let (end, p) = (tasks.finish[i], i as u32);
            let (onode, oslot, ostart) = (
                tasks.node[i] as usize,
                tasks.slot[i] as usize,
                tasks.start[i],
            );
            if end <= threshold {
                stage_end = stage_end.max(end);
                continue;
            }
            let (node, slot_idx, free) = self.earliest_global_slot();
            if free == NODE_DOWN {
                // No live slot to speculate on; keep the original attempt.
                stage_end = stage_end.max(end);
                continue;
            }
            self.fstats.spec_launched += 1;
            let copy_start = free.max(threshold);
            let copy_end = self.run_attempt(stage, p, node, copy_start, policy);
            let old = std::mem::replace(&mut self.slots[node][slot_idx], copy_end);
            if let Some(idx) = &mut self.sched {
                idx.commit(node, slot_idx, old, copy_end);
            }
            if copy_end < end {
                self.fstats.spec_wins += 1;
                stage_end = stage_end.max(copy_end);
                // Kill the original attempt. If it was the last occupant of
                // its slot, the slot frees at the kill (never before the
                // attempt began — a kill cannot rewind the schedule).
                if self.slots[onode][oslot] == end {
                    let kill = copy_end.max(ostart);
                    let prev = std::mem::replace(&mut self.slots[onode][oslot], kill);
                    if let Some(idx) = &mut self.sched {
                        idx.commit(onode, oslot, prev, kill);
                    }
                }
            } else {
                self.fstats.spec_losses += 1;
                stage_end = stage_end.max(end);
            }
        }
        // Hand the columns back so the next stage reuses their allocations.
        self.stage_tasks = tasks;
        stage_end
    }

    /// Acquire the data needed to produce `(rdd, part)` on `node` starting at
    /// `at`. Returns `(io_ready_time, compute_us)`.
    fn acquire(
        &mut self,
        rdd: RddId,
        part: u32,
        node: usize,
        at: SimTime,
        policy: &mut dyn CachePolicy,
    ) -> (SimTime, u64) {
        if !self.visit(rdd) {
            return (at, 0);
        }
        // Copy the two scalars out: the metadata borrow must not be held
        // across the `&mut self` recursion (the streaming registry is owned
        // by the engine, unlike a whole-spec `&'a` reference).
        let (cached, rdd_compute_us) = {
            let r = self.rdd(rdd);
            (r.is_cached(), r.compute_us)
        };
        let b = BlockId::new(rdd, part);
        if cached && self.is_materialized(b) {
            return self.access(b, node, at, policy);
        }
        // Compute path (also the creation path for cached RDDs).
        let (io, mut compute_us) = self.compute_inputs(rdd, part, node, at, policy);
        compute_us += rdd_compute_us;
        if cached {
            self.mark_materialized(b);
            if self.cfg.collect_trace {
                self.trace.push(b);
            }
            self.try_insert(node, b, io, false, policy);
        }
        (io, compute_us)
    }

    /// Pay for the inputs of `(rdd, part)`: recurse into narrow parents, read
    /// shuffle outputs, read external input.
    fn compute_inputs(
        &mut self,
        rdd: RddId,
        part: u32,
        node: usize,
        at: SimTime,
        policy: &mut dyn CachePolicy,
    ) -> (SimTime, u64) {
        // Dependencies are `Copy` and re-fetched by index each iteration:
        // the metadata borrow cannot be held across the recursion when the
        // streaming registry (owned by the engine) is the source, and the
        // per-iteration O(1) re-lookup is noise next to the resource queues.
        let (ndeps, num_partitions, is_input, input_block) = {
            let r = self.rdd(rdd);
            (r.deps.len(), r.num_partitions, r.is_input(), r.block_size)
        };
        let mut io = at;
        let mut compute_us = 0u64;
        for di in 0..ndeps {
            match self.rdd(rdd).deps[di] {
                refdist_dag::Dependency::Narrow(p) => {
                    let (i, c) = self.acquire(p, part, node, at, policy);
                    io = io.max(i);
                    compute_us += c;
                }
                refdist_dag::Dependency::Shuffle(p) => {
                    // Shuffle files persist on the map-side disks; the read
                    // crosses the network (all-to-all).
                    let bytes = self.rdd(p).total_size() / num_partitions.max(1) as u64;
                    let done = self.net[node].request(at, bytes);
                    io = io.max(done);
                }
            }
        }
        if is_input {
            let done = self.disk[node].request(at, input_block);
            io = io.max(done);
        }
        (io, compute_us)
    }

    /// Access an already-materialized cached block.
    fn access(
        &mut self,
        b: BlockId,
        node: usize,
        at: SimTime,
        policy: &mut dyn CachePolicy,
    ) -> (SimTime, u64) {
        if self.cfg.collect_trace {
            self.trace.push(b);
        }
        let size = self.block_size(b);
        // Local memory hit.
        if self.managers[node].memory.contains(b) {
            let avail = self.pending_avail(node, b);
            self.managers[node].stats.hits += 1;
            if self.take_prefetched(node, b) {
                self.managers[node].stats.prefetch_hits += 1;
            }
            policy.on_access(NodeId(node as u32), b);
            return (at.max(avail), 0);
        }
        match self.master.best_source(b, NodeId(node as u32)) {
            Some((src, true)) => {
                // Remote memory: pay the reader's NIC; no local copy is kept
                // (Spark reads remote blocks without replicating them).
                let src_i = src.index();
                let avail = self.pending_avail(src_i, b);
                let done = self.net[node].request(at.max(avail), size);
                if self.fault_draw(self.cfg.faults.fetch_failure_p) {
                    // The fetch died mid-flight: the attempted transfer time
                    // is sunk, then the reader recovers through lineage.
                    self.fstats.fetch_failures += 1;
                    return self.recompute_fallback(b, node, done, policy);
                }
                self.managers[node].stats.hits += 1;
                self.managers[node].stats.remote_hits += 1;
                if self.take_prefetched(src_i, b) {
                    self.managers[src_i].stats.prefetch_hits += 1;
                }
                policy.on_access(src, b);
                (done, self.deser_us(size))
            }
            Some((src, false)) => {
                // On disk (local spill or remote): read it and promote back
                // into the reader's memory.
                let src_i = src.index();
                let mut done = self.disk[src_i].request(at, size);
                if src_i != node {
                    done = self.net[node].request(done, size);
                }
                if self.fault_draw(self.cfg.faults.disk_failure_p) {
                    self.fstats.disk_failures += 1;
                    return self.recompute_fallback(b, node, done, policy);
                }
                self.managers[node].stats.misses += 1;
                self.managers[node].stats.disk_hits += 1;
                self.try_insert(node, b, done, false, policy);
                (done, self.deser_us(size))
            }
            None => {
                // Evicted and dropped (MEMORY_ONLY): recompute from lineage.
                self.managers[node].stats.misses += 1;
                self.managers[node].stats.recomputes += 1;
                let (io, mut compute_us) =
                    self.compute_inputs(b.rdd, b.partition, node, at, policy);
                compute_us += self.rdd(b.rdd).compute_us;
                self.try_insert(node, b, io, false, policy);
                (io, compute_us)
            }
        }
    }

    /// Recovery path for a failed fetch or disk read: the access becomes a
    /// lineage recomputation starting when the failure was detected (`at`),
    /// exactly like a MEMORY_ONLY miss (paper §4.4).
    fn recompute_fallback(
        &mut self,
        b: BlockId,
        node: usize,
        at: SimTime,
        policy: &mut dyn CachePolicy,
    ) -> (SimTime, u64) {
        self.managers[node].stats.misses += 1;
        self.managers[node].stats.recomputes += 1;
        self.fstats.fault_recomputes += 1;
        let (io, mut compute_us) = self.compute_inputs(b.rdd, b.partition, node, at, policy);
        compute_us += self.rdd(b.rdd).compute_us;
        self.try_insert(node, b, io, false, policy);
        (io, compute_us)
    }

    /// Insert `b` into `node`'s memory, evicting per the policy as needed.
    /// Returns whether the block ended up cached.
    fn try_insert(
        &mut self,
        node: usize,
        b: BlockId,
        available_at: SimTime,
        prefetched: bool,
        policy: &mut dyn CachePolicy,
    ) -> bool {
        // Degraded admission: the submission runs but caches nothing — every
        // insert (demand, promote, prefetch) is declined up front, exactly
        // like a block that never fits.
        if self.cache_bypass {
            return false;
        }
        let size = self.block_size(b);
        loop {
            match self.managers[node].put_memory(b, size) {
                Ok(()) => {
                    self.master.register_memory(b, NodeId(node as u32));
                    if available_at > self.now {
                        self.set_pending(node, b, available_at);
                    } else {
                        self.clear_pending(node, b);
                    }
                    if prefetched {
                        self.mark_prefetched(node, b);
                    }
                    self.sync_prefetchable(b);
                    policy.on_insert(NodeId(node as u32), b);
                    return true;
                }
                Err(InsertError::TooLarge) => return false,
                Err(InsertError::NeedsEviction { shortfall }) => {
                    if !self.free_up(node, shortfall, policy) {
                        return false;
                    }
                }
            }
        }
    }

    /// Free at least `shortfall` bytes on `node` by evicting a policy-chosen
    /// victim batch. The candidate set is the store's maintained sorted
    /// evictable map — no per-pressure-event collect + sort — and indexed
    /// policies pop the whole batch in O(log n) per victim. Returns whether
    /// the shortfall was covered; false aborts the pending insert, exactly
    /// like the old one-victim-at-a-time protocol did when the policy ran
    /// out of candidates.
    fn free_up(&mut self, node: usize, shortfall: u64, policy: &mut dyn CachePolicy) -> bool {
        let victims = policy.select_victims(
            NodeId(node as u32),
            shortfall,
            self.managers[node].memory.evictable_set(),
        );
        let mut freed = 0u64;
        for victim in victims {
            let spill = self.rdd(victim.rdd).storage.spills_to_disk();
            let Some(size) = self.managers[node].evict(victim, spill) else {
                // Policy chose something not evictable (not resident, or
                // pinned): its bookkeeping diverged from the store. Count it
                // and abort the insert rather than loop forever — the
                // counter surfaces in the run report, so the failure is
                // visible in release builds too.
                self.managers[node].stats.bad_victims += 1;
                return false;
            };
            self.master.unregister_memory(victim, NodeId(node as u32));
            if spill {
                self.master.register_disk(victim, NodeId(node as u32));
            }
            self.clear_pending(node, victim);
            if self.take_prefetched(node, victim) {
                self.managers[node].stats.wasted_prefetches += 1;
            }
            self.sync_prefetchable(victim);
            policy.on_remove(NodeId(node as u32), victim);
            freed += size;
        }
        freed >= shortfall
    }

    /// Background prefetching for the stages ahead (Algorithm 1, prefetching
    /// phase). Runs after the stage's tasks so the transfers queue behind
    /// demand I/O.
    fn run_prefetch(&mut self, stage: &Stage, visible: &AppProfile, policy: &mut dyn CachePolicy) {
        // RDDs the current stage itself touches are being handled by its
        // tasks; prefetch targets strictly future references. The reference
        // path keeps the original per-stage `HashSet`; dense mode stamps the
        // stage's RDDs into the epoch table instead (a fresh epoch, same
        // mechanism as the per-task lineage walks — no allocation).
        let current: HashSet<RddId> = if self.reference {
            visible
                .per_stage
                .get(stage.id.index())
                .map(|t| t.reads.iter().chain(&t.creates).copied().collect())
                .unwrap_or_default()
        } else {
            self.epoch += 1;
            if let Some(t) = visible.per_stage.get(stage.id.index()) {
                for &r in t.reads.iter().chain(&t.creates) {
                    self.visited_epoch[r.index() - self.vis_base] = self.epoch;
                }
            }
            HashSet::new()
        };

        for node in 0..self.nodes {
            if self.down[node] {
                continue;
            }
            if self.cfg.adaptive_threshold {
                self.adapt_threshold(node);
            }
            // Reference mode allocates a fresh candidate list per node (the
            // original cost profile); dense mode reuses the scratch buffer.
            let mut missing = if self.reference {
                Vec::new()
            } else {
                let mut m = std::mem::take(&mut self.missing_buf);
                m.clear();
                m
            };
            if self.reference {
                // Reference path: rescan every cached RDD × partition (the
                // original candidate collection, kept for honest
                // baselining). The streaming registry scans live apps only;
                // the tenant mux restricts candidates to the running app
                // either way, so retired apps' entries were always filtered.
                let (whole, registry) = match &self.source {
                    SpecSource::Whole(s) => (Some(s.cached_rdds()), None),
                    SpecSource::Registry(r) => (None, Some(r.cached_rdds())),
                };
                for r in whole
                    .into_iter()
                    .flatten()
                    .chain(registry.into_iter().flatten())
                {
                    if current.contains(&r.id) {
                        continue;
                    }
                    for p in 0..r.num_partitions {
                        if self.home(p) != node {
                            continue;
                        }
                        let b = BlockId::new(r.id, p);
                        if self.materialized.contains(&b)
                            && !self.managers[node].memory.contains(b)
                        {
                            missing.push(b);
                        }
                    }
                }
                missing.sort_unstable();
            } else {
                // Dense path: the maintained per-node bitset already holds
                // exactly the materialized-but-not-resident home blocks;
                // ascending slots are ascending `BlockId`s, so the order
                // matches the reference path's sorted scan.
                let epoch = self.epoch;
                let vis_base = self.vis_base;
                missing.extend(
                    self.prefetchable[node]
                        .ones()
                        .map(|s| self.arena.block(s))
                        .filter(|b| self.visited_epoch[b.rdd.index() - vis_base] != epoch),
                );
            }
            let mut order = policy.prefetch_order(NodeId(node as u32), &missing);
            if !self.reference {
                self.missing_buf = missing;
            }
            order.truncate(self.cfg.max_prefetch_per_node);
            for b in order {
                let size = self.block_size(b);
                let free = self.managers[node].memory.free();
                let fits = size <= free;
                let above_threshold = self.managers[node].free_fraction() > self.thresholds[node];
                if !fits && !above_threshold {
                    break;
                }
                let Some((src, in_mem)) = self.master.best_source(b, NodeId(node as u32)) else {
                    continue;
                };
                let src_i = src.index();
                let done = if in_mem {
                    // Pull from a remote node's memory over the network.
                    let avail = self.pending_avail(src_i, b);
                    self.net[node].request(self.now.max(avail), size)
                } else {
                    let mut d = self.disk[src_i].request(self.now, size);
                    if src_i != node {
                        d = self.net[node].request(d, size);
                    }
                    d
                };
                // Background transfers fail like demand ones; a failed
                // prefetch is simply dropped (no retry, no recompute — the
                // block stays wherever it was).
                let fail_p = if in_mem {
                    self.cfg.faults.fetch_failure_p
                } else {
                    self.cfg.faults.disk_failure_p
                };
                if self.fault_draw(fail_p) {
                    if in_mem {
                        self.fstats.fetch_failures += 1;
                    } else {
                        self.fstats.disk_failures += 1;
                    }
                    continue;
                }
                // The prefetched bytes are deserialized off the critical
                // path, before the block becomes usable.
                let done = done + refdist_simcore::SimDuration::from_micros(self.deser_us(size));
                if self.try_insert(node, b, done, true, policy) {
                    self.managers[node].stats.prefetches += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use refdist_core::{MrdConfig, MrdMode, MrdPolicy};
    use refdist_dag::AppBuilder;
    use refdist_policies::PolicyKind;

    /// Iterative app: cached dataset reused by `iters` jobs.
    fn iterative_app(iters: usize, parts: u32, block: u64) -> AppSpec {
        let mut b = AppBuilder::new("iter-app");
        let input = b.input("in", parts, block, 2_000);
        let data = b.narrow("data", input, block, 5_000);
        b.persist(data, refdist_dag::StorageLevel::MemoryAndDisk);
        for i in 0..iters {
            let s = b.shuffle(format!("agg{i}"), &[data], parts, block / 4, 1_000);
            b.action(format!("job{i}"), s);
        }
        b.build()
    }

    fn sim_cfg(nodes: u32, cache: u64) -> SimConfig {
        let mut cfg = SimConfig::new(ClusterConfig::tiny(nodes, cache));
        cfg.compute_jitter = 0.0; // exact determinism for the unit tests
                                  // Most unit tests exercise the caching mechanics in isolation; the
                                  // execution-memory churn has its own test below.
        cfg.exec_mem_fraction = 0.0;
        cfg
    }

    fn run(spec: &AppSpec, cfg: SimConfig, policy: &mut dyn CachePolicy) -> RunReport {
        let plan = AppPlan::build(spec);
        Simulation::new(spec, &plan, ProfileMode::Recurring, cfg).run(policy)
    }

    #[test]
    fn big_cache_gets_full_hit_ratio() {
        let spec = iterative_app(4, 4, 1024 * 1024);
        let report = run(&spec, sim_cfg(2, 1 << 40), &mut *PolicyKind::Lru.build());
        // After creation, every re-reference hits.
        assert_eq!(report.stats.misses, 0);
        assert!(report.stats.hits > 0);
        assert_eq!(report.hit_ratio(), 1.0);
        assert!(report.jct.micros() > 0);
    }

    #[test]
    fn zero_cache_still_completes() {
        let spec = iterative_app(3, 4, 1024 * 1024);
        let report = run(&spec, sim_cfg(2, 0), &mut *PolicyKind::Lru.build());
        // Nothing can be cached: every access misses (recompute since the
        // block never reached memory => never spilled; it is re-created).
        assert_eq!(report.stats.hits, 0);
        assert!(report.jct.micros() > 0);
    }

    #[test]
    fn small_cache_evicts_and_spills() {
        // Cache fits 2 of 4 one-MB blocks per node (2 nodes, 4 partitions:
        // each node homes 2 blocks of `data`).
        let spec = iterative_app(4, 4, 1024 * 1024);
        let report = run(
            &spec,
            sim_cfg(2, 1024 * 1024),
            &mut *PolicyKind::Lru.build(),
        );
        assert!(report.stats.evictions > 0);
        // MEMORY_AND_DISK: misses come back from disk, not recompute.
        assert!(report.stats.disk_hits > 0);
        assert_eq!(report.stats.recomputes, 0);
    }

    #[test]
    fn memory_only_misses_recompute() {
        let mut bld = AppBuilder::new("mo");
        let input = bld.input("in", 4, 1024 * 1024, 1_000);
        let data = bld.narrow("data", input, 1024 * 1024, 2_000);
        bld.cache(data); // MEMORY_ONLY
        for i in 0..3 {
            let s = bld.shuffle(format!("s{i}"), &[data], 4, 1024, 500);
            bld.action(format!("j{i}"), s);
        }
        let spec = bld.build();
        let report = run(
            &spec,
            sim_cfg(2, 1024 * 1024),
            &mut *PolicyKind::Lru.build(),
        );
        assert!(report.stats.recomputes > 0);
        assert_eq!(report.stats.disk_hits, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = iterative_app(5, 8, 512 * 1024);
        let mut cfg = sim_cfg(3, 2 * 1024 * 1024);
        cfg.compute_jitter = 0.1;
        let r1 = run(&spec, cfg.clone(), &mut *PolicyKind::Lru.build());
        let r2 = run(&spec, cfg, &mut *PolicyKind::Lru.build());
        assert_eq!(r1.jct, r2.jct);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let spec = iterative_app(5, 8, 512 * 1024);
        let mut cfg = sim_cfg(3, 2 * 1024 * 1024);
        cfg.compute_jitter = 0.1;
        let r1 = run(
            &spec,
            cfg.clone().with_seed(1),
            &mut *PolicyKind::Lru.build(),
        );
        let r2 = run(&spec, cfg.with_seed(2), &mut *PolicyKind::Lru.build());
        assert_ne!(r1.jct, r2.jct);
    }

    #[test]
    fn mrd_beats_lru_under_pressure() {
        // Two cached RDDs with different reference patterns under a cache
        // that holds only one of them: LRU keeps the recently-used one; MRD
        // keeps the one referenced sooner.
        let mut bld = AppBuilder::new("pressure");
        let input = bld.input("in", 8, 1024 * 1024, 1_000);
        let hot = bld.narrow("hot", input, 1024 * 1024, 30_000);
        bld.persist(hot, refdist_dag::StorageLevel::MemoryAndDisk);
        let cold = bld.narrow("cold", input, 1024 * 1024, 30_000);
        bld.persist(cold, refdist_dag::StorageLevel::MemoryAndDisk);
        // Job 0 creates both; jobs 1..6 reference hot every job, cold only
        // at the end.
        let both = bld.narrow_multi("both", &[hot, cold], 1024, 100);
        bld.action("create", both);
        for i in 0..5 {
            let s = bld.shuffle(format!("hot{i}"), &[hot], 8, 1024, 100);
            bld.action(format!("jh{i}"), s);
        }
        let s = bld.shuffle("coldref", &[cold], 8, 1024, 100);
        bld.action("jc", s);
        let spec = bld.build();

        // Per node (4 nodes, 8 partitions): 2 hot + 2 cold blocks of 1 MiB;
        // cache holds 2.
        let cfg = sim_cfg(4, 2 * 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let lru = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone())
            .run(&mut *PolicyKind::Lru.build());
        let mut mrd = MrdPolicy::new(MrdConfig {
            mode: MrdMode::EvictOnly,
            ..Default::default()
        });
        let mrd_r = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut mrd);
        assert!(
            mrd_r.hit_ratio() >= lru.hit_ratio(),
            "MRD {} < LRU {}",
            mrd_r.hit_ratio(),
            lru.hit_ratio()
        );
        assert!(mrd_r.jct <= lru.jct, "MRD {} > LRU {}", mrd_r.jct, lru.jct);
    }

    #[test]
    fn prefetch_restores_spilled_blocks() {
        // Phase 1 (jobs 0-2) works on RDD `a`; phase 2 (jobs 3-5) on `b`.
        // The cache cannot hold both, so `b` spills during phase 1; once `a`
        // dies, MRD purges it and the freed space lets the prefetcher pull
        // `b` back from disk before phase 2 references it.
        let mut bld = AppBuilder::new("phases");
        let input = bld.input("in", 8, 1024 * 1024, 1_000);
        let a = bld.narrow("a", input, 1024 * 1024, 20_000);
        bld.persist(a, refdist_dag::StorageLevel::MemoryAndDisk);
        let b = bld.narrow("b", input, 1024 * 1024, 20_000);
        bld.persist(b, refdist_dag::StorageLevel::MemoryAndDisk);
        let both = bld.narrow_multi("both", &[a, b], 1024, 100);
        bld.action("create", both);
        for i in 0..3 {
            let s = bld.shuffle(format!("pa{i}"), &[a], 8, 1024, 100);
            bld.action(format!("ja{i}"), s);
        }
        for i in 0..3 {
            let s = bld.shuffle(format!("pb{i}"), &[b], 8, 1024, 100);
            bld.action(format!("jb{i}"), s);
        }
        let spec = bld.build();
        // 2 nodes, 4 blocks of each RDD per node; cache holds 5 of the 8.
        let cfg = sim_cfg(2, 5 * 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let mut full = MrdPolicy::full();
        let full_r =
            Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone()).run(&mut full);
        assert!(full_r.stats.prefetches > 0, "no prefetches: {full_r:?}");
        assert!(
            full_r.stats.prefetch_hits > 0,
            "prefetches never hit: {full_r:?}"
        );
        // Full MRD should not be slower than evict-only here.
        let mut evict_only = MrdPolicy::new(MrdConfig {
            mode: MrdMode::EvictOnly,
            ..Default::default()
        });
        let eo = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut evict_only);
        assert!(full_r.hit_ratio() >= eo.hit_ratio());
    }

    #[test]
    fn trace_collection_records_accesses() {
        let spec = iterative_app(3, 4, 1024);
        let plan = AppPlan::build(&spec);
        let cfg = sim_cfg(2, 1 << 40);
        let trace = collect_trace(&spec, &plan, &cfg);
        // data has 4 blocks, created once and read twice (jobs 1 and 2).
        assert_eq!(trace.len(), 12);
        let data = RddId(1);
        assert!(trace.iter().all(|b| b.rdd == data));
    }

    #[test]
    fn purge_frees_dead_data() {
        // One RDD referenced only at creation: MRD purges it at the next
        // stage; LRU keeps it pinned in memory until pressure.
        let mut bld = AppBuilder::new("dead");
        let input = bld.input("in", 4, 1024 * 1024, 1_000);
        let once = bld.narrow("once", input, 1024 * 1024, 1_000);
        bld.persist(once, refdist_dag::StorageLevel::MemoryAndDisk);
        let s0 = bld.shuffle("s0", &[once], 4, 1024, 100);
        bld.action("j0", s0);
        let other = bld.narrow("other", input, 1024, 100);
        let s1 = bld.shuffle("s1", &[other], 4, 1024, 100);
        bld.action("j1", s1);
        let spec = bld.build();
        let plan = AppPlan::build(&spec);
        let mut mrd = MrdPolicy::full();
        let r = Simulation::new(&spec, &plan, ProfileMode::Recurring, sim_cfg(2, 1 << 30))
            .run(&mut mrd);
        assert!(r.stats.purges > 0, "dead RDD should be purged");
    }

    #[test]
    fn exec_memory_churn_evicts_and_releases() {
        // With execution memory borrowing 50% of a just-fitting cache, the
        // cached dataset cannot stay fully resident: stage-start reservations
        // force evictions even though the data fits when idle.
        let spec = iterative_app(4, 4, 1024 * 1024);
        let mut cfg = sim_cfg(2, 2 * 1024 * 1024); // exactly fits 2 blocks/node
        cfg.exec_mem_fraction = 0.5;
        let with_churn = run(&spec, cfg, &mut *PolicyKind::Lru.build());
        assert!(with_churn.stats.evictions > 0);

        let no_churn = run(
            &spec,
            sim_cfg(2, 2 * 1024 * 1024),
            &mut *PolicyKind::Lru.build(),
        );
        assert_eq!(no_churn.stats.evictions, 0);
        // Churn can only slow things down for LRU.
        assert!(with_churn.jct >= no_churn.jct);
    }

    #[test]
    fn node_failure_loses_blocks_but_run_completes() {
        let spec = iterative_app(5, 8, 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let healthy = Simulation::new(&spec, &plan, ProfileMode::Recurring, sim_cfg(2, 1 << 30))
            .run(&mut *PolicyKind::Lru.build());
        assert_eq!(healthy.stats.lost_blocks, 0);

        let mut cfg = sim_cfg(2, 1 << 30);
        cfg.faults.node_failure(0, 4); // node 0 dies at stage 4
        let failed = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg)
            .run(&mut *PolicyKind::Lru.build());
        assert!(failed.stats.lost_blocks > 0);
        // Lost blocks are re-acquired: the run finishes, no slower than never
        // having cached and no faster than the healthy run.
        assert!(failed.jct >= healthy.jct);
        assert!(failed.stats.misses > healthy.stats.misses);
    }

    #[test]
    fn node_failure_with_mrd_resyncs_and_completes() {
        let spec = iterative_app(5, 8, 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let mut cfg = sim_cfg(2, 2 * 1024 * 1024);
        cfg.faults.node_failure(1, 6);
        let mut mrd = MrdPolicy::full();
        let r = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut mrd);
        assert!(r.stats.lost_blocks > 0);
        assert!(r.jct.micros() > 0);
        // The manager kept broadcasting table replicas after the failure.
        assert!(mrd.sync_messages() > 0);
    }

    /// §4.4 at its hardest: two nodes crash at the same stage, stay down for
    /// different windows (their tasks migrate to live slots), then rejoin
    /// cold. MRD must resync the replacement monitors and the run must
    /// complete with full task accounting.
    #[test]
    fn concurrent_crashes_with_rejoin_resync_and_complete() {
        let spec = iterative_app(8, 8, 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let healthy_sim =
            Simulation::new(&spec, &plan, ProfileMode::Recurring, sim_cfg(4, 2 * 1024 * 1024));
        let mut healthy_mrd = MrdPolicy::full();
        let healthy = healthy_sim.run(&mut healthy_mrd);

        let mut cfg = sim_cfg(4, 2 * 1024 * 1024);
        cfg.faults.crash_with_rejoin(0, 3, 2);
        cfg.faults.crash_with_rejoin(1, 3, 4);
        let mut mrd = MrdPolicy::full();
        let r = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut mrd);

        assert!(r.stats.lost_blocks > 0);
        assert_eq!(r.faults.crashes, 2);
        assert_eq!(r.faults.rejoins, 2);
        assert!(r.aborted.is_none());
        // Tasks homed on the downed nodes migrated; every task still ran.
        assert_eq!(r.tasks, healthy.tasks);
        assert!(r.sched.remote_placements > 0, "down-node tasks must migrate");
        // The manager re-issued table replicas to the replacement monitors.
        assert_eq!(mrd.replicas_reissued(), 2);
        assert_eq!(healthy_mrd.replicas_reissued(), 0);
        assert!(mrd.sync_messages() > 0);
        // Losing a third of the run's cache capacity cannot speed it up.
        assert!(r.jct >= healthy.jct);
        assert!(r.summary().contains("2 crashes / 2 rejoins"));
    }

    #[test]
    fn crash_that_would_down_last_node_is_ignored() {
        let spec = iterative_app(3, 4, 256 * 1024);
        let mut cfg = sim_cfg(1, 1 << 30);
        cfg.faults.crash_with_rejoin(0, 1, 2);
        let r = run(&spec, cfg, &mut *PolicyKind::Lru.build());
        assert_eq!(r.faults.crashes, 0);
        assert!(r.jct.micros() > 0);
    }

    #[test]
    fn task_failures_retry_with_backoff() {
        let spec = iterative_app(4, 8, 256 * 1024);
        let mut cfg = sim_cfg(2, 1 << 30);
        cfg.faults.task_failure_p = 0.2;
        cfg.faults.max_task_attempts = 50; // effectively never abort
        let r = run(&spec, cfg.clone(), &mut *PolicyKind::Lru.build());
        assert!(r.faults.task_failures > 0, "p=0.2 must fail some attempts");
        assert_eq!(r.faults.retries, r.faults.task_failures);
        assert!(r.faults.backoff_us > 0);
        assert!(r.aborted.is_none());
        let healthy = run(
            &spec,
            sim_cfg(2, 1 << 30),
            &mut *PolicyKind::Lru.build(),
        );
        assert_eq!(r.tasks, healthy.tasks);
        assert!(r.jct > healthy.jct, "retries cost time");
        // Same seed, same faults: byte-deterministic.
        let again = run(&spec, cfg, &mut *PolicyKind::Lru.build());
        assert_eq!(format!("{r:?}"), format!("{again:?}"));
    }

    #[test]
    fn exhausted_retries_abort_the_stage() {
        let spec = iterative_app(5, 8, 256 * 1024);
        let plan = AppPlan::build(&spec);
        let mut cfg = sim_cfg(2, 1 << 30);
        cfg.faults.task_failure_p = 1.0; // every attempt fails
        cfg.faults.max_task_attempts = 3;
        let r = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg)
            .run(&mut *PolicyKind::Lru.build());
        let abort = r.aborted.expect("certain failure must abort");
        assert_eq!(abort.stage.0, 0);
        assert_eq!(abort.app, 0);
        assert_eq!(abort.task, 0);
        assert_eq!(abort.attempts, 3);
        assert_eq!(r.faults.aborts, 1);
        // The run stopped early: only the failing task ran, in one stage.
        assert_eq!(r.tasks, 1);
        assert_eq!(r.stage_times.len(), 1);
        assert_eq!(r.faults.retries, 2);
        assert_eq!(r.faults.task_failures, 3);
        assert!(r.summary().contains("ABORTED at stage 0"));
    }

    #[test]
    fn timed_crash_fires_on_the_wall_clock_and_rejoins() {
        let spec = iterative_app(6, 8, 256 * 1024);
        let mut cfg = sim_cfg(2, 1 << 30);
        // Crash node 1 once the app clock passes 1ms; bring it back 1ms
        // later. Both transitions are keyed to simulated time, not stage
        // ids, so they fire wherever the clock happens to be.
        cfg.faults.timed_crash(1, 1_000, Some(1_000));
        let r = run(&spec, cfg.clone(), &mut *PolicyKind::Lru.build());
        assert_eq!(r.faults.crashes, 1);
        assert_eq!(r.faults.rejoins, 1);
        assert!(r.aborted.is_none());
        let again = run(&spec, cfg, &mut *PolicyKind::Lru.build());
        assert_eq!(format!("{r:?}"), format!("{again:?}"));
        // A timed crash far past the makespan never fires.
        let mut late = sim_cfg(2, 1 << 30);
        late.faults.timed_crash(1, u64::MAX / 2, Some(1_000));
        let l = run(&spec, late, &mut *PolicyKind::Lru.build());
        assert_eq!(l.faults.crashes, 0);
    }

    #[test]
    fn timed_slowdown_window_stretches_the_run() {
        let spec = iterative_app(4, 8, 256 * 1024);
        let healthy = run(&spec, sim_cfg(2, 1 << 30), &mut *PolicyKind::Lru.build());
        let mut cfg = sim_cfg(2, 1 << 30);
        cfg.faults.timed_slowdown(0, 20.0, 0, None);
        let slow = run(&spec, cfg, &mut *PolicyKind::Lru.build());
        assert!(slow.jct > healthy.jct, "an open-ended 20x slowdown must cost time");
        // A window that opens after the run ends is inert.
        let mut future = sim_cfg(2, 1 << 30);
        future.faults.timed_slowdown(0, 20.0, u64::MAX / 2, None);
        let p = run(&spec, future, &mut *PolicyKind::Lru.build());
        assert_eq!(p.jct, healthy.jct);
    }

    #[test]
    fn churn_process_is_deterministic_and_survivable() {
        let spec = iterative_app(8, 8, 256 * 1024);
        let mut cfg = sim_cfg(3, 1 << 30);
        // Aggressive churn relative to the run length so transitions fire.
        cfg.faults.node_churn(20_000, 10_000);
        let r = run(&spec, cfg.clone(), &mut *PolicyKind::Lru.build());
        assert!(
            r.faults.crashes > 0,
            "MTBF far below the makespan must take nodes down: {:?}",
            r.faults
        );
        assert!(r.faults.rejoins > 0, "MTTR must bring them back");
        assert!(r.aborted.is_none(), "task retries ride out the churn");
        let again = run(&spec, cfg.clone(), &mut *PolicyKind::Lru.build());
        assert_eq!(format!("{r:?}"), format!("{again:?}"), "same seed, same membership timeline");
        let mut other = cfg.clone();
        other.seed ^= 0xDEAD_BEEF;
        let o = run(&spec, other, &mut *PolicyKind::Lru.build());
        assert_ne!(
            format!("{r:?}"),
            format!("{o:?}"),
            "churn draws come from the seed-salted churn stream"
        );
    }

    #[test]
    fn churn_never_downs_the_last_live_node() {
        let spec = iterative_app(6, 4, 256 * 1024);
        let mut cfg = sim_cfg(1, 1 << 30);
        // On a one-node cluster the churn process can never fire a failure.
        cfg.faults.node_churn(1_000, 1_000_000);
        let r = run(&spec, cfg, &mut *PolicyKind::Lru.build());
        assert_eq!(r.faults.crashes, 0);
        assert!(r.aborted.is_none());
    }

    #[test]
    fn fetch_and_disk_failures_recover_through_lineage() {
        // 32 partitions on 4 nodes: several task waves per node, so the
        // straggler queues and delay scheduling migrates tasks off it —
        // migrated tasks fetch their cached input remotely. The cache holds
        // 2 of each node's 8 home blocks, so evicted copies come back from
        // disk.
        let spec = iterative_app(4, 32, 256 * 1024);
        let mut cfg = sim_cfg(4, 512 * 1024);
        cfg.faults.slow_node(0, 10.0);
        cfg.delay_scheduling_us = Some(10_000);
        cfg.faults.fetch_failure_p = 0.5;
        cfg.faults.disk_failure_p = 0.5;
        let r = run(&spec, cfg, &mut *PolicyKind::Lru.build());
        assert!(
            r.faults.fetch_failures + r.faults.disk_failures > 0,
            "p=0.5 must fail some reads: {:?}",
            r.faults
        );
        assert!(r.faults.fault_recomputes > 0);
        assert!(r.stats.recomputes >= r.faults.fault_recomputes);
        // Accounting invariants survive the injected failures.
        assert_eq!(r.stats.accesses(), r.stats.hits + r.stats.misses);
        assert!(r.stats.disk_hits + r.stats.recomputes <= r.stats.misses);
        assert!(r.aborted.is_none());
    }

    #[test]
    fn speculation_rescues_stragglers() {
        // Node 0 computes 20x slower; speculation re-launches its tasks on
        // the fast nodes and wins. Small blocks keep the copy's remote fetch
        // of the straggler's cached input well under the compute skew.
        let spec = iterative_app(4, 32, 256 * 1024);
        let mut slow = sim_cfg(4, 1 << 30);
        slow.faults.slow_node(0, 20.0);
        let r_slow = run(&spec, slow.clone(), &mut *PolicyKind::Lru.build());

        let mut spec_cfg = slow.clone();
        spec_cfg.faults.speculation_quantile = 0.75;
        let r_spec = run(&spec, spec_cfg, &mut *PolicyKind::Lru.build());
        assert!(r_spec.faults.spec_launched > 0);
        assert_eq!(
            r_spec.faults.spec_wins + r_spec.faults.spec_losses,
            r_spec.faults.spec_launched
        );
        assert!(r_spec.faults.spec_wins > 0, "copies must beat a 20x straggler");
        // Speculative copies are not extra tasks.
        assert_eq!(r_spec.tasks, r_slow.tasks);
        assert!(
            r_spec.jct < r_slow.jct,
            "speculation should cut the straggler tail: {} vs {}",
            r_spec.jct,
            r_slow.jct
        );
    }

    #[test]
    fn adaptive_threshold_stays_bounded_and_runs() {
        let spec = iterative_app(6, 8, 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let mut cfg = sim_cfg(2, 2 * 1024 * 1024);
        cfg.adaptive_threshold = true;
        let mut mrd = MrdPolicy::full();
        let adaptive =
            Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone()).run(&mut mrd);
        assert!(adaptive.jct.micros() > 0);
        // Sanity: fixed-threshold run on the same inputs also completes and
        // both agree on task counts (adaptation changes I/O, not work).
        cfg.adaptive_threshold = false;
        let mut mrd = MrdPolicy::full();
        let fixed = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut mrd);
        assert_eq!(adaptive.tasks, fixed.tasks);
    }

    #[test]
    fn delay_scheduling_balances_skewed_stages() {
        // 9 partitions on 3 nodes: home mapping puts 3 tasks per node, but a
        // partition count much larger than one node's share exercises the
        // remote path only when delay scheduling is on and tight.
        let mut bld = AppBuilder::new("skew");
        let input = bld.input("in", 9, 4 * 1024 * 1024, 2_000_000);
        let s = bld.shuffle("s", &[input], 9, 1024, 1_000);
        bld.action("j", s);
        let spec = bld.build();
        let plan = AppPlan::build(&spec);

        // One-node cluster comparison is meaningless; use a 3-node cluster
        // where node 0's disk is the bottleneck for its 3 input reads.
        let mut strict = sim_cfg(3, 1 << 30);
        strict.delay_scheduling_us = None;
        let r_strict = Simulation::new(&spec, &plan, ProfileMode::Recurring, strict)
            .run(&mut *PolicyKind::Lru.build());

        let mut relaxed = sim_cfg(3, 1 << 30);
        relaxed.delay_scheduling_us = Some(0); // always take the earliest slot
        let r_relaxed = Simulation::new(&spec, &plan, ProfileMode::Recurring, relaxed)
            .run(&mut *PolicyKind::Lru.build());
        // Both complete deterministically; the relaxed schedule never leaves
        // a slot idle while a task waits, so it cannot be slower on compute-
        // bound stages.
        assert!(r_relaxed.jct <= r_strict.jct);
    }

    #[test]
    fn delay_scheduling_routes_around_stragglers() {
        // Node 0 computes 10x slower and every node runs several task waves,
        // so the straggler's queue backs up. With strict home placement its
        // tasks gate every stage; with delay scheduling they migrate.
        let spec = iterative_app(4, 32, 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let mut strict = sim_cfg(4, 1 << 30);
        strict.faults.slow_node(0, 10.0);
        let r_strict = Simulation::new(&spec, &plan, ProfileMode::Recurring, strict)
            .run(&mut *PolicyKind::Lru.build());

        let mut routed = sim_cfg(4, 1 << 30);
        routed.faults.slow_node(0, 10.0);
        routed.delay_scheduling_us = Some(10_000); // wait at most 10ms
        let r_routed = Simulation::new(&spec, &plan, ProfileMode::Recurring, routed)
            .run(&mut *PolicyKind::Lru.build());
        assert!(
            r_routed.jct < r_strict.jct,
            "delay scheduling should beat strict placement under a straggler: {} vs {}",
            r_routed.jct,
            r_strict.jct
        );
    }

    #[test]
    fn migrated_tasks_take_remote_memory_hits() {
        // With a straggler and delay scheduling, tasks migrate off their
        // home node and read that node's cached blocks over the network —
        // the remote-memory path.
        let spec = iterative_app(4, 32, 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let mut cfg = sim_cfg(4, 1 << 30);
        cfg.faults.slow_node(0, 10.0);
        cfg.delay_scheduling_us = Some(10_000);
        let r = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg)
            .run(&mut *PolicyKind::Lru.build());
        assert!(r.stats.remote_hits > 0, "no remote hits: {:?}", r.stats);
        // Remote hits are still hits.
        assert!(r.stats.remote_hits <= r.stats.hits);
        // The migrations show up in the placement counters and the summary.
        assert!(r.sched.remote_placements > 0, "no migrations: {:?}", r.sched);
        assert_eq!(
            r.sched.home_placements + r.sched.remote_placements,
            r.tasks
        );
        assert!(r.summary().contains("delay-scheduled remotely"));
    }

    #[test]
    fn placements_collected_only_on_request() {
        let spec = iterative_app(3, 8, 256 * 1024);
        let plan = AppPlan::build(&spec);
        let mut cfg = sim_cfg(2, 1 << 30);
        cfg.collect_placements = true;
        let r = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg)
            .run(&mut *PolicyKind::Lru.build());
        let placements = r.placements.expect("placements were requested");
        assert_eq!(placements.len(), r.tasks as usize);
        // Without delay scheduling every task runs at home: node = p % nodes
        // in task order, stage by stage.
        assert!(placements.iter().all(|&(n, _, _)| n < 2));

        let r = run(&spec, sim_cfg(2, 1 << 30), &mut *PolicyKind::Lru.build());
        assert!(r.placements.is_none());
        assert_eq!(r.sched.home_placements, r.tasks);
        assert_eq!(r.sched.remote_placements, 0);
    }

    #[test]
    fn scratch_reuse_is_equivalent_across_cells() {
        // One scratch threaded through runs of different shapes (cluster
        // sizes, policies, even another workload) must not change any result.
        let spec_a = iterative_app(4, 8, 512 * 1024);
        let plan_a = AppPlan::build(&spec_a);
        let spec_b = iterative_app(2, 6, 256 * 1024);
        let plan_b = AppPlan::build(&spec_b);
        let mut scratch = EngineScratch::default();
        for (spec, plan) in [(&spec_a, &plan_a), (&spec_b, &plan_b)] {
            for nodes in [2u32, 3] {
                for kind in [PolicyKind::Lru, PolicyKind::Fifo] {
                    let mut cfg = sim_cfg(nodes, 1024 * 1024);
                    cfg.delay_scheduling_us = Some(1_000);
                    let sim = Simulation::new(spec, plan, ProfileMode::Recurring, cfg);
                    let fresh = sim.run(&mut *kind.build());
                    let reused = sim.run_with_scratch(&mut *kind.build(), &mut scratch);
                    assert_eq!(format!("{fresh:?}"), format!("{reused:?}"));
                }
            }
        }
    }

    #[test]
    fn shared_artifacts_match_freshly_built() {
        let spec = iterative_app(4, 8, 512 * 1024);
        let plan = AppPlan::build(&spec);
        let cfg = sim_cfg(3, 2 * 1024 * 1024);
        let base = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone());
        let (profiler, arena) = base.artifacts();
        let shared = Simulation::with_artifacts(&spec, &plan, profiler, arena, cfg);
        let r1 = base.run(&mut *PolicyKind::Lru.build());
        let r2 = shared.run(&mut *PolicyKind::Lru.build());
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }

    #[test]
    fn stage_times_are_monotone() {
        let spec = iterative_app(4, 4, 256 * 1024);
        let r = run(&spec, sim_cfg(2, 1 << 30), &mut *PolicyKind::Lru.build());
        for w in r.stage_times.windows(2) {
            assert!(w[0].2 <= w[1].1, "stages must not overlap");
        }
        assert_eq!(
            r.stage_times.last().unwrap().2,
            SimTime(r.jct.micros()),
            "JCT equals last stage end"
        );
    }

    #[test]
    fn task_count_matches_plan() {
        let spec = iterative_app(3, 4, 1024);
        let plan = AppPlan::build(&spec);
        let expected: u64 = plan.stages.iter().map(|s| s.num_tasks as u64).sum();
        let r = run(&spec, sim_cfg(2, 1 << 30), &mut *PolicyKind::Lru.build());
        assert_eq!(r.tasks, expected);
    }

    #[test]
    fn all_baselines_complete() {
        let spec = iterative_app(4, 8, 256 * 1024);
        for &kind in PolicyKind::all() {
            let r = run(&spec, sim_cfg(2, 1024 * 1024), &mut *kind.build());
            assert!(r.jct.micros() > 0, "{kind:?} did not run");
        }
    }

    #[test]
    fn belady_from_trace_completes_and_is_competitive() {
        let spec = iterative_app(6, 8, 1024 * 1024);
        let plan = AppPlan::build(&spec);
        let cfg = sim_cfg(2, 2 * 1024 * 1024);
        let trace = collect_trace(&spec, &plan, &cfg);
        let mut belady = refdist_policies::BeladyMinPolicy::from_trace(&trace);
        let b = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone()).run(&mut belady);
        let l = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg)
            .run(&mut *PolicyKind::Lru.build());
        assert!(b.hit_ratio() >= l.hit_ratio());
    }
}
