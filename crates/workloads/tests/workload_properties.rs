//! Cross-workload structural properties: the DAG *shape* (jobs, stages,
//! references, distances) must be invariant to data scale and partitioning,
//! since those only change block sizes and task counts.

use refdist_dag::{AppPlan, RefAnalyzer};
use refdist_workloads::{Workload, WorkloadParams};

fn shape(w: Workload, p: &WorkloadParams) -> (usize, usize, usize, f64, u32) {
    let spec = w.build(p);
    let plan = AppPlan::build(&spec);
    let profile = RefAnalyzer::new(&spec, &plan).profile();
    let d = RefAnalyzer::distance_stats(&profile);
    (
        plan.jobs.len(),
        plan.active_stage_count(),
        spec.rdds.len(),
        d.avg_stage,
        d.max_stage,
    )
}

#[test]
fn dag_shape_is_scale_invariant() {
    for &w in Workload::sparkbench().iter().chain(Workload::hibench()) {
        let a = shape(
            w,
            &WorkloadParams {
                partitions: 8,
                scale: 0.05,
                iterations: None,
            },
        );
        let b = shape(
            w,
            &WorkloadParams {
                partitions: 64,
                scale: 1.0,
                iterations: None,
            },
        );
        assert_eq!(
            a,
            b,
            "{}: shape changed with scale/partitions",
            w.short_name()
        );
    }
}

#[test]
fn tripling_iterations_grows_jobs_and_stages() {
    // Paper §5.9: jobs +59%, stages +78% on average when tripled.
    let p = WorkloadParams::small();
    let mut job_growth = Vec::new();
    let mut stage_growth = Vec::new();
    for &w in Workload::sparkbench() {
        let Some(iters) = w.default_iterations() else {
            continue;
        };
        let base = shape(w, &p);
        let tripled = shape(
            w,
            &WorkloadParams {
                iterations: Some(iters * 3),
                ..p
            },
        );
        assert!(tripled.0 > base.0, "{}: jobs did not grow", w.short_name());
        assert!(
            tripled.1 > base.1,
            "{}: stages did not grow",
            w.short_name()
        );
        job_growth.push(tripled.0 as f64 / base.0 as f64 - 1.0);
        stage_growth.push(tripled.1 as f64 / base.1 as f64 - 1.0);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Growth is substantial but sub-3x (only part of each app iterates),
    // bracketing the paper's +59% jobs / +78% stages.
    let jg = avg(&job_growth);
    let sg = avg(&stage_growth);
    assert!(jg > 0.4 && jg < 2.5, "avg job growth {jg}");
    assert!(sg > 0.4 && sg < 2.5, "avg stage growth {sg}");
}

#[test]
fn suite_distance_ordering_matches_table1() {
    // The qualitative ordering the paper's Table 1 establishes.
    let p = WorkloadParams::small();
    let avg_stage = |w: Workload| shape(w, &p).3;
    let scc = avg_stage(Workload::StronglyConnectedComponents);
    let lp = avg_stage(Workload::LabelPropagation);
    let sort = avg_stage(Workload::HiSort);
    let sp = avg_stage(Workload::ShortestPaths);
    // SCC and LP dominate everything else.
    for &w in Workload::sparkbench() {
        if matches!(
            w,
            Workload::StronglyConnectedComponents | Workload::LabelPropagation
        ) {
            continue;
        }
        assert!(scc > avg_stage(w), "SCC not above {}", w.short_name());
        assert!(lp > avg_stage(w), "LP not above {}", w.short_name());
    }
    // Batch ETL has no distances at all; SP sits near the bottom.
    assert_eq!(sort, 0.0);
    assert!(sp < 4.0);
}

#[test]
fn cached_footprints_are_positive_for_sparkbench() {
    let p = WorkloadParams::small();
    for &w in Workload::sparkbench() {
        let spec = w.build(&p);
        let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
        assert!(footprint > 0, "{} has no cached data", w.short_name());
        // Every cached RDD must actually be referenced by the plan.
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        for r in spec.cached_rdds() {
            assert!(
                profile.refs(r.id).is_some(),
                "{}: cached RDD {} is never touched",
                w.short_name(),
                r.name
            );
        }
    }
}

#[test]
fn io_intensive_workloads_have_higher_io_share() {
    // The Job Type labels must be reflected in simulated behaviour: the
    // I/O-intensive group spends a larger share of task time on I/O than
    // the CPU-intensive group under the same relative cache pressure.
    use refdist_cluster::{ClusterConfig, SimConfig, Simulation};
    use refdist_core::ProfileMode;
    use refdist_policies::PolicyKind;
    use refdist_workloads::JobType;

    let p = WorkloadParams {
        partitions: 16,
        scale: 0.05,
        iterations: None,
    };
    let mut shares: Vec<(JobType, f64)> = Vec::new();
    for &w in Workload::sparkbench() {
        let spec = w.build(&p);
        let plan = AppPlan::build(&spec);
        let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
        let mut cfg = SimConfig::new(ClusterConfig::tiny(4, (footprint / 8).max(1)));
        cfg.compute_jitter = 0.0;
        let mut lru = PolicyKind::Lru.build();
        let r = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut *lru);
        shares.push((w.job_type(), r.io_share()));
    }
    let avg = |t: JobType| {
        let v: Vec<f64> = shares
            .iter()
            .filter(|(jt, _)| *jt == t)
            .map(|(_, s)| *s)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(
        avg(JobType::IoIntensive) > avg(JobType::CpuIntensive),
        "I/O-intensive group should out-I/O the CPU-intensive group: {:?}",
        shares
    );
}
