//! Shared building blocks for workload generators.

use refdist_dag::{AppBuilder, RddId, StorageLevel};

/// One kibibyte.
pub const KB: u64 = 1 << 10;
/// One mebibyte.
pub const MB: u64 = 1 << 20;
/// One gibibyte.
pub const GB: u64 = 1 << 30;

/// Knobs shared by all workload generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Partitions per RDD (tasks per stage). The paper's HDFS layout
    /// (128 MB blocks) gives a few dozen partitions for gigabyte inputs.
    pub partitions: u32,
    /// Input-size scale factor (1.0 = the paper's Table 3 sizes).
    pub scale: f64,
    /// Override the workload's default iteration count (paper §5.9 triples
    /// it). `None` keeps the default.
    pub iterations: Option<u32>,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            // Spark's guideline of 2-3 tasks per core: the Main cluster has
            // 100 slots, so stages run in ~2 waves and contend for each
            // node's disk and NIC, as on the paper's testbed.
            partitions: 192,
            scale: 1.0,
            iterations: None,
        }
    }
}

impl WorkloadParams {
    /// Small configuration for unit tests and examples.
    pub fn small() -> Self {
        WorkloadParams {
            partitions: 8,
            scale: 0.05,
            ..Default::default()
        }
    }

    /// Per-partition block size for a dataset of `total` bytes at scale.
    pub fn block(&self, total: u64) -> u64 {
        ((total as f64 * self.scale) as u64 / self.partitions as u64).max(1)
    }

    /// Iterations to run: the override, or `default`.
    pub fn iters(&self, default: u32) -> u32 {
        self.iterations.unwrap_or(default).max(1)
    }
}

/// Compute microseconds for a block: `us_per_mb` microseconds per MiB,
/// minimum 100 µs (task launch floor).
pub fn cost(block_bytes: u64, us_per_mb: u64) -> u64 {
    ((block_bytes as u128 * us_per_mb as u128 / MB as u128) as u64).max(100)
}

/// Append a chain of `len` narrow transformations (map/filter pipelines —
/// they add RDDs to the lineage without adding stages).
pub fn narrow_chain(
    b: &mut AppBuilder,
    name: &str,
    parent: RddId,
    len: u32,
    block: u64,
    compute_us: u64,
) -> RddId {
    let mut cur = parent;
    for i in 0..len.max(1) {
        cur = b.narrow(format!("{name}_{i}"), cur, block, compute_us);
    }
    cur
}

/// Configuration of a Pregel-style superstep loop (GraphX's `Pregel`
/// operator, the engine under PageRank, ConnectedComponents, SCC,
/// LabelPropagation, ShortestPaths and PregelOperation in SparkBench).
#[derive(Debug, Clone, Copy)]
pub struct PregelConfig {
    /// Partitions of the vertex and message RDDs.
    pub partitions: u32,
    /// Block size of each cached vertex generation.
    pub vertex_block: u64,
    /// Block size of the cached edges RDD.
    pub edge_block: u64,
    /// Block size of message RDDs.
    pub msg_block: u64,
    /// Number of supersteps.
    pub supersteps: u32,
    /// Compute µs per vertex-update task.
    pub vertex_us: u64,
    /// Compute µs per message task.
    pub msg_us: u64,
    /// If > 0, superstep `i` also re-reads the vertex generation from
    /// `i - lag` (snapshot/convergence comparison) — this is what produces
    /// the very large reference distances of LP and SCC.
    pub long_ref_lag: u32,
    /// Issue the per-superstep `messages.count()` action every `job_every`
    /// supersteps (GraphX Pregel does it every superstep).
    pub job_every: u32,
    /// Shuffle phases in the per-superstep message aggregation (1 = a single
    /// shuffle; 2 = map-side combine + reduce; 3 adds a re-partition hop).
    /// Each extra phase adds one stage per superstep.
    pub phases: u32,
    /// Extra narrow transformations per superstep (RDD-count realism).
    pub chain: u32,
    /// Whether the final summary job re-reads the *initial* vertex
    /// generation (e.g. comparing converged labels against the seed), which
    /// produces the workload's maximum reference distance.
    pub final_reads_first: bool,
    /// Storage level of the vertex generations. GraphX persists them
    /// `MEMORY_ONLY`, so an evicted generation must be *recomputed* from its
    /// lineage (shuffle reads + joins all the way back to the last resident
    /// ancestor) — the expensive cascade that makes eviction policy matter
    /// so much for the paper's I/O-intensive graph workloads.
    pub vertex_storage: StorageLevel,
}

/// Build a Pregel loop on top of `input` (the raw edge list). Returns the
/// final vertex RDD. Emits one job per `job_every` supersteps plus a final
/// aggregation job on the last vertex generation.
pub fn build_pregel(b: &mut AppBuilder, input: RddId, cfg: &PregelConfig) -> RddId {
    // Parse the edge list and cache it: referenced by every superstep.
    let edges_raw = narrow_chain(
        b,
        "edges_parse",
        input,
        cfg.chain.max(1),
        cfg.edge_block,
        cfg.msg_us,
    );
    let edges = b.narrow("edges", edges_raw, cfg.edge_block, cfg.msg_us);
    b.persist(edges, StorageLevel::MemoryAndDisk);

    // Initial vertex set: group edges by vertex.
    let verts0 = b.shuffle(
        "verts0",
        &[edges],
        cfg.partitions,
        cfg.vertex_block,
        cfg.vertex_us,
    );
    b.persist(verts0, cfg.vertex_storage);

    // Seed snapshot: touched only at the first superstep and (when
    // `final_reads_first` is set) by the final comparison — the reference
    // gap spanning the entire DAG that gives LP/SCC their maximum stage
    // distances.
    let seed = if cfg.final_reads_first {
        let s = b.narrow(
            "seed_snapshot",
            verts0,
            (cfg.vertex_block / 4).max(1),
            cfg.vertex_us / 4,
        );
        b.persist(s, cfg.vertex_storage);
        Some(s)
    } else {
        None
    };

    let mut history = vec![verts0];
    let mut verts = verts0;
    for step in 0..cfg.supersteps {
        // Message generation: vertices joined with edges, shuffled to the
        // destination vertices.
        let mut send_parents = vec![verts, edges];
        if step == 0 {
            if let Some(s) = seed {
                send_parents.push(s);
            }
        }
        let pre = b.narrow_multi(
            format!("send_{step}"),
            &send_parents,
            cfg.msg_block,
            cfg.msg_us,
        );
        let pre = narrow_chain(
            b,
            &format!("mexpr_{step}"),
            pre,
            cfg.chain,
            cfg.msg_block,
            cfg.msg_us,
        );
        let mut msgs = b.shuffle(
            format!("msgs_{step}"),
            &[pre],
            cfg.partitions,
            cfg.msg_block,
            cfg.msg_us,
        );
        for phase in 1..cfg.phases.max(1) {
            let partial = b.narrow(
                format!("combine_{step}_{phase}"),
                msgs,
                cfg.msg_block,
                cfg.msg_us,
            );
            msgs = b.shuffle(
                format!("reduced_{step}_{phase}"),
                &[partial],
                cfg.partitions,
                cfg.msg_block,
                cfg.msg_us,
            );
        }
        // Vertex update: join new messages into the vertex set, optionally
        // comparing against an old snapshot (long reference).
        let mut join_parents = vec![verts, msgs];
        if cfg.long_ref_lag > 0 && step >= cfg.long_ref_lag {
            join_parents.push(history[(step - cfg.long_ref_lag) as usize]);
        }
        let new_verts = b.narrow_multi(
            format!("verts_{}", step + 1),
            &join_parents,
            cfg.vertex_block,
            cfg.vertex_us,
        );
        b.persist(new_verts, cfg.vertex_storage);
        history.push(new_verts);
        verts = new_verts;

        if cfg.job_every > 0 && step % cfg.job_every == 0 {
            // GraphX Pregel: messages.count() to decide convergence.
            b.action(format!("superstep_{step}"), msgs);
        }
    }
    // Final aggregation over the last vertex generation (optionally
    // comparing against the initial one — the longest reference distance).
    let final_src = if let Some(s) = seed {
        b.narrow_multi(
            "final_compare",
            &[verts, verts0, s],
            cfg.vertex_block,
            cfg.vertex_us,
        )
    } else {
        verts
    };
    let summary = b.shuffle(
        "final_summary",
        &[final_src],
        cfg.partitions,
        (cfg.vertex_block / 8).max(1),
        cfg.vertex_us,
    );
    b.action("final", summary);
    verts
}

/// Build the common iterative-ML skeleton: parse + cache a dataset, run an
/// initialization job, then `iters` gradient-style jobs that each read the
/// cached dataset. Single-stage iterations model MLlib's `treeAggregate`
/// actions without shuffles. Returns the cached dataset RDD.
pub struct MlSkeleton {
    /// The cached parsed dataset.
    pub data: RddId,
    /// Auxiliary cached RDDs created during initialization (referenced again
    /// only by the finalization job, producing long distances).
    pub aux: Vec<RddId>,
}

/// Parameters for [`build_ml`].
pub struct MlConfig {
    /// Total input bytes (paper Table 3 "Data Input Size").
    pub input_total: u64,
    /// Partitions.
    pub partitions: u32,
    /// Parse cost µs/MiB.
    pub parse_us_per_mb: u64,
    /// Per-iteration cost µs/MiB (CPU-intensive workloads set this high).
    pub iter_us_per_mb: u64,
    /// Gradient-descent-style jobs.
    pub iterations: u32,
    /// Whether iterations are single-stage (aggregate action) or include a
    /// shuffle (two stages).
    pub single_stage_iters: bool,
    /// Number of auxiliary cached RDDs created at init and referenced by the
    /// finalization job.
    pub aux_cached: u32,
    /// Narrow-chain padding per iteration.
    pub chain: u32,
    /// Per-partition block size override (`None` = input/partitions).
    pub block: Option<u64>,
}

/// Build the ML skeleton into `b`; emits `2 + iterations (+1 final)` jobs.
pub fn build_ml(b: &mut AppBuilder, cfg: &MlConfig) -> MlSkeleton {
    let block = cfg
        .block
        .unwrap_or((cfg.input_total / cfg.partitions as u64).max(1));
    let parse_us = cost(block, cfg.parse_us_per_mb);
    let iter_us = cost(block, cfg.iter_us_per_mb);

    let input = b.input("hdfs_input", cfg.partitions, block, parse_us);
    let data = b.narrow("points", input, block, parse_us);
    b.persist(data, StorageLevel::MemoryAndDisk);

    // Job 0: count the dataset (materializes the cache).
    b.action("count", data);

    // Initialization job: sample/seed model via a shuffle; creates the aux
    // cached RDDs that will be referenced again at the end.
    let mut aux = Vec::new();
    for a in 0..cfg.aux_cached {
        let x = b.narrow(format!("aux_{a}"), data, (block / 16).max(1), iter_us / 4);
        b.persist(x, StorageLevel::MemoryAndDisk);
        aux.push(x);
    }
    // The init job reads data plus the aux RDDs, materializing them now so
    // their re-reference at evaluation time is a long-distance gap.
    let mut init_parents = vec![data];
    init_parents.extend(&aux);
    let sample = b.shuffle(
        "init_sample",
        &init_parents,
        cfg.partitions,
        (block / 32).max(1),
        iter_us / 8,
    );
    b.action("init", sample);

    // Iteration jobs.
    for i in 0..cfg.iterations {
        let grad0 = b.narrow(format!("grad_{i}"), data, (block / 8).max(1), iter_us);
        let grad = narrow_chain(
            b,
            &format!("gexpr_{i}"),
            grad0,
            cfg.chain,
            (block / 8).max(1),
            iter_us / 8,
        );
        if cfg.single_stage_iters {
            b.action(format!("iter_{i}"), grad);
        } else {
            let red = b.shuffle(
                format!("reduce_{i}"),
                &[grad],
                cfg.partitions,
                (block / 64).max(1),
                iter_us / 8,
            );
            b.action(format!("iter_{i}"), red);
        }
    }

    // Finalization job: model evaluation touching data and all aux RDDs.
    if !aux.is_empty() {
        let mut parents = vec![data];
        parents.extend(&aux);
        let eval = b.narrow_multi("evaluate", &parents, (block / 8).max(1), iter_us / 2);
        let evals = b.shuffle(
            "eval_sum",
            &[eval],
            cfg.partitions,
            (block / 64).max(1),
            iter_us / 8,
        );
        b.action("evaluate", evals);
    }

    MlSkeleton { data, aux }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::{AppPlan, RefAnalyzer};

    #[test]
    fn params_block_scales() {
        let p = WorkloadParams {
            partitions: 8,
            scale: 0.5,
            iterations: None,
        };
        assert_eq!(p.block(16 * MB), MB);
        assert_eq!(p.iters(10), 10);
        let p2 = WorkloadParams {
            iterations: Some(3),
            ..p
        };
        assert_eq!(p2.iters(10), 3);
    }

    #[test]
    fn cost_has_floor() {
        assert_eq!(cost(1, 1000), 100);
        assert_eq!(cost(10 * MB, 1000), 10_000);
    }

    #[test]
    fn narrow_chain_adds_rdds_not_stages() {
        let mut b = AppBuilder::new("chain");
        let input = b.input("in", 4, MB, 100);
        let out = narrow_chain(&mut b, "c", input, 5, MB, 100);
        b.action("count", out);
        let spec = b.build();
        assert_eq!(spec.rdds.len(), 6);
        let plan = AppPlan::build(&spec);
        assert_eq!(plan.stages.len(), 1);
    }

    #[test]
    fn pregel_emits_one_job_per_superstep_plus_final() {
        let mut b = AppBuilder::new("pregel");
        let input = b.input("edges_raw", 4, MB, 100);
        build_pregel(
            &mut b,
            input,
            &PregelConfig {
                partitions: 4,
                vertex_block: MB,
                edge_block: MB,
                msg_block: MB / 2,
                supersteps: 5,
                vertex_us: 100,
                msg_us: 100,
                long_ref_lag: 0,
                job_every: 1,
                phases: 1,
                final_reads_first: false,
                vertex_storage: StorageLevel::MemoryAndDisk,
                chain: 1,
            },
        );
        let spec = b.build();
        assert_eq!(spec.num_jobs(), 6); // 5 supersteps + final
        let plan = AppPlan::build(&spec);
        // Later jobs' DAGs include earlier (skipped) stages.
        assert!(plan.total_stage_appearances() > plan.active_stage_count());
    }

    #[test]
    fn pregel_long_lag_stretches_distances() {
        let build = |lag: u32| {
            let mut b = AppBuilder::new("pregel");
            let input = b.input("edges_raw", 4, MB, 100);
            build_pregel(
                &mut b,
                input,
                &PregelConfig {
                    partitions: 4,
                    vertex_block: MB,
                    edge_block: MB,
                    msg_block: MB / 2,
                    supersteps: 10,
                    vertex_us: 100,
                    msg_us: 100,
                    long_ref_lag: lag,
                    job_every: 1,
                    phases: 1,
                    final_reads_first: false,
                    vertex_storage: StorageLevel::MemoryAndDisk,
                    chain: 1,
                },
            );
            let spec = b.build();
            let plan = AppPlan::build(&spec);
            let profile = RefAnalyzer::new(&spec, &plan).profile();
            RefAnalyzer::distance_stats(&profile)
        };
        let near = build(0);
        let far = build(5);
        assert!(
            far.max_stage > near.max_stage,
            "lag should stretch max stage distance ({} vs {})",
            far.max_stage,
            near.max_stage
        );
        assert!(far.avg_stage > near.avg_stage);
    }

    #[test]
    fn ml_skeleton_job_count() {
        let mut b = AppBuilder::new("ml");
        build_ml(
            &mut b,
            &MlConfig {
                input_total: 64 * MB,
                partitions: 4,
                parse_us_per_mb: 100,
                iter_us_per_mb: 1000,
                iterations: 5,
                single_stage_iters: true,
                aux_cached: 2,
                chain: 1,
                block: None,
            },
        );
        let spec = b.build();
        // count + init + 5 iters + evaluate
        assert_eq!(spec.num_jobs(), 8);
        let plan = AppPlan::build(&spec);
        // Single-stage iterations: one result stage each.
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        // data referenced by every iteration job.
        let data_refs = profile.refs(refdist_dag::RddId(1)).unwrap();
        assert!(data_refs.count() >= 7);
    }

    #[test]
    fn ml_aux_rdds_have_long_references() {
        let mut b = AppBuilder::new("ml");
        let sk = build_ml(
            &mut b,
            &MlConfig {
                input_total: 64 * MB,
                partitions: 4,
                parse_us_per_mb: 100,
                iter_us_per_mb: 1000,
                iterations: 8,
                single_stage_iters: true,
                aux_cached: 1,
                chain: 0,
                block: None,
            },
        );
        let spec = b.build();
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let aux_refs = profile.refs(sk.aux[0]).unwrap();
        // Created at init, referenced at evaluate: a long job gap.
        let max_gap = aux_refs.job_gaps().max().unwrap();
        assert!(max_gap >= 8, "aux job gap {max_gap} should span iterations");
    }
}
