//! Synthetic workload DAG generators.
//!
//! The paper evaluates MRD on 14 SparkBench workloads (plus 6 HiBench
//! workloads that were profiled in Table 1 and then dropped for their tiny
//! reference distances). We do not have SparkBench or a JVM, so each
//! workload is reconstructed as a *DAG generator*: a function that emits the
//! application's RDD lineage — jobs, stages, cached RDDs and their reference
//! pattern — with job/stage/RDD counts and reference-distance statistics
//! matching the paper's published characterizations (Tables 1 and 3).
//!
//! The generators capture the *structures* that matter to a cache policy:
//!
//! * **Iterative ML** (KMeans, regressions, SVM, MF, DT): a cached parsed
//!   dataset referenced by every iteration job, plus auxiliary cached RDDs
//!   (norms, samples, seed models) created early and referenced much later —
//!   the source of KMeans' large average job distance.
//! * **Pregel-style graph computation** (PageRank, CC, SCC, LP, PO, SVD++,
//!   SP): a superstep loop where each step shuffles messages, joins them
//!   into a new cached vertex generation and runs a convergence-check
//!   action; older vertex generations may be re-read `lag` supersteps later
//!   (snapshot comparisons), producing the very large stage distances of
//!   LabelPropagation and StronglyConnectedComponents.
//! * **Batch ETL** (HiBench Sort/WordCount/TeraSort): shuffle pipelines with
//!   little or no caching — the near-zero distances that made the paper drop
//!   HiBench.

pub mod batch;
pub mod catalog;
pub mod common;
pub mod graph;
pub mod ml;

pub use catalog::{JobType, Workload};
pub use common::{WorkloadParams, GB, KB, MB};
