//! Graph-computation workloads: the GraphX/Pregel family plus HiBench
//! PageRank.
//!
//! All the SparkBench graph workloads run on GraphX's `Pregel` operator: a
//! superstep loop that shuffles messages, joins them into a new cached
//! vertex generation, and counts the remaining messages (one job per
//! superstep). The knobs per workload — supersteps, aggregation phases,
//! snapshot lag — are tuned so the resulting DAGs match the paper's Table 1
//! reference distances and Table 3 job/stage/RDD counts.

use crate::common::{build_pregel, cost, narrow_chain, PregelConfig, WorkloadParams, GB, KB, MB};
use refdist_dag::{AppBuilder, AppSpec, StorageLevel};

fn pregel_app(name: &str, p: &WorkloadParams, input_total: u64, cfg: PregelConfig) -> AppSpec {
    let mut b = AppBuilder::new(name);
    let input_block = p.block(input_total);
    let input = b.input(
        "hdfs_edges",
        cfg.partitions,
        input_block,
        cost(input_block, 5_000),
    );
    build_pregel(&mut b, input, &cfg);
    b.build()
}

fn scaled(p: &WorkloadParams, total: u64) -> u64 {
    p.block(total)
}

/// PageRank (PR): 934 MB input, I/O intensive (Table 3: 7 jobs, 69 stage
/// appearances, 21 active, 95 RDDs; Table 1: avg stage distance 6.08).
pub fn pagerank(p: &WorkloadParams) -> AppSpec {
    pregel_app(
        "PageRank",
        p,
        934 * MB,
        PregelConfig {
            partitions: p.partitions,
            vertex_block: scaled(p, 600 * MB),
            edge_block: scaled(p, 900 * MB),
            msg_block: scaled(p, 500 * MB),
            supersteps: p.iters(11),
            vertex_us: cost(scaled(p, 600 * MB), 3_000),
            msg_us: cost(scaled(p, 500 * MB), 3_000),
            long_ref_lag: 7,
            job_every: 2,
            phases: 1,
            chain: 6,
            final_reads_first: true,
            vertex_storage: StorageLevel::MemoryAndDisk,
        },
    )
}

/// ConnectedComponents (CC): 2.4 GB input, I/O intensive (6 jobs, 50
/// appearances, 19 active, 85 RDDs; avg stage distance 5.31, max 16).
pub fn connected_components(p: &WorkloadParams) -> AppSpec {
    pregel_app(
        "ConnectedComponents",
        p,
        (2.4 * GB as f64) as u64,
        PregelConfig {
            partitions: p.partitions,
            vertex_block: scaled(p, GB),
            edge_block: scaled(p, 2 * GB),
            msg_block: scaled(p, 600 * MB),
            supersteps: p.iters(5),
            vertex_us: cost(scaled(p, GB), 2_500),
            msg_us: cost(scaled(p, 600 * MB), 2_500),
            long_ref_lag: 3,
            job_every: 1,
            phases: 2,
            chain: 8,
            final_reads_first: true,
            vertex_storage: StorageLevel::MemoryAndDisk,
        },
    )
}

/// StronglyConnectedComponents (SCC): 81 MB input but an 839-stage DAG
/// (26 jobs, 93 active stages, 560 RDDs; the largest distances of the
/// suite: avg stage 29.96, max 90).
pub fn strongly_connected_components(p: &WorkloadParams) -> AppSpec {
    pregel_app(
        "StronglyConnectedComponents",
        p,
        81 * MB,
        PregelConfig {
            partitions: p.partitions,
            vertex_block: scaled(p, 120 * MB),
            edge_block: scaled(p, 80 * MB),
            msg_block: scaled(p, 80 * MB),
            supersteps: p.iters(24),
            vertex_us: cost(scaled(p, 120 * MB), 3_000),
            msg_us: cost(scaled(p, 80 * MB), 3_000),
            long_ref_lag: 8,
            job_every: 1,
            phases: 3,
            chain: 16,
            final_reads_first: true,
            vertex_storage: StorageLevel::MemoryAndDisk,
        },
    )
}

/// LabelPropagation (LP): 1.3 MB input, 858-stage DAG (23 jobs, 87 active,
/// 377 RDDs; avg stage distance 28.37, max 85).
pub fn label_propagation(p: &WorkloadParams) -> AppSpec {
    pregel_app(
        "LabelPropagation",
        p,
        (1.3 * MB as f64) as u64,
        PregelConfig {
            partitions: p.partitions,
            vertex_block: scaled(p, 12 * MB).max(4 * KB),
            edge_block: scaled(p, 4 * MB).max(4 * KB),
            msg_block: scaled(p, 8 * MB).max(4 * KB),
            supersteps: p.iters(21),
            vertex_us: cost(scaled(p, 12 * MB), 30_000),
            msg_us: cost(scaled(p, 8 * MB), 30_000),
            long_ref_lag: 7,
            job_every: 1,
            phases: 3,
            chain: 12,
            final_reads_first: true,
            vertex_storage: StorageLevel::MemoryAndDisk,
        },
    )
}

/// PregelOperation (PO): 1.4 GB input (17 jobs, 467 appearances, 65 active,
/// 283 RDDs; avg stage distance 5.45, max 16).
pub fn pregel_operation(p: &WorkloadParams) -> AppSpec {
    pregel_app(
        "PregelOperation",
        p,
        (1.4 * GB as f64) as u64,
        PregelConfig {
            partitions: p.partitions,
            vertex_block: scaled(p, 700 * MB),
            edge_block: scaled(p, (1.2 * GB as f64) as u64),
            msg_block: scaled(p, 500 * MB),
            supersteps: p.iters(15),
            vertex_us: cost(scaled(p, 700 * MB), 2_500),
            msg_us: cost(scaled(p, 500 * MB), 2_500),
            long_ref_lag: 3,
            job_every: 1,
            phases: 3,
            chain: 13,
            final_reads_first: false,
            vertex_storage: StorageLevel::MemoryAndDisk,
        },
    )
}

/// SVD++: 453 MB input, I/O intensive (14 jobs, 103 appearances, 27 active,
/// 105 RDDs; avg stage distance 6.82, max 23).
pub fn svd_plus_plus(p: &WorkloadParams) -> AppSpec {
    pregel_app(
        "SVDPlusPlus",
        p,
        453 * MB,
        PregelConfig {
            partitions: p.partitions,
            vertex_block: scaled(p, 400 * MB),
            edge_block: scaled(p, 400 * MB),
            msg_block: scaled(p, 600 * MB),
            supersteps: p.iters(12),
            vertex_us: cost(scaled(p, 400 * MB), 4_000),
            msg_us: cost(scaled(p, 600 * MB), 4_000),
            long_ref_lag: 4,
            job_every: 1,
            phases: 1,
            chain: 5,
            final_reads_first: true,
            vertex_storage: StorageLevel::MemoryAndDisk,
        },
    )
}

/// ShortestPaths (SP): 2.9 GB input, mixed (3 jobs, 8 appearances, 7 active,
/// 34 RDDs; tiny distances: avg stage 1.19, max 4).
pub fn shortest_paths(p: &WorkloadParams) -> AppSpec {
    pregel_app(
        "ShortestPaths",
        p,
        (2.9 * GB as f64) as u64,
        PregelConfig {
            partitions: p.partitions,
            vertex_block: scaled(p, (1.5 * GB as f64) as u64),
            edge_block: scaled(p, 2 * GB),
            msg_block: scaled(p, GB),
            supersteps: p.iters(2),
            vertex_us: cost(scaled(p, (1.5 * GB as f64) as u64), 3_000),
            msg_us: cost(scaled(p, GB), 3_000),
            long_ref_lag: 0,
            job_every: 1,
            phases: 1,
            chain: 9,
            final_reads_first: false,
            vertex_storage: StorageLevel::MemoryAndDisk,
        },
    )
}

/// TriangleCount (TC): 268 MB input but 9.4 GB of shuffle (2 jobs, 11
/// stages, 74 RDDs; refs/RDD 0.80 — most lineage is uncached one-shot
/// shuffles).
pub fn triangle_count(p: &WorkloadParams) -> AppSpec {
    let edge_block = p.block(268 * MB);
    let big = p.block(3 * GB); // the triangle-candidate explosion
    let us = cost(big, 2_000);
    let mut b = AppBuilder::new("TriangleCount");

    let input = b.input(
        "hdfs_edges",
        p.partitions,
        edge_block,
        cost(edge_block, 5_000),
    );
    let parsed = narrow_chain(
        &mut b,
        "parse",
        input,
        8,
        edge_block,
        cost(edge_block, 4_000),
    );
    let edges = b.narrow(
        "canonical_edges",
        parsed,
        edge_block,
        cost(edge_block, 4_000),
    );
    b.persist(edges, StorageLevel::MemoryAndDisk);

    // Job 0: build + count the adjacency sets (3 shuffles).
    let grouped = b.shuffle("neighbors", &[edges], p.partitions, big / 4, us);
    let chain1 = narrow_chain(&mut b, "adj_expr", grouped, 10, big / 4, us / 4);
    let adj = b.narrow("adjacency", chain1, big / 4, us / 4);
    b.persist(adj, StorageLevel::MemoryAndDisk);
    let deg = b.shuffle("degrees", &[adj], p.partitions, edge_block, us / 8);
    let deg2 = narrow_chain(&mut b, "deg_expr", deg, 4, edge_block, us / 8);
    let hist = b.shuffle("degree_hist", &[deg2], p.partitions, edge_block / 4, us / 8);
    b.action("count_vertices", hist);

    // Job 1: triangle enumeration — the huge shuffles.
    let cand0 = b.narrow_multi("candidates", &[adj, edges], big, us);
    let cand = narrow_chain(&mut b, "cand_expr", cand0, 16, big, us / 4);
    let matched = b.shuffle("match", &[cand], p.partitions, big / 2, us);
    let closed = narrow_chain(&mut b, "close_expr", matched, 8, big / 2, us / 4);
    let verified = b.shuffle("verify", &[closed], p.partitions, big / 4, us / 2);
    let tri0 = narrow_chain(&mut b, "tri_expr", verified, 8, big / 8, us / 4);
    let counts = b.shuffle("tri_counts", &[tri0], p.partitions, edge_block, us / 8);
    let total = b.shuffle("tri_total", &[counts], p.partitions, edge_block / 8, us / 8);
    b.action("count_triangles", total);
    b.build()
}

/// HiBench PageRank: MapReduce-style rank iterations chained through
/// shuffles *without caching* — the near-zero reference distances of
/// Table 1 (avg stage distance 0.09).
pub fn hibench_pagerank(p: &WorkloadParams) -> AppSpec {
    let block = p.block(GB);
    let us = cost(block, 4_000);
    let mut b = AppBuilder::new("HiBench-PageRank");
    let input = b.input("hdfs_links", p.partitions, block, cost(block, 5_000));
    // MR-style: links are NOT cached; every iteration re-reads them through
    // the shuffle pipeline, exactly like the Hadoop-ported HiBench job.
    let links = b.narrow("links", input, block, us);
    // The one small cached RDD (dangling-node list), referenced once shortly
    // after creation — HiBench PageRank's 0.09 average stage distance.
    let dangling = b.narrow("dangling", links, (block / 64).max(1), us / 16);
    b.persist(dangling, StorageLevel::MemoryAndDisk);
    let init = b.narrow_multi("rank_seed", &[links, dangling], block / 2, us);
    let mut ranks = b.shuffle("ranks_0", &[init], p.partitions, block / 2, us);
    b.action("seed", ranks);
    for i in 0..p.iters(3) {
        let contribs = b.narrow_multi(format!("contribs_{i}"), &[ranks, links], block / 2, us);
        let adjusted = if i == 0 {
            // First iteration corrects for dangling mass: the single re-use.
            b.narrow_multi("dangling_fix", &[contribs, dangling], block / 2, us)
        } else {
            contribs
        };
        ranks = b.shuffle(
            format!("ranks_{}", i + 1),
            &[adjusted],
            p.partitions,
            block / 2,
            us,
        );
        b.action(format!("iter_{i}"), ranks);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::{AppPlan, DistanceStats, RefAnalyzer};

    fn stats(spec: &AppSpec) -> (usize, usize, usize, usize, DistanceStats) {
        let plan = AppPlan::build(spec);
        let profile = RefAnalyzer::new(spec, &plan).profile();
        let d = RefAnalyzer::distance_stats(&profile);
        (
            plan.jobs.len(),
            plan.total_stage_appearances(),
            plan.active_stage_count(),
            spec.rdds.len(),
            d,
        )
    }

    #[test]
    fn pagerank_shape() {
        let (jobs, appearances, active, rdds, d) = stats(&pagerank(&WorkloadParams::small()));
        assert!((6..=8).contains(&jobs), "jobs {jobs}");
        assert!(appearances > active, "{appearances} vs {active}");
        assert!((18..=30).contains(&active), "active {active}");
        assert!((80..=115).contains(&rdds), "rdds {rdds}");
        assert!(
            d.avg_stage > 2.5 && d.avg_stage < 12.0,
            "avg stage {}",
            d.avg_stage
        );
    }

    #[test]
    fn scc_has_the_largest_distances() {
        let (jobs, appearances, active, rdds, d) =
            stats(&strongly_connected_components(&WorkloadParams::small()));
        assert!((24..=27).contains(&jobs), "jobs {jobs}");
        assert!(
            (700..=1100).contains(&appearances),
            "appearances {appearances}"
        );
        assert!((90..=110).contains(&active), "active {active}");
        assert!(rdds > 450, "rdds {rdds}");
        assert!(d.avg_stage > 8.0, "avg stage {}", d.avg_stage);
        assert!(d.max_stage > 70, "max stage {}", d.max_stage);
        assert!(d.avg_job > 2.5, "avg job {}", d.avg_job);
    }

    #[test]
    fn lp_is_long_distance() {
        let (jobs, appearances, active, rdds, d) =
            stats(&label_propagation(&WorkloadParams::small()));
        assert!((21..=24).contains(&jobs), "jobs {jobs}");
        assert!(
            (600..=1000).contains(&appearances),
            "appearances {appearances}"
        );
        assert!((75..=100).contains(&active), "active {active}");
        assert!((300..=450).contains(&rdds), "rdds {rdds}");
        assert!(d.avg_stage > 8.0, "avg stage {}", d.avg_stage);
        assert!(d.max_stage > 60, "max stage {}", d.max_stage);
    }

    #[test]
    fn sp_is_short_distance() {
        let (jobs, _, active, rdds, d) = stats(&shortest_paths(&WorkloadParams::small()));
        assert_eq!(jobs, 3);
        assert!((6..=9).contains(&active), "active {active}");
        assert!((25..=45).contains(&rdds), "rdds {rdds}");
        assert!(d.avg_stage < 4.0, "avg stage {}", d.avg_stage);
        assert!(d.max_job <= 2, "max job {}", d.max_job);
    }

    #[test]
    fn triangle_count_two_jobs() {
        let (jobs, _, active, rdds, d) = stats(&triangle_count(&WorkloadParams::small()));
        assert_eq!(jobs, 2);
        assert!((8..=13).contains(&active), "active {active}");
        assert!((55..=80).contains(&rdds), "rdds {rdds}");
        assert!(d.max_job <= 1, "max job {}", d.max_job);
    }

    #[test]
    fn cc_and_po_mid_range() {
        let (jobs_cc, _, active_cc, _, d_cc) =
            stats(&connected_components(&WorkloadParams::small()));
        assert!((5..=7).contains(&jobs_cc), "cc jobs {jobs_cc}");
        assert!((14..=24).contains(&active_cc), "cc active {active_cc}");
        assert!(d_cc.avg_stage > 2.0 && d_cc.avg_stage < 10.0);

        let (jobs_po, _, active_po, rdds_po, d_po) =
            stats(&pregel_operation(&WorkloadParams::small()));
        assert!((15..=18).contains(&jobs_po), "po jobs {jobs_po}");
        assert!((55..=75).contains(&active_po), "po active {active_po}");
        assert!(rdds_po > 230, "po rdds {rdds_po}");
        assert!(
            d_po.avg_stage > 3.0 && d_po.avg_stage < 10.0,
            "po avg {}",
            d_po.avg_stage
        );
    }

    #[test]
    fn svdpp_shape() {
        let (jobs, _, active, rdds, d) = stats(&svd_plus_plus(&WorkloadParams::small()));
        assert!((12..=15).contains(&jobs), "jobs {jobs}");
        assert!((24..=32).contains(&active), "active {active}");
        assert!((75..=120).contains(&rdds), "rdds {rdds}");
        assert!(d.avg_stage > 3.0, "avg stage {}", d.avg_stage);
    }

    #[test]
    fn hibench_pagerank_is_nearly_distance_free() {
        let (_, _, _, _, d) = stats(&hibench_pagerank(&WorkloadParams::small()));
        assert!(d.avg_stage <= 2.5, "avg stage {}", d.avg_stage);
        assert!(d.max_job <= 1);
    }

    #[test]
    fn iterations_scale_pregel_workloads() {
        let base = pagerank(&WorkloadParams::small());
        let tripled = pagerank(&WorkloadParams {
            iterations: Some(33),
            ..WorkloadParams::small()
        });
        assert!(tripled.num_jobs() > base.num_jobs());
        assert!(tripled.rdds.len() > base.rdds.len());
    }

    #[test]
    fn all_graph_specs_validate() {
        let p = WorkloadParams::small();
        for spec in [
            pagerank(&p),
            connected_components(&p),
            strongly_connected_components(&p),
            label_propagation(&p),
            pregel_operation(&p),
            svd_plus_plus(&p),
            shortest_paths(&p),
            triangle_count(&p),
            hibench_pagerank(&p),
        ] {
            spec.validate().unwrap();
        }
    }
}
