//! HiBench batch/ETL workloads: Sort, WordCount, TeraSort.
//!
//! Shuffle pipelines with essentially no cached-RDD reuse — the paper
//! measured zero (Sort, WordCount) or near-zero (TeraSort: 0.22) reference
//! distances for them and dropped HiBench from the main evaluation. They are
//! kept here to regenerate Table 1 in full and as negative controls: a
//! DAG-aware policy should neither help nor hurt them.

use crate::common::{cost, narrow_chain, WorkloadParams, GB};
use refdist_dag::{AppBuilder, AppSpec, StorageLevel};

/// HiBench Sort: one shuffle, no caching. Distances: 0 / 0.
pub fn hibench_sort(p: &WorkloadParams) -> AppSpec {
    let block = p.block(3 * GB);
    let us = cost(block, 2_000);
    let mut b = AppBuilder::new("HiBench-Sort");
    let input = b.input("hdfs_input", p.partitions, block, cost(block, 3_000));
    let kv = b.narrow("key_value", input, block, us);
    let sorted = b.shuffle("sorted", &[kv], p.partitions, block, us);
    b.action("write_output", sorted);
    b.build()
}

/// HiBench WordCount: map + reduceByKey, no caching. Distances: 0 / 0.
pub fn hibench_wordcount(p: &WorkloadParams) -> AppSpec {
    let block = p.block(3 * GB);
    let us = cost(block, 4_000);
    let mut b = AppBuilder::new("HiBench-WordCount");
    let input = b.input("hdfs_input", p.partitions, block, cost(block, 3_000));
    let words = narrow_chain(&mut b, "tokenize", input, 2, block, us);
    let counts = b.shuffle("counts", &[words], p.partitions, block / 8, us / 2);
    b.action("write_output", counts);
    b.build()
}

/// HiBench TeraSort: a sampling job computes the range partitioner (the
/// sample is cached and referenced once in the next job — the 0.22 average
/// job distance of Table 1), then the sort job.
pub fn hibench_terasort(p: &WorkloadParams) -> AppSpec {
    let block = p.block(3 * GB);
    let us = cost(block, 2_500);
    let mut b = AppBuilder::new("HiBench-TeraSort");
    let input = b.input("hdfs_input", p.partitions, block, cost(block, 3_000));
    let records = b.narrow("records", input, block, us);
    b.persist(records, StorageLevel::MemoryAndDisk);
    // Job 0: sample the key distribution.
    let sample = b.shuffle(
        "key_sample",
        &[records],
        p.partitions,
        (block / 64).max(1),
        us / 8,
    );
    b.action("sample", sample);
    // Job 1: range-partition and sort, re-reading the cached records.
    let partitioned = b.shuffle("range_partitioned", &[records], p.partitions, block, us);
    let sorted = b.narrow("sorted_runs", partitioned, block, us);
    b.action("write_output", sorted);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::{AppPlan, RefAnalyzer};

    fn distance_stats(spec: &AppSpec) -> refdist_dag::DistanceStats {
        let plan = AppPlan::build(spec);
        let profile = RefAnalyzer::new(spec, &plan).profile();
        RefAnalyzer::distance_stats(&profile)
    }

    #[test]
    fn sort_and_wordcount_have_zero_distances() {
        let p = WorkloadParams::small();
        for spec in [hibench_sort(&p), hibench_wordcount(&p)] {
            let d = distance_stats(&spec);
            assert_eq!(d.num_gaps, 0, "{}", spec.name);
            assert_eq!(d.avg_stage, 0.0);
            assert_eq!(d.max_job, 0);
            assert_eq!(spec.cached_rdds().count(), 0);
        }
    }

    #[test]
    fn sort_is_one_job_two_stages() {
        let spec = hibench_sort(&WorkloadParams::small());
        let plan = AppPlan::build(&spec);
        assert_eq!(plan.jobs.len(), 1);
        assert_eq!(plan.active_stage_count(), 2);
    }

    #[test]
    fn terasort_has_tiny_reuse() {
        let spec = hibench_terasort(&WorkloadParams::small());
        let plan = AppPlan::build(&spec);
        assert_eq!(plan.jobs.len(), 2);
        let d = distance_stats(&spec);
        // One cached RDD referenced once across the job boundary.
        assert_eq!(d.num_gaps, 1);
        assert_eq!(d.max_job, 1);
        assert!(d.max_stage <= 3);
    }

    #[test]
    fn batch_specs_validate() {
        let p = WorkloadParams::small();
        for spec in [
            hibench_sort(&p),
            hibench_wordcount(&p),
            hibench_terasort(&p),
        ] {
            spec.validate().unwrap();
        }
    }
}
