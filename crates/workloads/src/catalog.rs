//! The workload catalog: names, categories, job types and dispatch.
//!
//! Mirrors the rows of the paper's Table 3 (SparkBench) and the HiBench
//! section of Table 1.

use crate::common::WorkloadParams;
use crate::{batch, graph, ml};
use refdist_dag::AppSpec;
use std::fmt;

/// The paper's workload categorization (Table 3 "Job Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobType {
    /// Dominated by task compute.
    CpuIntensive,
    /// Dominated by disk/network transfer.
    IoIntensive,
    /// In between.
    Mixed,
}

impl fmt::Display for JobType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobType::CpuIntensive => write!(f, "CPU intensive"),
            JobType::IoIntensive => write!(f, "I/O intensive"),
            JobType::Mixed => write!(f, "Mixed"),
        }
    }
}

/// Every workload in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Workload {
    // SparkBench (Table 3).
    KMeans,
    LinearRegression,
    LogisticRegression,
    Svm,
    DecisionTree,
    MatrixFactorization,
    PageRank,
    TriangleCount,
    ShortestPaths,
    LabelPropagation,
    SvdPlusPlus,
    ConnectedComponents,
    StronglyConnectedComponents,
    PregelOperation,
    // HiBench (Table 1 only).
    HiSort,
    HiWordCount,
    HiTeraSort,
    HiPageRank,
    HiBayes,
    HiKMeans,
}

impl Workload {
    /// The 14 SparkBench workloads of the main evaluation.
    pub fn sparkbench() -> &'static [Workload] {
        use Workload::*;
        &[
            KMeans,
            LinearRegression,
            LogisticRegression,
            Svm,
            DecisionTree,
            MatrixFactorization,
            PageRank,
            TriangleCount,
            ShortestPaths,
            LabelPropagation,
            SvdPlusPlus,
            ConnectedComponents,
            StronglyConnectedComponents,
            PregelOperation,
        ]
    }

    /// The 6 HiBench workloads profiled in Table 1.
    pub fn hibench() -> &'static [Workload] {
        use Workload::*;
        &[
            HiSort,
            HiWordCount,
            HiTeraSort,
            HiPageRank,
            HiBayes,
            HiKMeans,
        ]
    }

    /// Short name used in the paper's figures (KM, LinR, ...).
    pub fn short_name(self) -> &'static str {
        use Workload::*;
        match self {
            KMeans => "KM",
            LinearRegression => "LinR",
            LogisticRegression => "LogR",
            Svm => "SVM",
            DecisionTree => "DT",
            MatrixFactorization => "MF",
            PageRank => "PR",
            TriangleCount => "TC",
            ShortestPaths => "SP",
            LabelPropagation => "LP",
            SvdPlusPlus => "SVD++",
            ConnectedComponents => "CC",
            StronglyConnectedComponents => "SCC",
            PregelOperation => "PO",
            HiSort => "Sort",
            HiWordCount => "WordCount",
            HiTeraSort => "TeraSort",
            HiPageRank => "PageRank(Hi)",
            HiBayes => "Bayes",
            HiKMeans => "K-Means(Hi)",
        }
    }

    /// Full name as in Table 3.
    pub fn full_name(self) -> &'static str {
        use Workload::*;
        match self {
            KMeans => "K-Means",
            LinearRegression => "Linear Regression",
            LogisticRegression => "Logistic Regression",
            Svm => "SVM",
            DecisionTree => "Decision Tree",
            MatrixFactorization => "Matrix Factorization",
            PageRank => "Page Rank",
            TriangleCount => "Triangle Count",
            ShortestPaths => "Shortest Paths",
            LabelPropagation => "Label Propagation",
            SvdPlusPlus => "SVD++",
            ConnectedComponents => "ConnectedComponent",
            StronglyConnectedComponents => "StronglyConnectedComponent",
            PregelOperation => "PregelOperation",
            HiSort => "Sort",
            HiWordCount => "WordCount",
            HiTeraSort => "TeraSort",
            HiPageRank => "PageRank",
            HiBayes => "Bayes",
            HiKMeans => "K-Means",
        }
    }

    /// Category column of Table 3.
    pub fn category(self) -> &'static str {
        use Workload::*;
        match self {
            KMeans | LogisticRegression | Svm | MatrixFactorization => "Machine Learning",
            PageRank => "Web Search",
            TriangleCount | SvdPlusPlus => "Graph Computation",
            LinearRegression
            | DecisionTree
            | ShortestPaths
            | LabelPropagation
            | ConnectedComponents
            | StronglyConnectedComponents
            | PregelOperation => "Other Workloads",
            HiSort | HiWordCount | HiTeraSort | HiPageRank | HiBayes | HiKMeans => "HiBench",
        }
    }

    /// Job type column of Table 3.
    pub fn job_type(self) -> JobType {
        use Workload::*;
        match self {
            LinearRegression | LogisticRegression | Svm | DecisionTree => JobType::CpuIntensive,
            PageRank
            | LabelPropagation
            | SvdPlusPlus
            | ConnectedComponents
            | StronglyConnectedComponents
            | PregelOperation => JobType::IoIntensive,
            KMeans | MatrixFactorization | TriangleCount | ShortestPaths => JobType::Mixed,
            HiSort | HiWordCount | HiTeraSort | HiPageRank => JobType::IoIntensive,
            HiBayes | HiKMeans => JobType::Mixed,
        }
    }

    /// Whether the workload exposes an iterations parameter (paper §5.9;
    /// DecisionTree notably does not react to it).
    pub fn has_iterations(self) -> bool {
        use Workload::*;
        !matches!(
            self,
            DecisionTree | TriangleCount | HiSort | HiWordCount | HiTeraSort
        )
    }

    /// The generator's default iteration count, when the workload has one
    /// (used by the §5.9 iterations experiment to triple it).
    pub fn default_iterations(self) -> Option<u32> {
        use Workload::*;
        match self {
            KMeans => Some(14),
            LinearRegression => Some(3),
            LogisticRegression => Some(4),
            Svm => Some(7),
            MatrixFactorization => Some(3),
            PageRank => Some(11),
            ShortestPaths => Some(2),
            LabelPropagation => Some(21),
            SvdPlusPlus => Some(12),
            ConnectedComponents => Some(5),
            StronglyConnectedComponents => Some(24),
            PregelOperation => Some(15),
            HiPageRank => Some(3),
            HiBayes => Some(4),
            HiKMeans => Some(17),
            DecisionTree | TriangleCount | HiSort | HiWordCount | HiTeraSort => None,
        }
    }

    /// Look up a workload by its short name (case-insensitive).
    pub fn from_short_name(name: &str) -> Option<Workload> {
        Workload::sparkbench()
            .iter()
            .chain(Workload::hibench())
            .copied()
            .find(|w| w.short_name().eq_ignore_ascii_case(name))
    }

    /// Generate the application DAG.
    pub fn build(self, p: &WorkloadParams) -> AppSpec {
        use Workload::*;
        match self {
            KMeans => ml::kmeans(p),
            LinearRegression => ml::linear_regression(p),
            LogisticRegression => ml::logistic_regression(p),
            Svm => ml::svm(p),
            DecisionTree => ml::decision_tree(p),
            MatrixFactorization => ml::matrix_factorization(p),
            PageRank => graph::pagerank(p),
            TriangleCount => graph::triangle_count(p),
            ShortestPaths => graph::shortest_paths(p),
            LabelPropagation => graph::label_propagation(p),
            SvdPlusPlus => graph::svd_plus_plus(p),
            ConnectedComponents => graph::connected_components(p),
            StronglyConnectedComponents => graph::strongly_connected_components(p),
            PregelOperation => graph::pregel_operation(p),
            HiSort => batch::hibench_sort(p),
            HiWordCount => batch::hibench_wordcount(p),
            HiTeraSort => batch::hibench_terasort(p),
            HiPageRank => graph::hibench_pagerank(p),
            HiBayes => ml::hibench_bayes(p),
            HiKMeans => ml::hibench_kmeans(p),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_counts() {
        assert_eq!(Workload::sparkbench().len(), 14);
        assert_eq!(Workload::hibench().len(), 6);
    }

    #[test]
    fn all_workloads_build_and_validate() {
        let p = WorkloadParams::small();
        for &w in Workload::sparkbench().iter().chain(Workload::hibench()) {
            let spec = w.build(&p);
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.short_name()));
            assert!(spec.num_jobs() >= 1);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Workload::sparkbench()
            .iter()
            .chain(Workload::hibench())
            .map(|w| w.short_name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn io_intensive_set_matches_paper() {
        // §5.10: PageRank, SVD++, CC and PO are called out as I/O intensive.
        for w in [
            Workload::PageRank,
            Workload::SvdPlusPlus,
            Workload::ConnectedComponents,
            Workload::PregelOperation,
        ] {
            assert_eq!(w.job_type(), JobType::IoIntensive);
        }
    }

    #[test]
    fn dt_and_tc_lack_iterations() {
        assert!(!Workload::DecisionTree.has_iterations());
        assert!(!Workload::TriangleCount.has_iterations());
        assert!(Workload::KMeans.has_iterations());
    }

    #[test]
    fn from_short_name_roundtrips() {
        for &w in Workload::sparkbench().iter().chain(Workload::hibench()) {
            assert_eq!(Workload::from_short_name(w.short_name()), Some(w));
            assert_eq!(
                Workload::from_short_name(&w.short_name().to_lowercase()),
                Some(w)
            );
        }
        assert_eq!(Workload::from_short_name("nope"), None);
    }

    #[test]
    fn default_iterations_agree_with_has_iterations() {
        for &w in Workload::sparkbench().iter().chain(Workload::hibench()) {
            assert_eq!(
                w.default_iterations().is_some(),
                w.has_iterations(),
                "{}",
                w.short_name()
            );
        }
    }
}
