//! Machine-learning workloads: the SparkBench ML family plus HiBench Bayes
//! and KMeans.
//!
//! All follow MLlib's driver pattern: parse + cache the training set, run an
//! initialization job (sampling / seeding, which also materializes auxiliary
//! cached RDDs such as row norms or the seed model), then one job per
//! optimizer iteration reading the cached set, and a final evaluation job
//! that re-reads the auxiliary RDDs — the source of the long reference
//! distances in the paper's Table 1 (e.g. KMeans: average job distance 5.15,
//! maximum 16).

use crate::common::{build_ml, cost, narrow_chain, MlConfig, WorkloadParams, GB};
use refdist_dag::{AppBuilder, AppSpec, StorageLevel};

/// K-Means (KM): 5.5 GB input, 17 jobs, mixed CPU/I-O.
///
/// Single-stage iterations (MLlib's `collectAsMap` on narrowly mapped
/// points) with five auxiliary cached RDDs (norms, seed centers from the
/// kmeans|| rounds) re-read at evaluation time.
pub fn kmeans(p: &WorkloadParams) -> AppSpec {
    let mut b = AppBuilder::new("KMeans");
    build_ml(
        &mut b,
        &MlConfig {
            input_total: (5.5 * GB as f64) as u64,
            partitions: p.partitions,
            parse_us_per_mb: 8_000,
            iter_us_per_mb: 25_000,
            iterations: p.iters(14),
            single_stage_iters: true,
            aux_cached: 5,
            chain: 1,
            block: Some(p.block((5.5 * GB as f64) as u64)),
        },
    );
    b.build()
}

/// Linear Regression (LinR): 7.7 GB input, 6 jobs, CPU intensive.
pub fn linear_regression(p: &WorkloadParams) -> AppSpec {
    let mut b = AppBuilder::new("LinearRegression");
    build_ml(
        &mut b,
        &MlConfig {
            input_total: (7.7 * GB as f64) as u64,
            partitions: p.partitions,
            parse_us_per_mb: 8_000,
            iter_us_per_mb: 150_000,
            iterations: p.iters(3),
            single_stage_iters: true,
            aux_cached: 2,
            chain: 4,
            block: Some(p.block((7.7 * GB as f64) as u64)),
        },
    );
    b.build()
}

/// Logistic Regression (LogR): 11.1 GB input, 7 jobs, CPU intensive.
pub fn logistic_regression(p: &WorkloadParams) -> AppSpec {
    let mut b = AppBuilder::new("LogisticRegression");
    build_ml(
        &mut b,
        &MlConfig {
            input_total: (11.1 * GB as f64) as u64,
            partitions: p.partitions,
            parse_us_per_mb: 8_000,
            iter_us_per_mb: 140_000,
            iterations: p.iters(4),
            single_stage_iters: true,
            aux_cached: 2,
            chain: 3,
            block: Some(p.block((11.1 * GB as f64) as u64)),
        },
    );
    b.build()
}

/// SVM: 3.8 GB input, 10 jobs, CPU intensive with a large shuffle
/// (3.2 GB R/W in Table 3), hence two-stage iterations chained on the
/// previous model — later jobs' DAGs re-include earlier stages as skipped
/// (28 stage appearances vs 17 active).
pub fn svm(p: &WorkloadParams) -> AppSpec {
    let total = (3.8 * GB as f64) as u64;
    let block = p.block(total);
    let iter_us = cost(block, 90_000);
    let mut b = AppBuilder::new("SVM");

    let input = b.input("hdfs_input", p.partitions, block, cost(block, 8_000));
    let data = b.narrow("points", input, block, cost(block, 8_000));
    b.persist(data, StorageLevel::MemoryAndDisk);
    b.action("count", data);

    // Train/test split: both cached.
    let train = b.narrow("train", data, block * 8 / 10, iter_us / 8);
    b.persist(train, StorageLevel::MemoryAndDisk);
    let test = b.narrow("test", data, block * 2 / 10, iter_us / 8);
    b.persist(test, StorageLevel::MemoryAndDisk);
    let split = b.shuffle(
        "split_sample",
        &[train, test],
        p.partitions,
        (block / 32).max(1),
        iter_us / 8,
    );
    b.action("init_split", split);

    // Chained two-stage gradient iterations: each gradient reads the cached
    // training set and the previous iteration's reduced model.
    let mut model = split;
    for i in 0..p.iters(7) {
        let grad0 = b.narrow_multi(
            format!("grad_{i}"),
            &[train, model],
            (block / 4).max(1),
            iter_us,
        );
        let grad = narrow_chain(
            &mut b,
            &format!("gexpr_{i}"),
            grad0,
            2,
            (block / 4).max(1),
            iter_us / 8,
        );
        model = b.shuffle(
            format!("model_{i}"),
            &[grad],
            p.partitions,
            (block / 2).max(1), // large shuffle: SVM's 3.2 GB R/W
            iter_us / 8,
        );
        b.action(format!("iter_{i}"), model);
    }

    // Validation on the held-out set against the final model.
    let scored = b.narrow_multi("score", &[test, model], (block / 8).max(1), iter_us / 2);
    let metrics = b.shuffle(
        "metrics",
        &[scored],
        p.partitions,
        (block / 64).max(1),
        iter_us / 8,
    );
    b.action("validate", metrics);
    b.build()
}

/// Decision Tree (DT): 3.5 GB input, 10 jobs, CPU intensive.
///
/// One job per tree level; the per-level aggregate is a two-stage job over
/// the cached, binned training data. DT famously ignores the iterations
/// parameter (paper §5.9: "no impact on either"), so `p.iterations` is not
/// consulted: the tree depth is fixed by the model.
pub fn decision_tree(p: &WorkloadParams) -> AppSpec {
    let total = (3.5 * GB as f64) as u64;
    let block = p.block(total);
    let level_us = cost(block, 160_000);
    let mut b = AppBuilder::new("DecisionTree");

    let input = b.input("hdfs_input", p.partitions, block, cost(block, 8_000));
    let raw = b.narrow("labeled_points", input, block, cost(block, 8_000));
    // Binned features: the cached dataset every level reads.
    let binned = b.narrow("tree_input", raw, block, cost(block, 10_000));
    b.persist(binned, StorageLevel::MemoryAndDisk);
    // Feature metadata: cached early, referenced by the final model job.
    let meta = b.narrow("feature_meta", raw, (block / 64).max(1), level_us / 16);
    b.persist(meta, StorageLevel::MemoryAndDisk);
    let meta_agg = b.shuffle(
        "meta_agg",
        &[meta],
        p.partitions,
        (block / 64).max(1),
        level_us / 16,
    );
    b.action("find_splits", meta_agg);
    b.action("count", binned);

    const LEVELS: u32 = 7;
    for level in 0..LEVELS {
        let stats0 = b.narrow(
            format!("level_{level}_stats"),
            binned,
            (block / 6).max(1),
            level_us,
        );
        let stats = narrow_chain(
            &mut b,
            &format!("lexpr_{level}"),
            stats0,
            1,
            (block / 6).max(1),
            level_us / 8,
        );
        let best = b.shuffle(
            format!("best_splits_{level}"),
            &[stats],
            p.partitions,
            (block / 128).max(1),
            level_us / 8,
        );
        b.action(format!("level_{level}"), best);
    }

    // Final model assembly touches the metadata again: the long reference.
    let model = b.narrow_multi("model", &[binned, meta], (block / 16).max(1), level_us / 4);
    let packed = b.shuffle(
        "model_pack",
        &[model],
        p.partitions,
        (block / 128).max(1),
        level_us / 8,
    );
    b.action("assemble_model", packed);
    b.build()
}

/// Matrix Factorization (MF / ALS): 1.1 GB input, 8 jobs, mixed.
///
/// Alternating least squares: user and item factor generations alternate,
/// each a shuffle join against the cached ratings; lineage accumulates so
/// later jobs see many skipped stages (64 appearances vs 22 active).
pub fn matrix_factorization(p: &WorkloadParams) -> AppSpec {
    let total = (1.1 * GB as f64) as u64;
    let block = p.block(total);
    let step_us = cost(block, 30_000);
    let mut b = AppBuilder::new("MatrixFactorization");

    let input = b.input("hdfs_ratings", p.partitions, block, cost(block, 8_000));
    let ratings0 = narrow_chain(&mut b, "parse", input, 4, block, cost(block, 6_000));
    let ratings = b.narrow("ratings", ratings0, block, cost(block, 6_000));
    b.persist(ratings, StorageLevel::MemoryAndDisk);
    // Blocked ratings: both orientations cached (ALS in-links/out-links).
    let by_user = b.shuffle("in_links", &[ratings], p.partitions, block, step_us / 4);
    b.persist(by_user, StorageLevel::MemoryAndDisk);
    let by_item = b.shuffle("out_links", &[ratings], p.partitions, block, step_us / 4);
    b.persist(by_item, StorageLevel::MemoryAndDisk);
    b.action("init", by_user);

    let mut user_f = by_user;
    let mut item_f = by_item;
    for i in 0..p.iters(3) {
        // Update item factors from user factors.
        let msg_u = b.narrow_multi(
            format!("u2i_{i}"),
            &[user_f, by_user],
            (block / 2).max(1),
            step_us,
        );
        let msg_u = narrow_chain(
            &mut b,
            &format!("uexpr_{i}"),
            msg_u,
            8,
            (block / 2).max(1),
            step_us / 8,
        );
        item_f = b.shuffle(
            format!("item_f_{i}"),
            &[msg_u],
            p.partitions,
            (block / 2).max(1),
            step_us,
        );
        b.persist(item_f, StorageLevel::MemoryAndDisk);
        b.action(format!("als_half_{i}"), item_f);
        // Update user factors from item factors.
        let msg_i = b.narrow_multi(
            format!("i2u_{i}"),
            &[item_f, by_item],
            (block / 2).max(1),
            step_us,
        );
        let msg_i = narrow_chain(
            &mut b,
            &format!("iexpr_{i}"),
            msg_i,
            8,
            (block / 2).max(1),
            step_us / 8,
        );
        user_f = b.shuffle(
            format!("user_f_{i}"),
            &[msg_i],
            p.partitions,
            (block / 2).max(1),
            step_us,
        );
        b.persist(user_f, StorageLevel::MemoryAndDisk);
        b.action(format!("als_iter_{i}"), user_f);
    }

    // RMSE evaluation touches ratings and both final factor sets.
    let pred = b.narrow_multi(
        "predict",
        &[ratings, user_f, item_f],
        (block / 4).max(1),
        step_us / 2,
    );
    let rmse = b.shuffle(
        "rmse",
        &[pred],
        p.partitions,
        (block / 64).max(1),
        step_us / 8,
    );
    b.action("evaluate", rmse);
    b.build()
}

/// HiBench Bayes: a few aggregation jobs over a cached corpus (Table 1: avg
/// job distance 2.09, max 7).
pub fn hibench_bayes(p: &WorkloadParams) -> AppSpec {
    let total = 2 * GB;
    let mut b = AppBuilder::new("HiBench-Bayes");
    build_ml(
        &mut b,
        &MlConfig {
            input_total: total,
            partitions: p.partitions,
            parse_us_per_mb: 8_000,
            iter_us_per_mb: 20_000,
            iterations: p.iters(4),
            single_stage_iters: false,
            aux_cached: 1,
            chain: 2,
            block: Some(p.block(total)),
        },
    );
    b.build()
}

/// HiBench KMeans: the one HiBench workload with SparkBench-like distances
/// (Table 1: avg job distance 6.08, max 19).
pub fn hibench_kmeans(p: &WorkloadParams) -> AppSpec {
    let total = 4 * GB;
    let mut b = AppBuilder::new("HiBench-KMeans");
    build_ml(
        &mut b,
        &MlConfig {
            input_total: total,
            partitions: p.partitions,
            parse_us_per_mb: 8_000,
            iter_us_per_mb: 25_000,
            iterations: p.iters(17),
            single_stage_iters: true,
            aux_cached: 6,
            chain: 1,
            block: Some(p.block(total)),
        },
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::{AppPlan, RefAnalyzer};

    fn stats(spec: &AppSpec) -> (usize, usize, usize, refdist_dag::DistanceStats) {
        let plan = AppPlan::build(spec);
        let profile = RefAnalyzer::new(spec, &plan).profile();
        let d = RefAnalyzer::distance_stats(&profile);
        (
            plan.jobs.len(),
            plan.active_stage_count(),
            spec.rdds.len(),
            d,
        )
    }

    #[test]
    fn kmeans_shape_matches_table3() {
        let (jobs, active, rdds, d) = stats(&kmeans(&WorkloadParams::small()));
        assert_eq!(jobs, 17);
        assert!((17..=24).contains(&active), "active stages {active}");
        assert!((30..=45).contains(&rdds), "rdds {rdds}");
        // Table 1: avg job distance 5.15, max 16.
        assert!(d.avg_job > 2.5 && d.avg_job < 9.0, "avg job {}", d.avg_job);
        assert!(d.max_job >= 12, "max job {}", d.max_job);
    }

    #[test]
    fn linr_is_small_and_short() {
        let (jobs, active, rdds, d) = stats(&linear_regression(&WorkloadParams::small()));
        assert_eq!(jobs, 6);
        assert!((6..=11).contains(&active));
        assert!((18..=30).contains(&rdds));
        assert!(d.avg_job < 3.0);
        assert!(d.max_job <= 6);
    }

    #[test]
    fn logr_has_seven_jobs() {
        let (jobs, _, _, _) = stats(&logistic_regression(&WorkloadParams::small()));
        assert_eq!(jobs, 7);
    }

    #[test]
    fn svm_reuses_stages_across_jobs() {
        let spec = svm(&WorkloadParams::small());
        let plan = AppPlan::build(&spec);
        assert_eq!(plan.jobs.len(), 10);
        assert!(
            plan.total_stage_appearances() > plan.active_stage_count() + 5,
            "appearances {} vs active {}",
            plan.total_stage_appearances(),
            plan.active_stage_count()
        );
    }

    #[test]
    fn decision_tree_ignores_iterations() {
        let a = decision_tree(&WorkloadParams::small());
        let b = decision_tree(&WorkloadParams {
            iterations: Some(21),
            ..WorkloadParams::small()
        });
        assert_eq!(a.num_jobs(), b.num_jobs());
        assert_eq!(a.rdds.len(), b.rdds.len());
        assert_eq!(a.num_jobs(), 10);
    }

    #[test]
    fn mf_accumulates_lineage() {
        let spec = matrix_factorization(&WorkloadParams::small());
        let plan = AppPlan::build(&spec);
        assert!(
            (5..=9).contains(&plan.jobs.len()),
            "jobs {}",
            plan.jobs.len()
        );
        assert!(spec.rdds.len() >= 60, "rdds {}", spec.rdds.len());
        assert!(plan.total_stage_appearances() > plan.active_stage_count());
    }

    #[test]
    fn iterations_param_scales_ml_jobs() {
        let base = kmeans(&WorkloadParams::small());
        let tripled = kmeans(&WorkloadParams {
            iterations: Some(42),
            ..WorkloadParams::small()
        });
        assert!(tripled.num_jobs() > base.num_jobs());
    }

    #[test]
    fn hibench_kmeans_has_long_distances() {
        let (_, _, _, d) = stats(&hibench_kmeans(&WorkloadParams::small()));
        assert!(d.max_job >= 15, "max job {}", d.max_job);
        assert!(d.avg_job > 3.0);
    }

    #[test]
    fn all_ml_specs_validate() {
        let p = WorkloadParams::small();
        for spec in [
            kmeans(&p),
            linear_regression(&p),
            logistic_regression(&p),
            svm(&p),
            decision_tree(&p),
            matrix_factorization(&p),
            hibench_bayes(&p),
            hibench_kmeans(&p),
        ] {
            spec.validate().unwrap();
            assert!(spec.cached_rdds().count() > 0);
        }
    }
}
