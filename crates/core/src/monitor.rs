//! CacheMonitor: the per-worker-node component of MRD (paper §4.2).
//!
//! Each worker holds a replica of the MRD table so that eviction decisions
//! under memory pressure are local — no round trip to the manager on the hot
//! path (the paper's communication-overhead argument in §4.4). The monitor
//! also tracks local block recency, used only to break ties between blocks
//! whose reference distances are equal.
//!
//! When the runtime attaches a [`BlockSlots`] arena
//! ([`CacheMonitor::attach_slots`]), the recency table becomes a dense
//! per-slot vector and per-RDD reference distances are cached in a flat
//! vector rebuilt on each table sync — the per-touch hot path then does no
//! hashing and no tree walks. Behavior is identical to the hash-backed
//! reference path (enforced by the differential tests in
//! `refdist-cluster`).

use crate::distance::{DistanceMetric, RefDistance};
use crate::table::MrdTable;
use refdist_dag::{BlockId, BlockSlots, SlotMap};
use refdist_policies::OrderedIndex;
use refdist_store::NodeId;
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The monitor's eviction rank, ascending = eviction order: largest
/// reference distance first, then the tie-break recency encoding (see
/// [`CacheMonitor::enc`]), then lowest block id (supplied by the index).
type MrdKey = (Reverse<RefDistance>, Reverse<u64>);

/// How distance ties are broken during victim selection (ablation knob —
/// the paper does not specify; see [`CacheMonitor::pick_victim`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Evict the most recently used among equals (Belady-consistent below
    /// stage granularity; the default).
    #[default]
    Mru,
    /// Evict the least recently used among equals (thrashes cyclic scans).
    Lru,
}

/// A worker node's MRD cache monitor.
#[derive(Debug, Clone)]
pub struct CacheMonitor {
    node: NodeId,
    table: MrdTable,
    /// Version of the replica, compared against the manager's table.
    synced_version: Option<u64>,
    /// Times this monitor received a table replica.
    syncs: u64,
    clock: u64,
    last_touch: SlotMap<u64>,
    /// Attached slot arena (dense mode) and the per-RDD distance cache
    /// rebuilt from the replica on every sync; empty in hash mode.
    slots: Option<Arc<BlockSlots>>,
    dist_by_rdd: Vec<RefDistance>,
    /// Tie-break rule baked into the index keys.
    tie: TieBreak,
    /// Ordered victim index over the locally tracked blocks. Its keys embed
    /// reference distances, which all shift when a new table replica arrives
    /// — so the index is only rebuilt lazily, on the first victim selection
    /// after a sync bumped `synced_version` past `index_version`. Between
    /// syncs, `touch`/`forget` maintain it incrementally in O(log n).
    index: OrderedIndex<MrdKey>,
    /// Table version the index keys were computed against.
    index_version: Option<u64>,
    /// Reusable `(distance, block)` buffer for `prefetch_order`.
    scratch: Vec<(u32, BlockId)>,
}

impl CacheMonitor {
    /// New monitor for `node` with an empty (unsynced) replica and the
    /// default (MRU) tie-break.
    pub fn new(node: NodeId) -> Self {
        Self::with_tie(node, TieBreak::Mru)
    }

    /// New monitor with an explicit tie-break rule (the rule is baked into
    /// the victim index keys, so it is fixed per monitor).
    pub fn with_tie(node: NodeId, tie: TieBreak) -> Self {
        CacheMonitor {
            node,
            table: MrdTable::new(DistanceMetric::Stage),
            synced_version: None,
            syncs: 0,
            clock: 0,
            last_touch: SlotMap::hashed(),
            slots: None,
            dist_by_rdd: Vec::new(),
            tie,
            index: OrderedIndex::new(),
            index_version: None,
            scratch: Vec::new(),
        }
    }

    /// Switch per-block state to dense slot-indexed tables over `slots`.
    /// Existing recency entries are migrated; behavior is unchanged.
    pub fn attach_slots(&mut self, slots: &Arc<BlockSlots>) {
        let mut dense = SlotMap::dense(Arc::clone(slots));
        for (b, &t) in self.last_touch.iter() {
            dense.insert(b, t);
        }
        self.last_touch = dense;
        self.slots = Some(Arc::clone(slots));
        self.rebuild_dist();
    }

    /// Refill the per-RDD distance cache from the current replica (dense
    /// mode only; hash mode reads the table directly).
    fn rebuild_dist(&mut self) {
        let Some(slots) = &self.slots else { return };
        self.dist_by_rdd.clear();
        self.dist_by_rdd
            .resize(slots.num_rdds(), RefDistance::Infinite);
        // Window-relative indexing: `rdd_window` is a bounds-checked
        // `r.index()` for whole-stream arenas (rdd_base 0) and subtracts the
        // live window's base for streaming arena snapshots, so the cache
        // stays O(live rdds) on long streams.
        for (r, d) in self.table.distances() {
            if let Some(i) = slots.rdd_window(r) {
                self.dist_by_rdd[i] = d;
            }
        }
    }

    /// Recency encoding for index keys: under MRU ties the *largest* touch
    /// evicts first, under LRU the smallest — both expressed as "larger
    /// encoding evicts first" so one `Reverse<u64>` covers both.
    fn enc(&self, touch: u64) -> u64 {
        match self.tie {
            TieBreak::Mru => touch,
            TieBreak::Lru => !touch,
        }
    }

    fn key_for(&self, block: BlockId) -> MrdKey {
        let touch = self.last_touch.get(block).copied().unwrap_or(0);
        (Reverse(self.distance(block)), Reverse(self.enc(touch)))
    }

    /// Whether incremental index updates are valid (keys match the current
    /// replica). False after a sync until the next rebuild.
    fn index_fresh(&self) -> bool {
        self.index_version == self.synced_version
    }

    /// Rebuild the index from scratch against the current replica.
    fn ensure_index(&mut self) {
        if self.index_fresh() {
            return;
        }
        self.index.clear();
        let CacheMonitor {
            last_touch,
            index,
            table,
            slots,
            dist_by_rdd,
            tie,
            ..
        } = self;
        for (b, &touch) in last_touch.iter() {
            let d = if let Some(slots) = slots {
                slots
                    .rdd_window(b.rdd)
                    .and_then(|i| dist_by_rdd.get(i))
                    .copied()
                    .unwrap_or(RefDistance::Infinite)
            } else {
                table.distance(b.rdd)
            };
            let e = match tie {
                TieBreak::Mru => touch,
                TieBreak::Lru => !touch,
            };
            index.upsert(b, (Reverse(d), Reverse(e)));
        }
        self.index_version = self.synced_version;
    }

    /// The node this monitor runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Version of the replica table (`None` until first sync).
    pub fn table_version(&self) -> Option<u64> {
        self.synced_version
    }

    /// Times this monitor has been sent a replica.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Install a fresh replica from the manager.
    pub fn receive_table(&mut self, table: MrdTable) {
        self.synced_version = Some(table.version());
        self.table = table;
        self.syncs += 1;
        self.rebuild_dist();
    }

    /// Reference distance of a block per the local replica.
    pub fn distance(&self, block: BlockId) -> RefDistance {
        if let Some(slots) = &self.slots {
            slots
                .rdd_window(block.rdd)
                .and_then(|i| self.dist_by_rdd.get(i))
                .copied()
                .unwrap_or(RefDistance::Infinite)
        } else {
            self.table.distance(block.rdd)
        }
    }

    /// Record a local insert/access (for tie-breaking recency).
    pub fn touch(&mut self, block: BlockId) {
        self.clock += 1;
        self.last_touch.insert(block, self.clock);
        if self.index_fresh() {
            let key = self.key_for(block);
            self.index.upsert(block, key);
        }
    }

    /// Forget a block that left this node's memory.
    pub fn forget(&mut self, block: BlockId) {
        self.last_touch.remove(block);
        if self.index_fresh() {
            self.index.remove(block);
        }
    }

    /// Batched victim selection on this node: pop blocks in eviction order
    /// (largest distance first, per the tie-break rule) until `shortfall`
    /// bytes of `resident` blocks are covered. Identical victim sequence to
    /// repeated [`CacheMonitor::pick_victim`] calls over a shrinking
    /// candidate list, in O(log n) per victim.
    pub fn select_victims(
        &mut self,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        self.ensure_index();
        self.index.select_until(shortfall, resident)
    }

    /// Choose the eviction victim among `candidates`: the block with the
    /// **largest** reference distance (`evictBlock`); infinite-distance
    /// blocks evict first of all.
    ///
    /// Ties break toward the **most recently used** block, then lowest block
    /// id, for determinism. Stage-granular distances tie for all blocks of
    /// one RDD; when a stage cyclically scans such an RDD, the block whose
    /// *task-level* next access is furthest away is precisely the one just
    /// used — so an MRU tiebreak is what keeps MRD an approximation of
    /// Belady's MIN below stage granularity (an LRU tiebreak would thrash
    /// scans larger than the cache, the classic LRU pathology of §3.3).
    pub fn pick_victim(&self, candidates: &[BlockId]) -> Option<BlockId> {
        self.pick_victim_with(candidates, TieBreak::Mru)
    }

    /// [`CacheMonitor::pick_victim`] with an explicit tie-breaking rule
    /// (for the tie-break ablation). Scans the candidate slice directly —
    /// no per-call collection.
    pub fn pick_victim_with(&self, candidates: &[BlockId], tie: TieBreak) -> Option<BlockId> {
        candidates.iter().copied().max_by(|a, b| {
            self.distance(*a)
                .cmp(&self.distance(*b))
                .then_with(|| {
                    let ta = self.last_touch.get(*a).copied().unwrap_or(0);
                    let tb = self.last_touch.get(*b).copied().unwrap_or(0);
                    match tie {
                        // Newer touch wins the max: MRU evicts first.
                        TieBreak::Mru => ta.cmp(&tb),
                        // Older touch wins the max: LRU evicts first.
                        TieBreak::Lru => tb.cmp(&ta),
                    }
                })
                .then_with(|| b.cmp(a))
        })
    }

    /// Rank `missing` blocks for prefetching (`prefetchBlock`): smallest
    /// finite distance first; infinite-distance blocks are never prefetched,
    /// and blocks beyond `horizon` (when non-zero) are skipped. The
    /// `(distance, block)` sort pairs live in a reusable scratch buffer, so
    /// the only allocation is the returned order itself.
    pub fn prefetch_order(&mut self, missing: &[BlockId], horizon: u32) -> Vec<BlockId> {
        let mut finite = std::mem::take(&mut self.scratch);
        finite.clear();
        finite.extend(missing.iter().filter_map(|&b| {
            self.distance(b)
                .finite()
                .filter(|&d| horizon == 0 || d <= horizon)
                .map(|d| (d, b))
        }));
        finite.sort_unstable();
        let order = finite.iter().map(|&(_, b)| b).collect();
        self.scratch = finite;
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::{AppProfile, JobId, RddId, RddRefs, StageId};
    use std::collections::BTreeMap;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    fn table(entries: &[(u32, &[u32])], current: u32) -> MrdTable {
        let mut per_rdd = BTreeMap::new();
        for &(r, stages) in entries {
            per_rdd.insert(
                RddId(r),
                RddRefs {
                    rdd: RddId(r),
                    stages: stages.iter().map(|&s| StageId(s)).collect(),
                    jobs: stages.iter().map(|_| JobId(0)).collect(),
                },
            );
        }
        let profile = AppProfile {
            per_rdd,
            per_stage: vec![],
            stage_job: Vec::new().into(),
            num_jobs: 1,
        };
        let mut t = MrdTable::from_profile(DistanceMetric::Stage, &profile);
        t.advance_to(current);
        t
    }

    fn synced(entries: &[(u32, &[u32])], current: u32) -> CacheMonitor {
        let mut m = CacheMonitor::new(NodeId(0));
        m.receive_table(table(entries, current));
        m
    }

    /// Same monitor, but slot-attached over rdds 0..10 × 4 partitions.
    fn synced_dense(entries: &[(u32, &[u32])], current: u32) -> CacheMonitor {
        let mut m = CacheMonitor::new(NodeId(0));
        let slots = Arc::new(BlockSlots::from_counts((0..10).map(|r| (RddId(r), 4))));
        m.attach_slots(&slots);
        m.receive_table(table(entries, current));
        m
    }

    #[test]
    fn evicts_largest_distance() {
        let m = synced(&[(0, &[5]), (1, &[20]), (2, &[8])], 0);
        let v = m.pick_victim(&[blk(0, 0), blk(1, 0), blk(2, 0)]);
        assert_eq!(v, Some(blk(1, 0)));
    }

    #[test]
    fn infinite_distance_evicts_first() {
        let m = synced(&[(0, &[5]), (1, &[])], 0);
        let v = m.pick_victim(&[blk(0, 0), blk(1, 0)]);
        assert_eq!(v, Some(blk(1, 0)));
        // Unknown RDDs are also infinite.
        let v2 = m.pick_victim(&[blk(0, 0), blk(9, 0)]);
        assert_eq!(v2, Some(blk(9, 0)));
    }

    #[test]
    fn equal_distance_breaks_by_mru() {
        let mut m = synced(&[(0, &[5]), (1, &[5])], 0);
        m.touch(blk(0, 0));
        m.touch(blk(1, 0));
        m.touch(blk(0, 0)); // rdd0's block now most recent: evicts on tie
        assert_eq!(m.pick_victim(&[blk(0, 0), blk(1, 0)]), Some(blk(0, 0)));
    }

    #[test]
    fn prefetch_orders_by_smallest_distance() {
        let mut m = synced(&[(0, &[9]), (1, &[3]), (2, &[])], 0);
        let order = m.prefetch_order(&[blk(0, 0), blk(1, 0), blk(2, 0)], 0);
        // Infinite (rdd2) excluded; rdd1 (3) before rdd0 (9).
        assert_eq!(order, vec![blk(1, 0), blk(0, 0)]);
        // A horizon of 5 drops the distance-9 block.
        let near = m.prefetch_order(&[blk(0, 0), blk(1, 0), blk(2, 0)], 5);
        assert_eq!(near, vec![blk(1, 0)]);
    }

    #[test]
    fn distance_tracks_replica_updates() {
        let mut m = synced(&[(0, &[5])], 0);
        assert_eq!(m.distance(blk(0, 0)), RefDistance::Finite(5));
        m.receive_table(table(&[(0, &[5])], 4));
        assert_eq!(m.distance(blk(0, 0)), RefDistance::Finite(1));
        assert_eq!(m.syncs(), 2);
    }

    #[test]
    fn forget_clears_recency() {
        let mut m = synced(&[(0, &[5]), (1, &[5])], 0);
        m.touch(blk(0, 0));
        m.touch(blk(1, 0));
        m.forget(blk(1, 0));
        // rdd1's block lost its recency: counts as oldest, so on an MRU
        // tiebreak the still-recent rdd0 block evicts first.
        assert_eq!(m.pick_victim(&[blk(0, 0), blk(1, 0)]), Some(blk(0, 0)));
    }

    #[test]
    fn empty_candidates_none() {
        let mut m = synced(&[], 0);
        assert_eq!(m.pick_victim(&[]), None);
        assert!(m.prefetch_order(&[], 0).is_empty());
    }

    #[test]
    fn deterministic_final_tiebreak() {
        let m = synced(&[(0, &[5]), (1, &[5])], 0);
        // No touches at all: equal distance, equal recency -> lowest id.
        assert_eq!(m.pick_victim(&[blk(1, 0), blk(0, 0)]), Some(blk(0, 0)));
    }

    #[test]
    fn dense_monitor_matches_hash_monitor() {
        let entries: &[(u32, &[u32])] = &[(0, &[5]), (1, &[20]), (2, &[8]), (3, &[])];
        let mut h = synced(entries, 0);
        let mut d = synced_dense(entries, 0);
        let blocks = [blk(0, 0), blk(1, 0), blk(2, 1), blk(3, 0), blk(2, 0)];
        for &b in &blocks {
            h.touch(b);
            d.touch(b);
        }
        assert_eq!(h.pick_victim(&blocks), d.pick_victim(&blocks));
        assert_eq!(
            h.prefetch_order(&blocks, 0),
            d.prefetch_order(&blocks, 0)
        );
        let resident: BTreeMap<BlockId, u64> = blocks.iter().map(|&b| (b, 2)).collect();
        assert_eq!(h.select_victims(5, &resident), d.select_victims(5, &resident));
        // Distances advance identically across a re-sync.
        h.receive_table(table(entries, 4));
        d.receive_table(table(entries, 4));
        for &b in &blocks {
            assert_eq!(h.distance(b), d.distance(b));
        }
        assert_eq!(h.select_victims(7, &resident), d.select_victims(7, &resident));
    }

    #[test]
    fn attach_slots_migrates_existing_recency() {
        let mut m = synced(&[(0, &[5]), (1, &[5])], 0);
        m.touch(blk(0, 0));
        m.touch(blk(1, 0));
        m.touch(blk(0, 0));
        let slots = Arc::new(BlockSlots::from_counts((0..4).map(|r| (RddId(r), 2))));
        m.attach_slots(&slots);
        // MRU tiebreak still sees rdd0's block as most recent.
        assert_eq!(m.pick_victim(&[blk(0, 0), blk(1, 0)]), Some(blk(0, 0)));
    }
}
