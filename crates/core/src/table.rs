//! The MRD table: per-RDD future reference points and current distances.
//!
//! Algorithm 1's `MRD_Table`. For every cached RDD it keeps the ascending
//! list of *future* reference points (stage IDs or job IDs, per the chosen
//! [`DistanceMetric`]). As execution advances past a point, consumed
//! references are dropped ("as the application execution moves beyond a
//! point where there is a reference, that value is deleted, and the next
//! lowest one is used", §4.1). An RDD with no remaining references has
//! infinite distance and is the first eviction candidate.
//!
//! References are tracked per RDD rather than per block because all blocks
//! of an RDD share the same workflow reference pattern; the per-block view
//! required by the eviction interface maps a block to its RDD's distance.

use crate::distance::{DistanceMetric, RefDistance};
use refdist_dag::{AppProfile, RddId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The reference-distance table maintained by the MRDmanager and replicated
/// to each CacheMonitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrdTable {
    metric: DistanceMetric,
    /// Future reference points per RDD, ascending.
    refs: BTreeMap<RddId, VecDeque<u32>>,
    /// The front (lowest) reference point of every non-empty queue, so an
    /// advance pops only the queues that actually consumed a point instead
    /// of scanning all of them.
    fronts: BTreeSet<(u32, RddId)>,
    /// Current execution point (stage or job ID per `metric`).
    current: u32,
    /// Monotone version; bumped only on mutations that change observable
    /// distances, so monitors can detect staleness cheaply and identical
    /// profile re-merges (recurring runs) cost no re-broadcast.
    version: u64,
}

impl MrdTable {
    /// Empty table at execution point 0.
    pub fn new(metric: DistanceMetric) -> Self {
        MrdTable {
            metric,
            refs: BTreeMap::new(),
            fronts: BTreeSet::new(),
            current: 0,
            version: 0,
        }
    }

    /// Build a table from a reference profile (`parseDAG`).
    pub fn from_profile(metric: DistanceMetric, profile: &AppProfile) -> Self {
        let mut t = MrdTable::new(metric);
        t.merge_profile(profile);
        t
    }

    /// The metric this table measures in.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// Current execution point.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Table version (bumped on every mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of RDDs with recorded future references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether no references are recorded.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Total reference points currently stored (the paper reports the
    /// largest observed table held < 300, §4.4).
    pub fn total_refs(&self) -> usize {
        self.refs.values().map(|q| q.len()).sum()
    }

    /// Merge (replace) reference points from a profile. Points already in
    /// the past relative to the current execution point are discarded.
    /// Used both at startup and when an ad-hoc run reveals a new job's DAG
    /// (`updateReferenceDistance`).
    ///
    /// RDDs whose surviving points are already stored verbatim are skipped
    /// without allocating, and the version is bumped only when something
    /// changed — a recurring run re-submitting the same whole-application
    /// profile every job costs no queue rebuilds and no monitor
    /// re-broadcasts.
    pub fn merge_profile(&mut self, profile: &AppProfile) {
        let mut changed = false;
        match self.metric {
            DistanceMetric::Stage => {
                for (&rdd, r) in &profile.per_rdd {
                    changed |= self.merge_rdd(rdd, r.stages.iter().map(|s| s.0));
                }
            }
            DistanceMetric::Job => {
                for (&rdd, r) in &profile.per_rdd {
                    changed |= self.merge_rdd(rdd, r.jobs.iter().map(|j| j.0));
                }
            }
        }
        if changed {
            self.version += 1;
        }
    }

    /// Replace one RDD's reference points with the still-future subset of
    /// `pts`, keeping the `fronts` index consistent. Returns whether the
    /// stored queue changed (the comparison runs without allocating).
    fn merge_rdd(&mut self, rdd: RddId, pts: impl Iterator<Item = u32> + Clone) -> bool {
        let current = self.current;
        let future = pts.filter(|&p| p >= current);
        if let Some(q) = self.refs.get(&rdd) {
            if q.iter().copied().eq(future.clone()) {
                return false;
            }
            if let Some(&f) = q.front() {
                self.fronts.remove(&(f, rdd));
            }
        }
        let future: VecDeque<u32> = future.collect();
        if let Some(&f) = future.front() {
            self.fronts.insert((f, rdd));
        }
        self.refs.insert(rdd, future);
        true
    }

    /// Advance execution to `point` (`newReferenceDistance`): consume all
    /// reference points strictly before it. Only queues whose front is
    /// behind `point` are touched, via the `fronts` index.
    pub fn advance_to(&mut self, point: u32) {
        if point <= self.current {
            return; // never move backwards; same point is a no-op
        }
        self.current = point;
        while let Some(&(f, rdd)) = self.fronts.first() {
            if f >= point {
                break;
            }
            self.fronts.remove(&(f, rdd));
            let q = self
                .refs
                .get_mut(&rdd)
                .expect("fronts entry without a queue");
            while q.front().is_some_and(|&p| p < point) {
                q.pop_front();
            }
            if let Some(&nf) = q.front() {
                self.fronts.insert((nf, rdd));
            }
        }
        self.version += 1;
    }

    /// Consume one pending reference of `rdd` at the current point, if its
    /// next reference is exactly now. Called when a block of the RDD is
    /// actually read, so a second read in the same stage does not consume
    /// the following reference point.
    pub fn note_reference(&mut self, rdd: RddId) {
        if let Some(q) = self.refs.get_mut(&rdd) {
            if q.front() == Some(&self.current) {
                q.pop_front();
                self.fronts.remove(&(self.current, rdd));
                if let Some(&nf) = q.front() {
                    self.fronts.insert((nf, rdd));
                }
                self.version += 1;
            }
        }
    }

    /// The reference distance of `rdd` from the current execution point.
    ///
    /// The comparison value is always the *lowest* remaining reference
    /// point (§4.1: "it will only use the lowest one").
    pub fn distance(&self, rdd: RddId) -> RefDistance {
        match self.refs.get(&rdd).and_then(|q| q.front()) {
            Some(&p) => RefDistance::Finite(p - self.current),
            None => RefDistance::Infinite,
        }
    }

    /// RDDs whose distance is infinite (no future references) — the targets
    /// of the cluster-wide purge order.
    pub fn infinite_rdds(&self) -> impl Iterator<Item = RddId> + '_ {
        self.refs
            .iter()
            .filter(|(_, q)| q.is_empty())
            .map(|(&r, _)| r)
    }

    /// All (rdd, distance) pairs, for inspection and Figure 2 style dumps.
    pub fn distances(&self) -> impl Iterator<Item = (RddId, RefDistance)> + '_ {
        self.refs.keys().map(move |&r| (r, self.distance(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::{JobId, RddRefs, StageId};
    use std::collections::BTreeMap as Map;

    /// Profile stub: (rdd, stage refs, job refs).
    fn profile(entries: &[(u32, &[u32], &[u32])]) -> AppProfile {
        let mut per_rdd = Map::new();
        for &(r, stages, jobs) in entries {
            per_rdd.insert(
                RddId(r),
                RddRefs {
                    rdd: RddId(r),
                    stages: stages.iter().map(|&s| StageId(s)).collect(),
                    jobs: jobs.iter().map(|&j| JobId(j)).collect(),
                },
            );
        }
        AppProfile {
            per_rdd,
            per_stage: vec![],
            stage_job: Vec::new().into(),
            num_jobs: 0,
        }
    }

    #[test]
    fn distances_from_profile() {
        let t = MrdTable::from_profile(
            DistanceMetric::Stage,
            &profile(&[(0, &[1, 10], &[0, 5]), (1, &[3], &[1])]),
        );
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(1));
        assert_eq!(t.distance(RddId(1)), RefDistance::Finite(3));
        assert_eq!(t.distance(RddId(9)), RefDistance::Infinite);
        assert_eq!(t.total_refs(), 3);
    }

    #[test]
    fn job_metric_uses_job_points() {
        let t = MrdTable::from_profile(DistanceMetric::Job, &profile(&[(0, &[1, 10], &[0, 5])]));
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(0));
    }

    #[test]
    fn advance_consumes_past_refs() {
        let mut t =
            MrdTable::from_profile(DistanceMetric::Stage, &profile(&[(0, &[1, 10], &[0, 0])]));
        t.advance_to(2);
        // The stage-1 reference is behind us; lowest is now 10.
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(8));
        t.advance_to(11);
        assert_eq!(t.distance(RddId(0)), RefDistance::Infinite);
    }

    #[test]
    fn advance_is_monotone() {
        let mut t = MrdTable::from_profile(DistanceMetric::Stage, &profile(&[(0, &[5], &[0])]));
        t.advance_to(4);
        t.advance_to(2); // ignored
        assert_eq!(t.current(), 4);
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(1));
    }

    #[test]
    fn reference_at_current_point_survives_until_passed() {
        let mut t =
            MrdTable::from_profile(DistanceMetric::Stage, &profile(&[(0, &[3, 7], &[0, 0])]));
        t.advance_to(3);
        // Being referenced *now*: distance 0, not consumed yet.
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(0));
        t.advance_to(4);
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(3));
    }

    #[test]
    fn note_reference_consumes_current_only() {
        let mut t =
            MrdTable::from_profile(DistanceMetric::Stage, &profile(&[(0, &[3, 7], &[0, 0])]));
        t.advance_to(3);
        t.note_reference(RddId(0));
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(4));
        // A second read in the same stage must not consume the stage-7 ref.
        t.note_reference(RddId(0));
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(4));
    }

    #[test]
    fn infinite_rdds_listed_for_purge() {
        let mut t = MrdTable::from_profile(
            DistanceMetric::Stage,
            &profile(&[(0, &[1], &[0]), (1, &[5], &[0])]),
        );
        t.advance_to(2);
        let inf: Vec<_> = t.infinite_rdds().collect();
        assert_eq!(inf, vec![RddId(0)]);
    }

    #[test]
    fn merge_profile_discards_past_points() {
        let mut t = MrdTable::new(DistanceMetric::Stage);
        t.advance_to(5);
        t.merge_profile(&profile(&[(0, &[1, 4, 9], &[0, 0, 0])]));
        assert_eq!(t.distance(RddId(0)), RefDistance::Finite(4));
        assert_eq!(t.total_refs(), 1);
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut t = MrdTable::new(DistanceMetric::Stage);
        let v0 = t.version();
        t.merge_profile(&profile(&[(0, &[1], &[0])]));
        let v1 = t.version();
        assert!(v1 > v0);
        t.advance_to(1);
        assert!(t.version() > v1);
    }

    #[test]
    fn distances_iterates_all_tracked() {
        let t = MrdTable::from_profile(
            DistanceMetric::Stage,
            &profile(&[(0, &[2], &[0]), (1, &[4], &[0])]),
        );
        let d: Vec<_> = t.distances().collect();
        assert_eq!(
            d,
            vec![
                (RddId(0), RefDistance::Finite(2)),
                (RddId(1), RefDistance::Finite(4))
            ]
        );
    }
}
