//! AppProfiler: reference-distance profiles per application (paper §4.2).
//!
//! Two modus operandi (§4.1):
//!
//! * **Ad-hoc / first run** — the DAG arrives one job at a time, so the
//!   profiler can only expose references up to the most recently submitted
//!   job; everything beyond is unknown (infinite distance).
//! * **Recurring** — a high share of cluster workloads are periodically
//!   re-run with fresh input. The profiler stores the completed
//!   application's profile in a [`ProfileStore`] and on the next run hands
//!   the MRDmanager the whole-application view from the start.
//!
//! Profiles persist in a line-oriented text format (no external
//! serialization dependency; see `DESIGN.md` §5).

use refdist_dag::{
    AppPlan, AppProfile, AppSpec, JobId, RddId, RddRefs, RefAnalyzer, StageId, StageTouches,
};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Whether the profiler may use a whole-application profile from a previous
/// run, or must build knowledge one job at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// First run / non-recurring: DAG visible one job at a time.
    AdHoc,
    /// Recurring application: whole-application profile available upfront.
    #[default]
    Recurring,
}

/// Produces the reference profile visible to the MRDmanager at each point of
/// the run.
///
/// The full profile is held behind an `Arc`: one profiler can be shared by
/// many concurrent simulations (the sweep engine builds it once per
/// workload), and recurring-mode visibility queries hand out the shared
/// profile instead of cloning it per job.
#[derive(Debug, Clone)]
pub struct AppProfiler {
    mode: ProfileMode,
    name: String,
    full: Arc<AppProfile>,
}

impl AppProfiler {
    /// Profile an application by parsing its planned DAG (`parseDAG`).
    pub fn new(spec: &AppSpec, plan: &AppPlan, mode: ProfileMode) -> Self {
        let full = Arc::new(RefAnalyzer::new(spec, plan).profile());
        AppProfiler {
            mode,
            name: spec.name.clone(),
            full,
        }
    }

    /// Build a profiler around a stored profile (recurring application whose
    /// previous run was saved in a [`ProfileStore`]).
    pub fn from_stored(name: impl Into<String>, profile: AppProfile) -> Self {
        AppProfiler::from_shared(name, Arc::new(profile))
    }

    /// Build a profiler around an already-shared profile without copying it
    /// — the template-interned serve admission path hands the same rebased
    /// profile to every repeat submission of a template.
    pub fn from_shared(name: impl Into<String>, profile: Arc<AppProfile>) -> Self {
        AppProfiler {
            mode: ProfileMode::Recurring,
            name: name.into(),
            full: profile,
        }
    }

    /// The profiling mode.
    pub fn mode(&self) -> ProfileMode {
        self.mode
    }

    /// Application name (the recurring-profile key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The complete profile (what a finished run records).
    pub fn full(&self) -> &AppProfile {
        &self.full
    }

    /// The profile visible when `job` is submitted.
    pub fn visible_at_job(&self, job: JobId) -> AppProfile {
        match self.mode {
            ProfileMode::Recurring => (*self.full).clone(),
            ProfileMode::AdHoc => self.full.visible_up_to_job(job),
        }
    }

    /// Shared-ownership variant of [`visible_at_job`]: recurring mode hands
    /// out the stored profile without copying it (the per-job clone of the
    /// whole profile was a measurable per-run cost); ad-hoc mode still
    /// materializes the truncated view.
    ///
    /// [`visible_at_job`]: AppProfiler::visible_at_job
    pub fn visible_at_job_shared(&self, job: JobId) -> Arc<AppProfile> {
        match self.mode {
            ProfileMode::Recurring => Arc::clone(&self.full),
            ProfileMode::AdHoc => Arc::new(self.full.visible_up_to_job(job)),
        }
    }

    /// Whether a stored profile disagrees with the DAG observed this run —
    /// the "discrepancy" check of §4.4 (fault tolerance / changed program).
    pub fn discrepancy(&self, observed: &AppProfile) -> bool {
        self.full.per_rdd != observed.per_rdd
    }
}

/// On-disk store of application profiles, keyed by application name.
#[derive(Debug, Clone)]
pub struct ProfileStore {
    dir: PathBuf,
}

impl ProfileStore {
    /// A store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ProfileStore { dir: dir.into() }
    }

    fn path_for(&self, app: &str) -> PathBuf {
        // Sanitize: app names become file names.
        let safe: String = app
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}.mrdprofile"))
    }

    /// Persist `profile` under `app`, returning the file path.
    pub fn save(&self, app: &str, profile: &AppProfile) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(app);
        fs::write(&path, serialize(app, profile))?;
        Ok(path)
    }

    /// Load the stored profile for `app`, if present.
    pub fn load(&self, app: &str) -> io::Result<Option<AppProfile>> {
        let path = self.path_for(app);
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        parse(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Whether a profile exists for `app`.
    pub fn contains(&self, app: &str) -> bool {
        self.path_for(app).exists()
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Serialize a profile to the v1 text format.
fn serialize(app: &str, profile: &AppProfile) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "refdist-profile v1");
    let _ = writeln!(out, "app {app}");
    let _ = writeln!(out, "jobs {}", profile.num_jobs);
    let mut line = String::from("stagejobs");
    for j in profile.stage_job.iter() {
        let _ = write!(line, " {}", j.0);
    }
    let _ = writeln!(out, "{line}");
    for (i, t) in profile.per_stage.iter().enumerate() {
        let reads = join_ids(t.reads.iter().map(|r| r.0));
        let creates = join_ids(t.creates.iter().map(|r| r.0));
        let _ = writeln!(out, "stage {i} reads {reads} creates {creates}");
    }
    for (rdd, refs) in &profile.per_rdd {
        let mut line = format!("rdd {}", rdd.0);
        for (s, j) in refs.stages.iter().zip(refs.jobs.iter()) {
            let _ = write!(line, " {}:{}", s.0, j.0);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

fn join_ids(ids: impl Iterator<Item = u32>) -> String {
    let v: Vec<String> = ids.map(|i| i.to_string()).collect();
    if v.is_empty() {
        "-".to_string()
    } else {
        v.join(",")
    }
}

fn split_ids(s: &str) -> Result<Vec<RddId>, String> {
    if s == "-" {
        return Ok(vec![]);
    }
    s.split(',')
        .map(|p| {
            p.parse::<u32>()
                .map(RddId)
                .map_err(|e| format!("bad id `{p}`: {e}"))
        })
        .collect()
}

/// Parse the v1 text format back into a profile.
fn parse(text: &str) -> Result<AppProfile, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("refdist-profile v1") => {}
        other => return Err(format!("bad header: {other:?}")),
    }
    let mut num_jobs = 0usize;
    let mut stage_job: Vec<JobId> = Vec::new();
    let mut per_stage: Vec<StageTouches> = Vec::new();
    let mut per_rdd: BTreeMap<RddId, RddRefs> = BTreeMap::new();

    for line in lines {
        let mut it = line.split_whitespace();
        match it.next() {
            None | Some("app") => {}
            Some("jobs") => {
                num_jobs = it
                    .next()
                    .ok_or("jobs: missing count")?
                    .parse()
                    .map_err(|e| format!("jobs: {e}"))?;
            }
            Some("stagejobs") => {
                stage_job = it
                    .map(|t| {
                        t.parse::<u32>()
                            .map(JobId)
                            .map_err(|e| format!("stagejobs: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            Some("stage") => {
                let idx: usize = it
                    .next()
                    .ok_or("stage: missing index")?
                    .parse()
                    .map_err(|e| format!("stage index: {e}"))?;
                if idx != per_stage.len() {
                    return Err(format!("stage lines out of order at {idx}"));
                }
                if it.next() != Some("reads") {
                    return Err("stage: expected `reads`".into());
                }
                let reads = split_ids(it.next().ok_or("stage: missing reads")?)?;
                if it.next() != Some("creates") {
                    return Err("stage: expected `creates`".into());
                }
                let creates = split_ids(it.next().ok_or("stage: missing creates")?)?;
                per_stage.push(StageTouches { reads, creates });
            }
            Some("rdd") => {
                let id: u32 = it
                    .next()
                    .ok_or("rdd: missing id")?
                    .parse()
                    .map_err(|e| format!("rdd id: {e}"))?;
                let mut stages = Vec::new();
                let mut jobs = Vec::new();
                for pair in it {
                    let (s, j) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("rdd ref `{pair}` missing `:`"))?;
                    stages.push(StageId(s.parse::<u32>().map_err(|e| e.to_string())?));
                    jobs.push(JobId(j.parse::<u32>().map_err(|e| e.to_string())?));
                }
                per_rdd.insert(
                    RddId(id),
                    RddRefs {
                        rdd: RddId(id),
                        stages: stages.into(),
                        jobs: jobs.into(),
                    },
                );
            }
            Some(other) => return Err(format!("unknown directive `{other}`")),
        }
    }
    if per_stage.len() != stage_job.len() {
        return Err(format!(
            "stage count mismatch: {} touch lines vs {} stagejobs",
            per_stage.len(),
            stage_job.len()
        ));
    }
    Ok(AppProfile {
        per_rdd,
        per_stage,
        stage_job: stage_job.into(),
        num_jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::AppBuilder;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn sample() -> (AppSpec, AppPlan) {
        let mut b = AppBuilder::new("sample app");
        let input = b.input("in", 4, 100, 10);
        let data = b.narrow("data", input, 100, 10);
        b.cache(data);
        for i in 0..3 {
            let s = b.shuffle(format!("s{i}"), &[data], 4, 50, 10);
            b.action(format!("j{i}"), s);
        }
        let spec = b.build();
        let plan = AppPlan::build(&spec);
        (spec, plan)
    }

    fn temp_store() -> ProfileStore {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "refdist-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        ProfileStore::new(dir)
    }

    #[test]
    fn recurring_sees_everything_upfront() {
        let (spec, plan) = sample();
        let p = AppProfiler::new(&spec, &plan, ProfileMode::Recurring);
        let v = p.visible_at_job(JobId(0));
        assert_eq!(v.refs(RddId(1)).unwrap().count(), 3);
    }

    #[test]
    fn shared_visibility_matches_owned() {
        let (spec, plan) = sample();
        for mode in [ProfileMode::Recurring, ProfileMode::AdHoc] {
            let p = AppProfiler::new(&spec, &plan, mode);
            for j in 0..3 {
                let owned = p.visible_at_job(JobId(j));
                let shared = p.visible_at_job_shared(JobId(j));
                assert_eq!(owned.per_rdd, shared.per_rdd, "{mode:?} job {j}");
                assert_eq!(owned.stage_job, shared.stage_job);
            }
        }
        // Recurring mode shares, not clones.
        let p = AppProfiler::new(&spec, &plan, ProfileMode::Recurring);
        let a = p.visible_at_job_shared(JobId(0));
        let b = p.visible_at_job_shared(JobId(2));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn adhoc_sees_only_submitted_jobs() {
        let (spec, plan) = sample();
        let p = AppProfiler::new(&spec, &plan, ProfileMode::AdHoc);
        assert_eq!(
            p.visible_at_job(JobId(0)).refs(RddId(1)).unwrap().count(),
            1
        );
        assert_eq!(
            p.visible_at_job(JobId(2)).refs(RddId(1)).unwrap().count(),
            3
        );
    }

    #[test]
    fn profile_roundtrips_through_store() {
        let (spec, plan) = sample();
        let p = AppProfiler::new(&spec, &plan, ProfileMode::Recurring);
        let store = temp_store();
        assert!(!store.contains(&spec.name));
        store.save(&spec.name, p.full()).unwrap();
        assert!(store.contains(&spec.name));
        let loaded = store.load(&spec.name).unwrap().unwrap();
        assert_eq!(loaded.per_rdd, p.full().per_rdd);
        assert_eq!(loaded.stage_job, p.full().stage_job);
        assert_eq!(loaded.num_jobs, p.full().num_jobs);
        assert_eq!(
            loaded
                .per_stage
                .iter()
                .map(|t| (t.reads.clone(), t.creates.clone()))
                .collect::<Vec<_>>(),
            p.full()
                .per_stage
                .iter()
                .map(|t| (t.reads.clone(), t.creates.clone()))
                .collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_profile_loads_none() {
        let store = temp_store();
        assert!(store.load("nothing-here").unwrap().is_none());
    }

    #[test]
    fn corrupt_profile_is_invalid_data() {
        let store = temp_store();
        std::fs::create_dir_all(store.dir()).unwrap();
        std::fs::write(store.path_for("bad"), "not a profile").unwrap();
        let err = store.load("bad").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn discrepancy_detection() {
        let (spec, plan) = sample();
        let p = AppProfiler::new(&spec, &plan, ProfileMode::Recurring);
        assert!(!p.discrepancy(p.full()));
        let mut altered = p.full().clone();
        altered.per_rdd.clear();
        assert!(p.discrepancy(&altered));
    }

    #[test]
    fn stored_profiler_reports_recurring() {
        let (spec, plan) = sample();
        let p = AppProfiler::new(&spec, &plan, ProfileMode::AdHoc);
        let stored = AppProfiler::from_stored("sample app", p.full().clone());
        assert_eq!(stored.mode(), ProfileMode::Recurring);
        assert_eq!(stored.name(), "sample app");
    }

    #[test]
    fn app_names_are_sanitized_for_paths() {
        let store = temp_store();
        let p = store.path_for("weird name/with:stuff");
        let fname = p.file_name().unwrap().to_string_lossy().into_owned();
        assert_eq!(fname, "weird_name_with_stuff.mrdprofile");
    }
}
