//! # MRD — Most Reference Distance cache management
//!
//! The primary contribution of *"Reference-distance Eviction and Prefetching
//! for Cache Management in Spark"* (Perez, Zhou, Cheng — ICPP 2018),
//! implemented against the DAG substrate in `refdist-dag` and the policy
//! interface in `refdist-policies`.
//!
//! **Reference distance** (paper Definition 1): for each data block, the
//! relative distance between the current step of the application's execution
//! and the next step in the workflow that references the block, measured in
//! stage IDs (preferred) or job IDs. MRD always **evicts** the block with
//! the *largest* distance (infinite first — data that is never referenced
//! again), and **prefetches** the blocks with the *smallest* distance,
//! overlapping their I/O with computation.
//!
//! The implementation mirrors the paper's architecture (Figure 3):
//!
//! * [`AppProfiler`] — parses job DAGs into reference-distance profiles;
//!   stores whole-application profiles for recurring applications
//!   (`parseDAG` in Table 2).
//! * [`MrdManager`] — owns the [`MrdTable`], advances it as execution
//!   proceeds (`newReferenceDistance`), issues cluster-wide purge orders and
//!   prefetch orders, and broadcasts the table to the per-node monitors
//!   (`sendReferenceDistance`).
//! * [`CacheMonitor`] — one per worker node; holds a replica of the distance
//!   table for local eviction decisions (`evictBlock`) and tracks how many
//!   synchronization messages the replication costs (§4.4's communication
//!   overhead).
//! * [`MrdPolicy`] — packages the above as a
//!   [`refdist_policies::CachePolicy`] the cluster simulator can drive, in
//!   three modes matching the paper's Figure 4 ablation: eviction-only,
//!   prefetch-only, and full MRD.

//! # Example
//!
//! ```
//! use refdist_core::{DistanceMetric, MrdTable, RefDistance};
//! use refdist_dag::{AppBuilder, AppPlan, RefAnalyzer, RddId, StageId};
//!
//! let mut b = AppBuilder::new("demo");
//! let input = b.input("in", 2, 1024, 100);
//! let data = b.narrow("data", input, 1024, 100);
//! b.cache(data);
//! for i in 0..3 {
//!     let agg = b.shuffle(format!("agg{i}"), &[data], 2, 128, 100);
//!     b.action(format!("job{i}"), agg);
//! }
//! let spec = b.build();
//! let plan = AppPlan::build(&spec);
//! let profile = RefAnalyzer::new(&spec, &plan).profile();
//!
//! let mut table = MrdTable::from_profile(DistanceMetric::Stage, &profile);
//! // At stage 0, `data` is being created (distance 0).
//! assert_eq!(table.distance(data), RefDistance::Finite(0));
//! // Past its last reference the distance goes infinite — purge time.
//! table.advance_to(100);
//! assert_eq!(table.distance(data), RefDistance::Infinite);
//! ```

pub mod distance;
pub mod manager;
pub mod monitor;
pub mod policy;
pub mod profiler;
pub mod table;

pub use distance::{DistanceMetric, RefDistance};
pub use manager::MrdManager;
pub use monitor::{CacheMonitor, TieBreak};
pub use policy::{MrdConfig, MrdMode, MrdPolicy};
pub use profiler::{AppProfiler, ProfileMode, ProfileStore};
pub use table::MrdTable;
