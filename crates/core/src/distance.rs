//! Reference distances (paper §3.2 and Definition 1).

use std::cmp::Ordering;
use std::fmt;

/// Which workflow subdivision distances are measured against.
///
/// The paper evaluates both in §5.7: stage distance is finer grained and
/// strictly better for workloads with many stages per job; job distance is
/// meaningless for ad-hoc runs (always 0 or infinite within one job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceMetric {
    /// Distance in stage IDs (the paper's preferred metric).
    #[default]
    Stage,
    /// Distance in job IDs.
    Job,
}

impl fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceMetric::Stage => write!(f, "stage"),
            DistanceMetric::Job => write!(f, "job"),
        }
    }
}

/// A reference distance: how far ahead (in stages or jobs) the next
/// reference to a block lies.
///
/// `Infinite` means the block has no recorded future reference — the paper
/// encodes this as a negative value (Algorithm 1 line 13); we use a proper
/// variant. Ordering places every finite distance below `Infinite`, so
/// "largest distance evicts first" naturally evicts dead data first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefDistance {
    /// The next reference is `n` steps ahead (0 = referenced by the current
    /// step).
    Finite(u32),
    /// No future reference is known.
    Infinite,
}

impl RefDistance {
    /// Whether this distance is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        matches!(self, RefDistance::Finite(_))
    }

    /// The finite value, if any.
    #[inline]
    pub fn finite(self) -> Option<u32> {
        match self {
            RefDistance::Finite(n) => Some(n),
            RefDistance::Infinite => None,
        }
    }
}

impl PartialOrd for RefDistance {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RefDistance {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (RefDistance::Finite(a), RefDistance::Finite(b)) => a.cmp(b),
            (RefDistance::Finite(_), RefDistance::Infinite) => Ordering::Less,
            (RefDistance::Infinite, RefDistance::Finite(_)) => Ordering::Greater,
            (RefDistance::Infinite, RefDistance::Infinite) => Ordering::Equal,
        }
    }
}

impl fmt::Display for RefDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefDistance::Finite(n) => write!(f, "{n}"),
            RefDistance::Infinite => write!(f, "inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_puts_infinite_last() {
        assert!(RefDistance::Finite(0) < RefDistance::Finite(5));
        assert!(RefDistance::Finite(u32::MAX) < RefDistance::Infinite);
        assert_eq!(RefDistance::Infinite, RefDistance::Infinite);
    }

    #[test]
    fn max_of_mixed_is_infinite() {
        let d = [
            RefDistance::Finite(3),
            RefDistance::Infinite,
            RefDistance::Finite(100),
        ];
        assert_eq!(d.iter().max(), Some(&RefDistance::Infinite));
        assert_eq!(d.iter().min(), Some(&RefDistance::Finite(3)));
    }

    #[test]
    fn accessors() {
        assert!(RefDistance::Finite(2).is_finite());
        assert_eq!(RefDistance::Finite(2).finite(), Some(2));
        assert!(!RefDistance::Infinite.is_finite());
        assert_eq!(RefDistance::Infinite.finite(), None);
    }

    #[test]
    fn display() {
        assert_eq!(RefDistance::Finite(7).to_string(), "7");
        assert_eq!(RefDistance::Infinite.to_string(), "inf");
        assert_eq!(DistanceMetric::Stage.to_string(), "stage");
        assert_eq!(DistanceMetric::Job.to_string(), "job");
    }
}
