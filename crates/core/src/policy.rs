//! The MRD cache policy, packaged for the cluster simulator.
//!
//! Wires [`crate::MrdManager`] and per-node [`crate::CacheMonitor`]s into the
//! [`refdist_policies::CachePolicy`] interface, in the three operating modes
//! of the paper's Figure 4 ablation:
//!
//! * [`MrdMode::EvictOnly`] — MRD eviction, no prefetching.
//! * [`MrdMode::PrefetchOnly`] — MRD prefetching over Spark's default LRU
//!   eviction.
//! * [`MrdMode::Full`] — both (the headline configuration).

use crate::distance::DistanceMetric;
use crate::manager::MrdManager;
use crate::monitor::{CacheMonitor, TieBreak};
use refdist_dag::{AppProfile, BlockId, BlockSlots, JobId, RddId, SlotMap, StageId};
use refdist_policies::{CachePolicy, VictimIndex};
use refdist_store::NodeId;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Which halves of MRD are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MrdMode {
    /// Distance-based eviction only.
    EvictOnly,
    /// Distance-based prefetching over LRU eviction.
    PrefetchOnly,
    /// Eviction and prefetching (the full policy).
    #[default]
    Full,
}

/// MRD configuration.
#[derive(Debug, Clone, Copy)]
pub struct MrdConfig {
    /// Enabled halves of the policy.
    pub mode: MrdMode,
    /// Stage or job distances (§5.7 compares the two).
    pub metric: DistanceMetric,
    /// Only prefetch blocks whose reference distance is at most this many
    /// steps ahead (0 = unlimited). Algorithm 1 fetches "the data block with
    /// the lowest value"; bounding the horizon keeps aggressive prefetching
    /// from dragging in far-future blocks that memory pressure would evict
    /// again before use (the hazard §4.4 acknowledges).
    pub prefetch_horizon: u32,
    /// Distance tie-breaking rule (see [`TieBreak`]).
    pub tie_break: TieBreak,
}

impl Default for MrdConfig {
    fn default() -> Self {
        MrdConfig {
            mode: MrdMode::default(),
            metric: DistanceMetric::default(),
            prefetch_horizon: 6,
            tie_break: TieBreak::default(),
        }
    }
}

/// The Most Reference Distance policy.
#[derive(Debug)]
pub struct MrdPolicy {
    cfg: MrdConfig,
    manager: MrdManager,
    monitors: HashMap<NodeId, CacheMonitor>,
    /// LRU state used when `PrefetchOnly` leaves eviction to the default
    /// policy; not maintained in the MRD eviction modes (nothing reads it
    /// there).
    lru_clock: u64,
    lru_touch: SlotMap<u64>,
    /// Ordered LRU victim index, maintained only in `PrefetchOnly` mode
    /// (MRD modes select victims through the node monitors instead).
    lru_index: VictimIndex<u64>,
    /// The runtime's slot arena, when attached; handed to every monitor so
    /// their per-block state is slot-indexed.
    slots: Option<Arc<BlockSlots>>,
    /// Distance-table replicas re-issued to replacement monitors after a
    /// node rejoin (§4.4 recovery).
    replicas_reissued: u64,
}

impl MrdPolicy {
    /// New MRD policy with the given configuration.
    pub fn new(cfg: MrdConfig) -> Self {
        MrdPolicy {
            cfg,
            manager: MrdManager::new(cfg.metric),
            monitors: HashMap::new(),
            lru_clock: 0,
            lru_touch: SlotMap::hashed(),
            lru_index: VictimIndex::new(),
            slots: None,
            replicas_reissued: 0,
        }
    }

    /// Full MRD with stage distances (the paper's headline configuration).
    pub fn full() -> Self {
        Self::new(MrdConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> MrdConfig {
        self.cfg
    }

    /// The central manager (for inspection in tests and experiments).
    pub fn manager(&self) -> &MrdManager {
        &self.manager
    }

    /// The monitor for `node`, if it has been created.
    pub fn monitor(&self, node: NodeId) -> Option<&CacheMonitor> {
        self.monitors.get(&node)
    }

    /// Distance-table replicas re-issued to replacement monitors after node
    /// rejoins (§4.4 fault recovery); one per [`on_node_join`] call.
    ///
    /// [`on_node_join`]: refdist_policies::CachePolicy::on_node_join
    pub fn replicas_reissued(&self) -> u64 {
        self.replicas_reissued
    }

    /// Total monitor synchronization messages sent (overhead accounting).
    pub fn sync_messages(&self) -> u64 {
        self.manager.broadcasts()
    }

    fn monitor_synced(&mut self, node: NodeId) -> &mut CacheMonitor {
        let tie = self.cfg.tie_break;
        let slots = &self.slots;
        let mon = self.monitors.entry(node).or_insert_with(|| {
            let mut m = CacheMonitor::with_tie(node, tie);
            if let Some(s) = slots {
                m.attach_slots(s);
            }
            m
        });
        self.manager.sync_monitor(mon);
        mon
    }

    fn lru_touch(&mut self, block: BlockId) -> u64 {
        self.lru_clock += 1;
        self.lru_touch.insert(block, self.lru_clock);
        self.lru_clock
    }

    fn uses_lru_eviction(&self) -> bool {
        !self.uses_mrd_eviction()
    }

    fn uses_mrd_eviction(&self) -> bool {
        matches!(self.cfg.mode, MrdMode::EvictOnly | MrdMode::Full)
    }
}

impl CachePolicy for MrdPolicy {
    fn name(&self) -> String {
        let mode = match self.cfg.mode {
            MrdMode::EvictOnly => "evict-only",
            MrdMode::PrefetchOnly => "prefetch-only",
            MrdMode::Full => "full",
        };
        format!("MRD({mode},{})", self.cfg.metric)
    }

    fn on_job_submit(&mut self, job: JobId, visible: &AppProfile) {
        self.manager.on_job_submit(job, visible);
    }

    fn on_stage_start(&mut self, stage: StageId, _visible: &AppProfile) {
        self.manager.on_stage_start(stage);
    }

    fn attach_slots(&mut self, slots: &Arc<BlockSlots>) {
        let mut dense = SlotMap::dense(Arc::clone(slots));
        for (b, &t) in self.lru_touch.iter() {
            dense.insert(b, t);
        }
        self.lru_touch = dense;
        for mon in self.monitors.values_mut() {
            mon.attach_slots(slots);
        }
        self.slots = Some(Arc::clone(slots));
    }

    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        if self.uses_lru_eviction() {
            let key = self.lru_touch(block);
            self.lru_index.insert(node, block, key);
            self.lru_index.rekey(block, key);
        }
        self.monitor_synced(node).touch(block);
    }

    fn on_access(&mut self, node: NodeId, block: BlockId) {
        if self.uses_lru_eviction() {
            let key = self.lru_touch(block);
            self.lru_index.rekey(block, key);
        }
        self.monitor_synced(node).touch(block);
    }

    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        if self.uses_lru_eviction() {
            self.lru_touch.remove(block);
            self.lru_index.remove(node, block, 0);
        }
        if let Some(mon) = self.monitors.get_mut(&node) {
            mon.forget(block);
        }
    }

    fn on_node_join(&mut self, node: NodeId) {
        // The old executor's monitor died with it. Drop ours, create a
        // fresh one, and have the MRDmanager re-issue the distance-table
        // replica to it right away — the paper's §4.4 recovery protocol.
        // (Block-level state needs no work here: the runtime reported every
        // lost block via `on_remove` at crash time.)
        self.monitors.remove(&node);
        self.replicas_reissued += 1;
        self.monitor_synced(node);
    }

    fn pick_victim(&mut self, node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        if self.uses_mrd_eviction() {
            let tie = self.cfg.tie_break;
            self.monitor_synced(node).pick_victim_with(candidates, tie)
        } else {
            // PrefetchOnly: eviction stays LRU, as in stock Spark.
            candidates
                .iter()
                .copied()
                .min_by_key(|&b| (self.lru_touch.get(b).copied().unwrap_or(0), b))
        }
    }

    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        if self.uses_mrd_eviction() {
            self.monitor_synced(node).select_victims(shortfall, resident)
        } else {
            self.lru_index.select(node, shortfall, resident)
        }
    }

    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        if !self.uses_mrd_eviction() {
            return Vec::new();
        }
        // Cluster-wide purge of RDDs that reached infinite distance.
        let dead: Vec<RddId> = self.manager.take_purge_order();
        if dead.is_empty() {
            return Vec::new();
        }
        in_memory
            .iter()
            .copied()
            .filter(|b| dead.contains(&b.rdd))
            .collect()
    }

    fn prefetch_order(&mut self, node: NodeId, missing: &[BlockId]) -> Vec<BlockId> {
        if !self.wants_prefetch() {
            return Vec::new();
        }
        let horizon = self.cfg.prefetch_horizon;
        self.monitor_synced(node).prefetch_order(missing, horizon)
    }

    fn wants_prefetch(&self) -> bool {
        matches!(self.cfg.mode, MrdMode::PrefetchOnly | MrdMode::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddRefs;
    use std::collections::BTreeMap;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    const N: NodeId = NodeId(0);

    fn profile(entries: &[(u32, &[u32])]) -> AppProfile {
        let mut per_rdd = BTreeMap::new();
        for &(r, stages) in entries {
            per_rdd.insert(
                RddId(r),
                RddRefs {
                    rdd: RddId(r),
                    stages: stages.iter().map(|&s| StageId(s)).collect(),
                    jobs: stages.iter().map(|_| JobId(0)).collect(),
                },
            );
        }
        AppProfile {
            per_rdd,
            per_stage: vec![],
            stage_job: Vec::new().into(),
            num_jobs: 1,
        }
    }

    fn policy(mode: MrdMode) -> MrdPolicy {
        MrdPolicy::new(MrdConfig {
            mode,
            metric: DistanceMetric::Stage,
            ..Default::default()
        })
    }

    #[test]
    fn full_mode_evicts_by_distance() {
        let mut p = policy(MrdMode::Full);
        p.on_job_submit(JobId(0), &profile(&[(0, &[2]), (1, &[50])]));
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(1, 0)]), Some(blk(1, 0)));
    }

    #[test]
    fn mrd_fixes_lrcs_far_future_pathology() {
        // Mirror of the LRC test: many far references vs one imminent.
        let mut p = policy(MrdMode::Full);
        p.on_job_submit(JobId(0), &profile(&[(0, &[90, 95, 99]), (1, &[2])]));
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        // MRD keeps the imminent block and evicts the far-future one.
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(1, 0)]), Some(blk(0, 0)));
    }

    #[test]
    fn prefetch_only_uses_lru_eviction() {
        let mut p = policy(MrdMode::PrefetchOnly);
        p.on_job_submit(JobId(0), &profile(&[(0, &[2]), (1, &[50])]));
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        p.on_access(N, blk(0, 0));
        // LRU would evict blk(1,0)?? No: blk(1,0) touched after blk(0,0)'s
        // insert but blk(0,0) re-accessed last; LRU evicts blk(1,0).
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(1, 0)]), Some(blk(1, 0)));
    }

    #[test]
    fn evict_only_does_not_prefetch() {
        let mut p = policy(MrdMode::EvictOnly);
        p.on_job_submit(JobId(0), &profile(&[(0, &[2])]));
        assert!(!p.wants_prefetch());
        assert!(p.prefetch_order(N, &[blk(0, 0)]).is_empty());
    }

    #[test]
    fn full_mode_prefetches_nearest_first() {
        let mut p = policy(MrdMode::Full);
        p.on_job_submit(JobId(0), &profile(&[(0, &[9]), (1, &[3]), (2, &[])]));
        // Default horizon is 6: the distance-9 block is beyond it and the
        // infinite-distance block is never prefetched.
        let order = p.prefetch_order(N, &[blk(0, 0), blk(1, 0), blk(2, 0)]);
        assert_eq!(order, vec![blk(1, 0)]);
        // An unlimited horizon ranks both finite blocks, nearest first.
        let mut p = MrdPolicy::new(MrdConfig {
            prefetch_horizon: 0,
            ..Default::default()
        });
        p.on_job_submit(JobId(0), &profile(&[(0, &[9]), (1, &[3]), (2, &[])]));
        let order = p.prefetch_order(N, &[blk(0, 0), blk(1, 0), blk(2, 0)]);
        assert_eq!(order, vec![blk(1, 0), blk(0, 0)]);
    }

    #[test]
    fn purge_targets_infinite_rdds_once() {
        let mut p = policy(MrdMode::Full);
        p.on_job_submit(JobId(0), &profile(&[(0, &[1]), (1, &[9])]));
        p.on_stage_start(StageId(2), &profile(&[]));
        let purged = p.purge_candidates(&[blk(0, 0), blk(0, 1), blk(1, 0)]);
        assert_eq!(purged, vec![blk(0, 0), blk(0, 1)]);
        // Second call: nothing new.
        assert!(p.purge_candidates(&[blk(0, 0)]).is_empty());
    }

    #[test]
    fn prefetch_only_mode_never_purges() {
        let mut p = policy(MrdMode::PrefetchOnly);
        p.on_job_submit(JobId(0), &profile(&[(0, &[1])]));
        p.on_stage_start(StageId(5), &profile(&[]));
        assert!(p.purge_candidates(&[blk(0, 0)]).is_empty());
    }

    #[test]
    fn distances_advance_with_stages() {
        let mut p = policy(MrdMode::Full);
        p.on_job_submit(JobId(0), &profile(&[(0, &[4]), (1, &[6])]));
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        // At stage 5 rdd0's only ref has passed: infinite, evicts first.
        p.on_stage_start(StageId(5), &profile(&[]));
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(1, 0)]), Some(blk(0, 0)));
    }

    #[test]
    fn monitors_are_per_node() {
        let mut p = policy(MrdMode::Full);
        p.on_job_submit(JobId(0), &profile(&[(0, &[2])]));
        p.on_insert(NodeId(0), blk(0, 0));
        p.on_insert(NodeId(1), blk(0, 1));
        assert!(p.monitor(NodeId(0)).is_some());
        assert!(p.monitor(NodeId(1)).is_some());
        assert!(p.monitor(NodeId(2)).is_none());
        assert!(p.sync_messages() >= 2);
    }

    #[test]
    fn name_reflects_mode_and_metric() {
        assert_eq!(policy(MrdMode::Full).name(), "MRD(full,stage)");
        let j = MrdPolicy::new(MrdConfig {
            mode: MrdMode::EvictOnly,
            metric: DistanceMetric::Job,
            ..Default::default()
        });
        assert_eq!(j.name(), "MRD(evict-only,job)");
    }
}
