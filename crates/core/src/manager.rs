//! MRDmanager: the centralized component owning the MRD table (paper §4.2).
//!
//! Receives reference-distance profiles from the [`crate::AppProfiler`]
//! (`updateReferenceDistance`), advances the table as execution proceeds
//! from stage to stage (`newReferenceDistance`), issues the cluster-wide
//! purge order for RDDs whose distance has gone infinite, and replicates the
//! table to each node's [`crate::CacheMonitor`] (`sendReferenceDistance`),
//! counting the broadcast messages so the communication overhead of §4.4 can
//! be measured.

use crate::distance::DistanceMetric;
use crate::monitor::CacheMonitor;
use crate::table::MrdTable;
use refdist_dag::{AppProfile, JobId, RddId, StageId};

/// The centralized MRD manager.
#[derive(Debug, Clone)]
pub struct MrdManager {
    table: MrdTable,
    metric: DistanceMetric,
    /// RDDs already purged, so repeated purge orders are not re-issued.
    purged: Vec<RddId>,
    /// Number of table replications sent to monitors.
    broadcasts: u64,
}

impl MrdManager {
    /// New manager measuring distances with `metric`.
    pub fn new(metric: DistanceMetric) -> Self {
        MrdManager {
            table: MrdTable::new(metric),
            metric,
            purged: Vec::new(),
            broadcasts: 0,
        }
    }

    /// The distance metric in use.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// Read access to the MRD table.
    pub fn table(&self) -> &MrdTable {
        &self.table
    }

    /// Total table replications sent to monitors so far.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// A job's DAG became visible: fold its references into the table
    /// (`updateReferenceDistance`) and, under the job metric, advance the
    /// execution point to this job.
    pub fn on_job_submit(&mut self, job: JobId, visible: &AppProfile) {
        self.table.merge_profile(visible);
        if self.metric == DistanceMetric::Job {
            self.table.advance_to(job.0);
        }
    }

    /// Execution advanced to `stage`: decrement all distances accordingly
    /// (`newReferenceDistance`). Under the job metric stage starts do not
    /// move the execution point.
    pub fn on_stage_start(&mut self, stage: StageId) {
        if self.metric == DistanceMetric::Stage {
            self.table.advance_to(stage.0);
        }
    }

    /// RDDs whose reference distance is infinite and that have not been
    /// purged yet — the targets of the next cluster-wide purge order
    /// (Algorithm 1 lines 13–17). Marks them purged.
    pub fn take_purge_order(&mut self) -> Vec<RddId> {
        let fresh: Vec<RddId> = self
            .table
            .infinite_rdds()
            .filter(|r| !self.purged.contains(r))
            .collect();
        self.purged.extend(&fresh);
        fresh
    }

    /// RDDs currently known to be dead (purged or infinite).
    pub fn is_dead(&self, rdd: RddId) -> bool {
        self.purged.contains(&rdd) || !self.table.distance(rdd).is_finite()
    }

    /// Synchronize a monitor's replica if it is stale
    /// (`sendReferenceDistance` / `getReferenceDistance`). Returns whether a
    /// message was sent.
    pub fn sync_monitor(&mut self, monitor: &mut CacheMonitor) -> bool {
        if monitor.table_version() == Some(self.table.version()) {
            return false;
        }
        monitor.receive_table(self.table.clone());
        self.broadcasts += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::RefDistance;
    use refdist_dag::RddRefs;
    use refdist_store::NodeId;
    use std::collections::BTreeMap;

    fn profile(entries: &[(u32, &[u32], &[u32])]) -> AppProfile {
        let mut per_rdd = BTreeMap::new();
        for &(r, stages, jobs) in entries {
            per_rdd.insert(
                RddId(r),
                RddRefs {
                    rdd: RddId(r),
                    stages: stages.iter().map(|&s| StageId(s)).collect(),
                    jobs: jobs.iter().map(|&j| JobId(j)).collect(),
                },
            );
        }
        AppProfile {
            per_rdd,
            per_stage: vec![],
            stage_job: Vec::new().into(),
            num_jobs: 0,
        }
    }

    #[test]
    fn stage_metric_advances_on_stages() {
        let mut m = MrdManager::new(DistanceMetric::Stage);
        m.on_job_submit(JobId(0), &profile(&[(0, &[2, 6], &[0, 1])]));
        assert_eq!(m.table().distance(RddId(0)), RefDistance::Finite(2));
        m.on_stage_start(StageId(3));
        assert_eq!(m.table().distance(RddId(0)), RefDistance::Finite(3));
    }

    #[test]
    fn job_metric_advances_on_jobs() {
        let mut m = MrdManager::new(DistanceMetric::Job);
        m.on_job_submit(JobId(0), &profile(&[(0, &[2, 6], &[0, 1])]));
        assert_eq!(m.table().distance(RddId(0)), RefDistance::Finite(0));
        m.on_stage_start(StageId(5)); // ignored under job metric
        assert_eq!(m.table().distance(RddId(0)), RefDistance::Finite(0));
        m.on_job_submit(JobId(1), &profile(&[(0, &[2, 6], &[0, 1])]));
        assert_eq!(m.table().distance(RddId(0)), RefDistance::Finite(0));
    }

    #[test]
    fn purge_order_fires_once_per_rdd() {
        let mut m = MrdManager::new(DistanceMetric::Stage);
        m.on_job_submit(JobId(0), &profile(&[(0, &[1], &[0]), (1, &[5], &[0])]));
        m.on_stage_start(StageId(2));
        assert_eq!(m.take_purge_order(), vec![RddId(0)]);
        assert!(m.take_purge_order().is_empty());
        assert!(m.is_dead(RddId(0)));
        assert!(!m.is_dead(RddId(1)));
        m.on_stage_start(StageId(6));
        assert_eq!(m.take_purge_order(), vec![RddId(1)]);
    }

    #[test]
    fn monitor_sync_counts_broadcasts() {
        let mut m = MrdManager::new(DistanceMetric::Stage);
        let mut mon = CacheMonitor::new(NodeId(0));
        m.on_job_submit(JobId(0), &profile(&[(0, &[3], &[0])]));
        assert!(m.sync_monitor(&mut mon));
        assert!(!m.sync_monitor(&mut mon)); // already fresh
        assert_eq!(m.broadcasts(), 1);
        m.on_stage_start(StageId(1));
        assert!(m.sync_monitor(&mut mon));
        assert_eq!(m.broadcasts(), 2);
    }
}
