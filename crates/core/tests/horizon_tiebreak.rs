//! Edge-case coverage for [`MrdConfig::prefetch_horizon`] and [`TieBreak`]
//! ordering, exercised through the public crate API (ISSUE satellite):
//!
//! * horizon `0` means *unlimited* — every finite-distance block is ranked;
//! * a horizon smaller than a block's stage distance excludes that block,
//!   while `distance == horizon` is still inside the window;
//! * `TieBreak::Mru` and `TieBreak::Lru` pick opposite victims among
//!   equal-distance blocks, and fall back to the lowest block id when
//!   recency also ties.

use refdist_core::{
    CacheMonitor, DistanceMetric, MrdConfig, MrdMode, MrdPolicy, MrdTable, RefDistance, TieBreak,
};
use refdist_dag::{AppProfile, BlockId, JobId, RddId, RddRefs, StageId};
use refdist_policies::CachePolicy;
use refdist_store::NodeId;
use std::collections::BTreeMap;

const N: NodeId = NodeId(0);

fn blk(r: u32, p: u32) -> BlockId {
    BlockId::new(RddId(r), p)
}

/// An [`AppProfile`] where RDD `r` is referenced at the given stage numbers.
/// With the current stage at 0, an RDD referenced at stage `s` has stage
/// distance exactly `s`.
fn profile(entries: &[(u32, &[u32])]) -> AppProfile {
    let mut per_rdd = BTreeMap::new();
    for &(r, stages) in entries {
        per_rdd.insert(
            RddId(r),
            RddRefs {
                rdd: RddId(r),
                stages: stages.iter().map(|&s| StageId(s)).collect(),
                jobs: stages.iter().map(|_| JobId(0)).collect(),
            },
        );
    }
    AppProfile {
        per_rdd,
        per_stage: vec![],
        stage_job: Vec::new().into(),
        num_jobs: 1,
    }
}

fn policy_with(cfg: MrdConfig, entries: &[(u32, &[u32])]) -> MrdPolicy {
    let mut p = MrdPolicy::new(cfg);
    p.on_job_submit(JobId(0), &profile(entries));
    p
}

fn monitor(entries: &[(u32, &[u32])]) -> CacheMonitor {
    let mut t = MrdTable::from_profile(DistanceMetric::Stage, &profile(entries));
    t.advance_to(0);
    let mut m = CacheMonitor::new(N);
    m.receive_table(t);
    m
}

// ---------------------------------------------------------------------------
// prefetch_horizon
// ---------------------------------------------------------------------------

#[test]
fn default_config_has_bounded_horizon() {
    let cfg = MrdConfig::default();
    assert_eq!(cfg.prefetch_horizon, 6);
    assert_eq!(cfg.tie_break, TieBreak::Mru);
}

#[test]
fn horizon_zero_is_unlimited() {
    let cfg = MrdConfig {
        prefetch_horizon: 0,
        ..Default::default()
    };
    // Distances 3, 900, and infinity: an unlimited horizon ranks every
    // finite block (nearest first) and still never touches the infinite one.
    let mut p = policy_with(cfg, &[(0, &[900]), (1, &[3]), (2, &[])]);
    let order = p.prefetch_order(N, &[blk(0, 0), blk(1, 0), blk(2, 0)]);
    assert_eq!(order, vec![blk(1, 0), blk(0, 0)]);
}

#[test]
fn horizon_smaller_than_stage_distance_excludes_block() {
    // The block's stage distance is 7; a horizon of 6 must not prefetch it.
    let cfg = MrdConfig {
        prefetch_horizon: 6,
        ..Default::default()
    };
    let mut p = policy_with(cfg, &[(0, &[7])]);
    assert!(p.prefetch_order(N, &[blk(0, 0)]).is_empty());
}

#[test]
fn horizon_boundary_is_inclusive() {
    // distance == horizon is still inside the window (`d <= horizon`).
    let cfg = MrdConfig {
        prefetch_horizon: 6,
        ..Default::default()
    };
    let mut p = policy_with(cfg, &[(0, &[6])]);
    assert_eq!(p.prefetch_order(N, &[blk(0, 0)]), vec![blk(0, 0)]);
}

#[test]
fn horizon_one_keeps_only_imminent_blocks() {
    let cfg = MrdConfig {
        prefetch_horizon: 1,
        ..Default::default()
    };
    let mut p = policy_with(cfg, &[(0, &[1]), (1, &[2]), (2, &[5])]);
    let order = p.prefetch_order(N, &[blk(0, 0), blk(1, 0), blk(2, 0)]);
    assert_eq!(order, vec![blk(0, 0)]);
}

#[test]
fn monitor_applies_horizon_per_call() {
    // The same monitor state filtered at different horizons: the window is a
    // pure function of the argument, not cached state.
    let mut m = monitor(&[(0, &[2]), (1, &[4]), (2, &[8])]);
    let all = [blk(0, 0), blk(1, 0), blk(2, 0)];
    assert_eq!(m.prefetch_order(&all, 0), vec![blk(0, 0), blk(1, 0), blk(2, 0)]);
    assert_eq!(m.prefetch_order(&all, 4), vec![blk(0, 0), blk(1, 0)]);
    assert_eq!(m.prefetch_order(&all, 1), Vec::<BlockId>::new());
}

#[test]
fn horizon_window_tracks_stage_progress() {
    // A block outside the horizon drifts into it as stages complete and its
    // distance shrinks.
    let entries: &[(u32, &[u32])] = &[(0, &[8])];
    let mut t = MrdTable::from_profile(DistanceMetric::Stage, &profile(entries));
    t.advance_to(0);
    let mut m = CacheMonitor::new(N);
    m.receive_table(t.clone());
    assert_eq!(m.distance(blk(0, 0)), RefDistance::Finite(8));
    assert!(m.prefetch_order(&[blk(0, 0)], 6).is_empty());

    t.advance_to(4);
    m.receive_table(t);
    assert_eq!(m.distance(blk(0, 0)), RefDistance::Finite(4));
    assert_eq!(m.prefetch_order(&[blk(0, 0)], 6), vec![blk(0, 0)]);
}

// ---------------------------------------------------------------------------
// TieBreak ordering
// ---------------------------------------------------------------------------

/// A monitor holding two equal-distance blocks where `blk(0,0)` was touched
/// first and `blk(1,0)` most recently.
fn tied_monitor() -> CacheMonitor {
    let mut m = monitor(&[(0, &[5]), (1, &[5])]);
    m.touch(blk(0, 0));
    m.touch(blk(1, 0));
    m
}

#[test]
fn mru_and_lru_pick_opposite_victims_on_ties() {
    let m = tied_monitor();
    let cands = [blk(0, 0), blk(1, 0)];
    // MRU evicts the most recently touched block, LRU the least recent.
    assert_eq!(m.pick_victim_with(&cands, TieBreak::Mru), Some(blk(1, 0)));
    assert_eq!(m.pick_victim_with(&cands, TieBreak::Lru), Some(blk(0, 0)));
}

#[test]
fn tiebreak_is_irrelevant_when_distances_differ() {
    let mut m = monitor(&[(0, &[3]), (1, &[9])]);
    m.touch(blk(0, 0));
    m.touch(blk(1, 0));
    let cands = [blk(0, 0), blk(1, 0)];
    // The farther block loses under either rule; recency never enters.
    assert_eq!(m.pick_victim_with(&cands, TieBreak::Mru), Some(blk(1, 0)));
    assert_eq!(m.pick_victim_with(&cands, TieBreak::Lru), Some(blk(1, 0)));
}

#[test]
fn equal_recency_falls_back_to_lowest_id() {
    // No touches at all: distance and recency both tie, so the victim is the
    // lowest block id under both rules — fully deterministic.
    let m = monitor(&[(0, &[5]), (1, &[5])]);
    let cands = [blk(1, 0), blk(0, 0)];
    assert_eq!(m.pick_victim_with(&cands, TieBreak::Mru), Some(blk(0, 0)));
    assert_eq!(m.pick_victim_with(&cands, TieBreak::Lru), Some(blk(0, 0)));
}

#[test]
fn policy_routes_configured_tiebreak_to_monitor() {
    // The same insert sequence under the two configs: MrdPolicy must forward
    // its configured rule, so the victims come out opposite.
    for (tie, expect) in [(TieBreak::Mru, blk(1, 0)), (TieBreak::Lru, blk(0, 0))] {
        let cfg = MrdConfig {
            mode: MrdMode::EvictOnly,
            tie_break: tie,
            ..Default::default()
        };
        let mut p = policy_with(cfg, &[(0, &[5]), (1, &[5])]);
        p.on_insert(N, blk(0, 0));
        p.on_insert(N, blk(1, 0));
        assert_eq!(p.pick_victim(N, &[blk(0, 0), blk(1, 0)]), Some(expect), "{tie:?}");
    }
}
