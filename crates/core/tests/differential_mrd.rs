//! Differential property test for MRD: the monitor's ordered victim index
//! (with its lazy rebuild on table-version bumps) must reproduce the naive
//! `pick_victim_with` scan byte-for-byte — across all three operating
//! modes, both tie-break rules, and both distance metrics, under randomized
//! traces that interleave table advances (stage/job events) with inserts,
//! accesses, removals, and evictions on two nodes.

use proptest::prelude::*;
use refdist_core::{DistanceMetric, MrdConfig, MrdMode, MrdPolicy, TieBreak};
use refdist_dag::{AppProfile, BlockId, JobId, RddId, RddRefs, StageId, StageTouches};
use refdist_policies::CachePolicy;
use refdist_store::NodeId;
use std::collections::BTreeMap;

const NODES: u32 = 2;

#[derive(Debug, Clone)]
enum Ev {
    Insert(u8, u8),
    Access(u8, u8),
    Remove(u8, u8),
    Evict(u8, u8),
    Stage(u8),
    Job(u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(b, n)| Ev::Insert(b, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(b, n)| Ev::Insert(b, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(b, n)| Ev::Access(b, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(b, n)| Ev::Remove(b, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(s, n)| Ev::Evict(s, n)),
        (0u8..20).prop_map(Ev::Stage),
        (0u8..5).prop_map(Ev::Job),
    ]
}

fn blk(b: u8) -> BlockId {
    BlockId::new(RddId(b as u32 % 8), (b as u32 / 8) % 4)
}

fn node(n: u8) -> NodeId {
    NodeId(n as u32 % NODES)
}

fn size_of(b: BlockId) -> u64 {
    u64::from(b.rdd.0 + b.partition) % 3 + 1
}

/// RDD r referenced at stages r, r+2, r+5; some RDDs go infinite early so
/// both finite and infinite distances appear in the index.
fn profile() -> AppProfile {
    let mut per_rdd = BTreeMap::new();
    let mut per_stage = vec![StageTouches::default(); 28];
    for r in 0..8u32 {
        let stages = [r, r + 2, r + 5];
        per_rdd.insert(
            RddId(r),
            RddRefs {
                rdd: RddId(r),
                stages: stages.iter().map(|&s| StageId(s)).collect(),
                jobs: stages.iter().map(|&s| JobId(s / 4)).collect(),
            },
        );
        for &s in &stages {
            per_stage[s as usize].reads.push(RddId(r));
        }
    }
    AppProfile {
        per_rdd,
        per_stage,
        stage_job: (0..28).map(|s| JobId(s / 4)).collect(),
        num_jobs: 7,
    }
}

/// The old protocol: sorted-scan pick, on_remove, repeat.
fn naive_select(
    policy: &mut MrdPolicy,
    n: NodeId,
    shortfall: u64,
    resident: &mut BTreeMap<BlockId, u64>,
) -> Vec<BlockId> {
    let mut victims = Vec::new();
    let mut freed = 0u64;
    while freed < shortfall {
        let cands: Vec<BlockId> = resident.keys().copied().collect();
        if cands.is_empty() {
            break;
        }
        let Some(v) = policy.pick_victim(n, &cands) else {
            break;
        };
        let size = resident.remove(&v).expect("victim must be a candidate");
        policy.on_remove(n, v);
        freed += size;
        victims.push(v);
    }
    victims
}

fn batched_select(
    policy: &mut MrdPolicy,
    n: NodeId,
    shortfall: u64,
    resident: &mut BTreeMap<BlockId, u64>,
) -> Vec<BlockId> {
    let victims = policy.select_victims(n, shortfall, resident);
    for &v in &victims {
        assert!(
            resident.remove(&v).is_some(),
            "selected non-resident victim {v}"
        );
        policy.on_remove(n, v);
    }
    victims
}

fn assert_equivalent(cfg: MrdConfig, events: &[Ev]) {
    let prof = profile();
    let mut reference = MrdPolicy::new(cfg);
    let mut indexed = MrdPolicy::new(cfg);
    let mut ra: Vec<BTreeMap<BlockId, u64>> = (0..NODES).map(|_| BTreeMap::new()).collect();
    let mut rb = ra.clone();
    reference.on_job_submit(JobId(0), &prof);
    indexed.on_job_submit(JobId(0), &prof);
    let mut stage = 0u8;
    for ev in events {
        match *ev {
            Ev::Insert(b, nn) => {
                let (b, n) = (blk(b), node(nn));
                ra[n.0 as usize].insert(b, size_of(b));
                rb[n.0 as usize].insert(b, size_of(b));
                reference.on_insert(n, b);
                indexed.on_insert(n, b);
            }
            Ev::Access(b, nn) => {
                let (b, n) = (blk(b), node(nn));
                reference.on_access(n, b);
                indexed.on_access(n, b);
            }
            Ev::Remove(b, nn) => {
                let (b, n) = (blk(b), node(nn));
                if ra[n.0 as usize].remove(&b).is_some() {
                    rb[n.0 as usize].remove(&b).expect("mirrors agree");
                    reference.on_remove(n, b);
                    indexed.on_remove(n, b);
                }
            }
            Ev::Evict(s, nn) => {
                let n = node(nn);
                let shortfall = u64::from(s) % 9 + 1;
                let va = naive_select(&mut reference, n, shortfall, &mut ra[n.0 as usize]);
                let vb = batched_select(&mut indexed, n, shortfall, &mut rb[n.0 as usize]);
                assert_eq!(
                    va, vb,
                    "victim sequences diverged ({}, tie {:?}, node {n:?}, shortfall {shortfall})",
                    reference.name(),
                    cfg.tie_break,
                );
            }
            Ev::Stage(s) => {
                stage = stage.max(s);
                reference.on_stage_start(StageId(stage as u32), &prof);
                indexed.on_stage_start(StageId(stage as u32), &prof);
            }
            Ev::Job(j) => {
                reference.on_job_submit(JobId(j as u32), &prof);
                indexed.on_job_submit(JobId(j as u32), &prof);
            }
        }
        assert_eq!(ra, rb, "resident mirrors diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_mrd_matches_naive_scan(
        events in prop::collection::vec(ev_strategy(), 0..100),
    ) {
        for mode in [MrdMode::Full, MrdMode::EvictOnly, MrdMode::PrefetchOnly] {
            for tie in [TieBreak::Mru, TieBreak::Lru] {
                for metric in [DistanceMetric::Stage, DistanceMetric::Job] {
                    let cfg = MrdConfig { mode, metric, tie_break: tie, ..Default::default() };
                    assert_equivalent(cfg, &events);
                }
            }
        }
    }
}
