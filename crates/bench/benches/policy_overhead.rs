//! §4.4 overhead verification: MRD's bookkeeping must be "relatively small
//! and comparable to the LRU (default) caching policy" — only a small sort
//! over fewer than ~300 references.
//!
//! Benches the hot-path operations of every policy — victim selection over a
//! populated cache, access bookkeeping, and MRD's stage-advance table update
//! plus monitor synchronization — at cache populations bracketing the
//! paper's table sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refdist_core::{MrdManager, MrdPolicy};
use refdist_dag::{AppProfile, BlockId, JobId, RddId, RddRefs, StageId};
use refdist_policies::{CachePolicy, PolicyKind};
use refdist_store::NodeId;
use std::collections::BTreeMap;
use std::hint::black_box;

const NODE: NodeId = NodeId(0);

/// A profile with `rdds` cached RDDs, each referenced every 3 stages.
fn synthetic_profile(rdds: u32) -> AppProfile {
    let mut per_rdd = BTreeMap::new();
    for r in 0..rdds {
        let stages: Vec<StageId> = (0..6).map(|k| StageId(r % 3 + k * 3)).collect();
        per_rdd.insert(
            RddId(r),
            RddRefs {
                rdd: RddId(r),
                jobs: stages.iter().map(|s| JobId(s.0 / 4)).collect(),
                stages: stages.into(),
            },
        );
    }
    AppProfile {
        per_rdd,
        per_stage: vec![Default::default(); 32],
        stage_job: (0..32).map(|s| JobId(s / 4)).collect(),
        num_jobs: 8,
    }
}

fn populated(policy: &mut dyn CachePolicy, blocks: &[BlockId], profile: &AppProfile) {
    policy.on_job_submit(JobId(0), profile);
    policy.on_stage_start(StageId(0), profile);
    for &b in blocks {
        policy.on_insert(NODE, b);
    }
}

fn bench_pick_victim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pick_victim");
    for &population in &[64usize, 256, 1024] {
        let blocks: Vec<BlockId> = (0..population)
            .map(|i| BlockId::new(RddId((i % 48) as u32), (i / 48) as u32))
            .collect();
        let profile = synthetic_profile(48);
        let mut policies: Vec<Box<dyn CachePolicy>> = vec![
            PolicyKind::Lru.build(),
            PolicyKind::Lrc.build(),
            PolicyKind::MemTune.build(),
            Box::new(MrdPolicy::full()),
        ];
        for p in &mut policies {
            populated(&mut **p, &blocks, &profile);
        }
        for p in &mut policies {
            group.bench_with_input(
                BenchmarkId::new(p.name(), population),
                &population,
                |b, _| {
                    b.iter(|| black_box(p.pick_victim(NODE, black_box(&blocks))));
                },
            );
        }
    }
    group.finish();
}

fn bench_access_bookkeeping(c: &mut Criterion) {
    let mut group = c.benchmark_group("on_access");
    let blocks: Vec<BlockId> = (0..256)
        .map(|i| BlockId::new(RddId((i % 48) as u32), (i / 48) as u32))
        .collect();
    let profile = synthetic_profile(48);
    let mut policies: Vec<Box<dyn CachePolicy>> = vec![
        PolicyKind::Lru.build(),
        PolicyKind::Lrc.build(),
        Box::new(MrdPolicy::full()),
    ];
    for p in &mut policies {
        populated(&mut **p, &blocks, &profile);
    }
    for p in &mut policies {
        let mut i = 0usize;
        group.bench_function(p.name(), |b| {
            b.iter(|| {
                i = (i + 1) % blocks.len();
                p.on_access(NODE, black_box(blocks[i]));
            });
        });
    }
    group.finish();
}

fn bench_mrd_table_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrd_table");
    // The paper: the largest MRD_Table held fewer than 300 references.
    for &rdds in &[50u32, 100, 300] {
        let profile = synthetic_profile(rdds);
        group.bench_with_input(BenchmarkId::new("stage_advance", rdds), &rdds, |b, _| {
            let mut mgr = MrdManager::new(Default::default());
            mgr.on_job_submit(JobId(0), &profile);
            let mut stage = 0u32;
            b.iter(|| {
                stage += 1;
                mgr.on_stage_start(StageId(black_box(stage)));
            });
        });
        group.bench_with_input(BenchmarkId::new("monitor_sync", rdds), &rdds, |b, _| {
            let mut mgr = MrdManager::new(Default::default());
            mgr.on_job_submit(JobId(0), &profile);
            let mut mon = refdist_core::CacheMonitor::new(NODE);
            let mut stage = 0u32;
            b.iter(|| {
                stage += 1;
                mgr.on_stage_start(StageId(stage));
                black_box(mgr.sync_monitor(&mut mon));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pick_victim,
    bench_access_bookkeeping,
    bench_mrd_table_ops
);
criterion_main!(benches);
