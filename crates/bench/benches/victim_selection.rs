//! Victim-selection hot path: naive O(n) scan vs. the ordered index
//! (ISSUE 2).
//!
//! Each benchmark drives one steady-state churn step — an access, an
//! insert-under-pressure, and exactly one eviction through
//! `select_victims` — at cache populations of 1k, 10k and 100k blocks. The
//! `naive` variant wraps the policy in `NaiveScan`, reproducing the old
//! per-eviction re-collect + `pick_victim` protocol; the `indexed` variant
//! uses the policies' maintained ordered indexes. The ratio between the two
//! at a given population is the speedup the index buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refdist_bench::{bench_policies, Churn};
use std::hint::black_box;

/// In `--test` smoke mode, skip the 100k population: building ten 100k-block
/// caches just to run each body once is most of a minute for zero signal.
fn populations() -> &'static [usize] {
    if std::env::args().any(|a| a == "--test") {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    }
}

fn bench_evict_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("evict_churn");
    for &blocks in populations() {
        for (name, build) in bench_policies() {
            for (proto, naive) in [("naive", true), ("indexed", false)] {
                let mut churn = Churn::new(build, blocks, naive);
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/{proto}"), blocks),
                    &blocks,
                    |b, _| {
                        b.iter(|| black_box(churn.step()));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_evict_churn);
criterion_main!(benches);
