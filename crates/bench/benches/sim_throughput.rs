//! End-to-end simulator throughput: how fast the discrete-event engine
//! pushes a full application through, per policy. Keeps the experiment
//! harness honest — the parameter sweeps run hundreds of these.
//!
//! The `state_repr` group runs the same whole simulations on both per-block
//! state representations — the hash-backed reference path
//! (`SimConfig::reference_state`) and the dense slot-indexed tables — so
//! the macro win of the slot arena is measured on unchanged workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use refdist_cluster::{ClusterConfig, SimConfig, Simulation};
use refdist_core::{MrdPolicy, ProfileMode};
use refdist_dag::AppPlan;
use refdist_policies::PolicyKind;
use refdist_workloads::{Workload, WorkloadParams};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    let params = WorkloadParams {
        partitions: 16,
        scale: 0.05,
        iterations: None,
    };
    for w in [Workload::ConnectedComponents, Workload::KMeans] {
        let spec = w.build(&params);
        let plan = AppPlan::build(&spec);
        let tasks: u64 = plan.stages.iter().map(|s| s.num_tasks as u64).sum();
        let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
        let mut cfg = SimConfig::new(ClusterConfig::tiny(4, footprint / 10));
        cfg.compute_jitter = 0.0;
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);

        group.throughput(Throughput::Elements(tasks));
        group.bench_with_input(BenchmarkId::new("lru", w.short_name()), &sim, |b, sim| {
            b.iter(|| {
                let mut p = PolicyKind::Lru.build();
                black_box(sim.run(&mut *p))
            });
        });
        group.bench_with_input(BenchmarkId::new("mrd", w.short_name()), &sim, |b, sim| {
            b.iter(|| {
                let mut p = MrdPolicy::full();
                black_box(sim.run(&mut p))
            });
        });
    }
    group.finish();
}

fn bench_state_repr(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_repr");
    let params = WorkloadParams {
        partitions: 16,
        scale: 0.05,
        iterations: None,
    };
    // Eviction-heavy setup: the cache holds a tenth of the cached footprint,
    // so per-block state transitions dominate.
    let w = Workload::ConnectedComponents;
    let spec = w.build(&params);
    let plan = AppPlan::build(&spec);
    let tasks: u64 = plan.stages.iter().map(|s| s.num_tasks as u64).sum();
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    for (repr, reference) in [("hash", true), ("dense", false)] {
        let mut cfg = SimConfig::new(ClusterConfig::tiny(4, footprint / 10));
        cfg.compute_jitter = 0.0;
        cfg.reference_state = reference;
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);
        group.throughput(Throughput::Elements(tasks));
        for policy in ["lru", "mrd"] {
            group.bench_with_input(
                BenchmarkId::new(policy, repr),
                &sim,
                |b, sim| {
                    b.iter(|| {
                        if policy == "lru" {
                            let mut p = PolicyKind::Lru.build();
                            black_box(sim.run(&mut *p))
                        } else {
                            let mut p = MrdPolicy::full();
                            black_box(sim.run(&mut p))
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_state_repr);
criterion_main!(benches);
