//! Event-queue micro-benchmarks: the binary-heap reference backend against
//! the calendar queue, on the schedule shapes the simulator actually
//! produces. `fill_drain` is the speculation pattern (schedule a whole
//! stage's completions, then pop them all), `interleaved` is the steady
//! hold-one-schedule-one regime of a long event loop, and the schedules
//! cover uniform offsets, bursty same-instant floods, and serve-style
//! arrival gaps with far-future outliers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use refdist_simcore::{EventQueue, SimTime};
use std::hint::black_box;

/// SplitMix64 — deterministic schedules without pulling a rand dependency
/// into the bench crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-event scheduling offsets (added to the queue's virtual `now`).
fn schedule(shape: &str, n: usize) -> Vec<u64> {
    let mut s = 0x5eed_0000 + n as u64;
    (0..n)
        .map(|i| match shape {
            // Uniformly random short offsets: dense days.
            "uniform" => splitmix(&mut s) % 10_000,
            // Floods of same-instant events with occasional jumps: the
            // FIFO-tie-break stress case.
            "bursty" => {
                if i.is_multiple_of(64) {
                    splitmix(&mut s) % 100_000
                } else {
                    0
                }
            }
            // Serve-style arrivals: geometric-ish gaps plus rare far-future
            // outliers that force the calendar's sparse-lap jump.
            "arrivals" => {
                let r = splitmix(&mut s);
                if r.is_multiple_of(257) {
                    1 << 28
                } else {
                    r % 200_000
                }
            }
            _ => unreachable!("unknown schedule shape"),
        })
        .collect()
}

fn make_queue(backend: &str) -> EventQueue<u32> {
    match backend {
        "heap" => EventQueue::heap(),
        "calendar" => EventQueue::new(),
        _ => unreachable!("unknown backend"),
    }
}

/// Schedule `n` events, then drain the queue dry (the speculation pattern).
/// Two sizes: at 10k the heap's log factor is still mild and the calendar
/// mostly pays its constant overhead; at 250k the calendar's O(1) per op
/// pulls ahead (and keeps growing — at 1M it is 3-5x on spread schedules).
fn bench_fill_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue/fill_drain");
    for n in [10_000usize, 250_000] {
    for shape in ["uniform", "bursty", "arrivals"] {
        let offsets = schedule(shape, n);
        for backend in ["heap", "calendar"] {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(backend, format!("{shape}/{n}")),
                &offsets,
                |b, offsets| {
                    let mut q = make_queue(backend);
                    b.iter(|| {
                        q.clear();
                        for (i, &dt) in offsets.iter().enumerate() {
                            q.schedule(SimTime(q.now().0 + dt), i as u32);
                        }
                        let mut last = 0u64;
                        while let Some((t, p)) = q.pop() {
                            last = t.0 ^ p as u64;
                        }
                        black_box(last)
                    });
                },
            );
        }
    }
    }
    group.finish();
}

/// Keep ~256 events in flight, scheduling one for each pop (the event-loop
/// steady state).
fn bench_interleaved(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue/interleaved");
    let n = 10_000usize;
    let live = 256usize;
    for shape in ["uniform", "arrivals"] {
        let offsets = schedule(shape, n);
        for backend in ["heap", "calendar"] {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(backend, shape),
                &offsets,
                |b, offsets| {
                    let mut q = make_queue(backend);
                    b.iter(|| {
                        q.clear();
                        q.reserve(live);
                        let mut acc = 0u64;
                        for (i, &dt) in offsets.iter().enumerate() {
                            q.schedule(SimTime(q.now().0 + dt), i as u32);
                            if q.len() > live {
                                let (t, p) = q.pop().unwrap();
                                acc ^= t.0 ^ p as u64;
                            }
                        }
                        while let Some((t, p)) = q.pop() {
                            acc ^= t.0 ^ p as u64;
                        }
                        black_box(acc)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fill_drain, bench_interleaved);
criterion_main!(benches);
