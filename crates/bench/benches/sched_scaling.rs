//! Scheduler scaling: the same whole simulations under the linear reference
//! scheduler (`SimConfig::linear_sched` — per-task scans over cores, plus
//! the full nodes×cores scan under delay scheduling) and the incrementally
//! maintained slot index, at growing cluster sizes. Complements the
//! `bench_sched` protocol binary (which records the cross-PR JSON files);
//! this suite is the statistically sampled criterion view, and its `--test`
//! mode is part of the CI smoke run.
//!
//! The `artifact_sharing` group measures what cross-cell artifact sharing
//! saves a sweep: per-cell `Simulation::new` + `run` (profiler and arena
//! rebuilt every run) against a shared-artifact `run_with_scratch` loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use refdist_cluster::{ClusterConfig, EngineScratch, SimConfig, Simulation};
use refdist_core::ProfileMode;
use refdist_dag::{AppBuilder, AppPlan, AppSpec, StorageLevel};
use refdist_policies::PolicyKind;
use std::hint::black_box;

/// Wide iterative app: 8 partitions per node (multiple task waves per node
/// per stage), one cached dataset reused by 4 jobs.
fn sched_app(nodes: u32) -> AppSpec {
    let parts = nodes * 8;
    let block = 256 * 1024;
    let mut b = AppBuilder::new("sched-scaling");
    let input = b.input("in", parts, block, 2_000);
    let data = b.narrow("data", input, block, 5_000);
    b.persist(data, StorageLevel::MemoryAndDisk);
    for i in 0..4 {
        let s = b.shuffle(format!("agg{i}"), &[data], parts, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

fn bench_sched_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_scaling");
    for nodes in [8u32, 64] {
        let spec = sched_app(nodes);
        let plan = AppPlan::build(&spec);
        let tasks: u64 = plan.stages.iter().map(|s| s.num_tasks as u64).sum();
        for (name, linear) in [("linear", true), ("indexed", false)] {
            let mut cfg = SimConfig::new(ClusterConfig::tiny(nodes, 1 << 40));
            cfg.cluster.cores_per_node = 4;
            cfg.delay_scheduling_us = Some(5_000);
            cfg.faults.slow_node(0, 4.0);
            cfg.linear_sched = linear;
            let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);
            group.throughput(Throughput::Elements(tasks));
            group.bench_with_input(
                BenchmarkId::new(name, format!("{nodes}n")),
                &sim,
                |b, sim| {
                    b.iter(|| {
                        let mut p = PolicyKind::Lru.build();
                        black_box(sim.run(&mut *p))
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_artifact_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact_sharing");
    let nodes = 8u32;
    let spec = sched_app(nodes);
    let plan = AppPlan::build(&spec);
    let cfg = SimConfig::new(ClusterConfig::tiny(nodes, 1 << 40));

    // Per-cell rebuild: what every sweep cell paid before sharing.
    group.bench_function("rebuild_per_run", |b| {
        b.iter(|| {
            let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone());
            let mut p = PolicyKind::Lru.build();
            black_box(sim.run(&mut *p))
        });
    });

    // Shared profiler/arena + recycled engine buffers.
    let base = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone());
    group.bench_function("shared_artifacts", |b| {
        let mut scratch = EngineScratch::default();
        b.iter(|| {
            let (profiler, arena) = base.artifacts();
            let sim = Simulation::with_artifacts(&spec, &plan, profiler, arena, cfg.clone());
            let mut p = PolicyKind::Lru.build();
            black_box(sim.run_with_scratch(&mut *p, &mut scratch))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sched_scaling, bench_artifact_sharing);
criterion_main!(benches);
