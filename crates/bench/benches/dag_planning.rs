//! Planning-layer benches: DAGScheduler stage construction and reference
//! analysis (`parseDAG`) over the largest workload DAGs in the suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refdist_dag::{AppPlan, RefAnalyzer};
use refdist_workloads::{Workload, WorkloadParams};
use std::hint::black_box;

fn bench_stage_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_build");
    let params = WorkloadParams::small();
    for w in [
        Workload::ShortestPaths,               // 7 stages
        Workload::PageRank,                    // ~20 stages
        Workload::StronglyConnectedComponents, // ~100 stages, 1000+ appearances
    ] {
        let spec = w.build(&params);
        group.bench_with_input(
            BenchmarkId::from_parameter(w.short_name()),
            &spec,
            |b, spec| {
                b.iter(|| black_box(AppPlan::build(black_box(spec))));
            },
        );
    }
    group.finish();
}

fn bench_reference_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("ref_analysis");
    let params = WorkloadParams::small();
    for w in [Workload::PageRank, Workload::StronglyConnectedComponents] {
        let spec = w.build(&params);
        let plan = AppPlan::build(&spec);
        group.bench_with_input(
            BenchmarkId::from_parameter(w.short_name()),
            &(&spec, &plan),
            |b, (spec, plan)| {
                b.iter(|| black_box(RefAnalyzer::new(spec, plan).profile()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stage_construction, bench_reference_analysis);
criterion_main!(benches);
