//! Experiment harness for the MRD paper reproduction.
//!
//! Each table and figure in the paper's evaluation has a binary under
//! `src/bin/` (`exp_table1`, `exp_fig4`, ...) built on the shared harness in
//! this library: policy construction, cache-size sweeps sized against a
//! workload's cached footprint, and parallel execution of independent
//! simulations on the bounded worker pool of the [`sweep`] engine.

pub mod cachebench;
pub mod experiments;
pub mod sweep;

pub use cachebench::{bench_policies, Churn, NaiveScan};
pub use refdist_cluster::EngineScratch;
pub use sweep::{
    default_threads, pool_map, run_sweep, CellResult, ServeAxis, ServePeaks, SweepCell,
    SweepGrid, SweepOptions, SweepResults,
};

use refdist_cluster::{ClusterConfig, FaultPlan, RunReport, SimConfig, Simulation};
use refdist_core::{AppProfiler, DistanceMetric, MrdConfig, MrdMode, MrdPolicy, ProfileMode};
use refdist_dag::{AppPlan, AppSpec, BlockSlots};
use refdist_policies::{BeladyMinPolicy, CachePolicy, PolicyKind};
use refdist_workloads::{Workload, WorkloadParams};
use std::sync::Arc;

/// Every policy configuration the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Spark's default LRU (the baseline all figures normalize against).
    Lru,
    /// FIFO ablation baseline.
    Fifo,
    /// Random ablation baseline.
    Random,
    /// Least Reference Count (Fig. 5 comparator).
    Lrc,
    /// MemTune (Fig. 6 comparator).
    MemTune,
    /// MRD eviction only (Fig. 4 ablation).
    MrdEvict,
    /// MRD prefetch only over LRU eviction (Fig. 4 ablation).
    MrdPrefetch,
    /// Full MRD with stage distances (the headline policy).
    MrdFull,
    /// Full MRD with *job* distances (Fig. 8 ablation).
    MrdJobMetric,
    /// Belady's MIN oracle (extension; needs a recorded trace).
    Belady,
}

impl PolicySpec {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            PolicySpec::Lru => "LRU",
            PolicySpec::Fifo => "FIFO",
            PolicySpec::Random => "Random",
            PolicySpec::Lrc => "LRC",
            PolicySpec::MemTune => "MemTune",
            PolicySpec::MrdEvict => "MRD-evict",
            PolicySpec::MrdPrefetch => "MRD-prefetch",
            PolicySpec::MrdFull => "MRD",
            PolicySpec::MrdJobMetric => "MRD-jobdist",
            PolicySpec::Belady => "Belady-MIN",
        }
    }

    /// Parse a CLI policy name (`lru`, `mrd`, `mrd-evict`, ...). Returns
    /// `None` for unknown names.
    pub fn from_cli_name(name: &str) -> Option<PolicySpec> {
        Some(match name.to_ascii_lowercase().as_str() {
            "lru" => PolicySpec::Lru,
            "fifo" => PolicySpec::Fifo,
            "random" => PolicySpec::Random,
            "lrc" => PolicySpec::Lrc,
            "memtune" => PolicySpec::MemTune,
            "mrd" => PolicySpec::MrdFull,
            "mrd-evict" => PolicySpec::MrdEvict,
            "mrd-prefetch" => PolicySpec::MrdPrefetch,
            "mrd-job" => PolicySpec::MrdJobMetric,
            "belady" => PolicySpec::Belady,
            _ => return None,
        })
    }

    /// Instantiate the policy. `trace` is required for [`PolicySpec::Belady`].
    pub fn build(self, trace: Option<&[refdist_dag::BlockId]>) -> Box<dyn CachePolicy> {
        match self {
            PolicySpec::Lru => PolicyKind::Lru.build(),
            PolicySpec::Fifo => PolicyKind::Fifo.build(),
            PolicySpec::Random => PolicyKind::Random.build(),
            PolicySpec::Lrc => PolicyKind::Lrc.build(),
            PolicySpec::MemTune => PolicyKind::MemTune.build(),
            PolicySpec::MrdEvict => Box::new(MrdPolicy::new(MrdConfig {
                mode: MrdMode::EvictOnly,
                metric: DistanceMetric::Stage,
                ..Default::default()
            })),
            PolicySpec::MrdPrefetch => Box::new(MrdPolicy::new(MrdConfig {
                mode: MrdMode::PrefetchOnly,
                metric: DistanceMetric::Stage,
                ..Default::default()
            })),
            PolicySpec::MrdFull => Box::new(MrdPolicy::new(MrdConfig {
                mode: MrdMode::Full,
                metric: DistanceMetric::Stage,
                ..Default::default()
            })),
            PolicySpec::MrdJobMetric => Box::new(MrdPolicy::new(MrdConfig {
                mode: MrdMode::Full,
                metric: DistanceMetric::Job,
                ..Default::default()
            })),
            PolicySpec::Belady => Box::new(BeladyMinPolicy::from_trace(
                trace.expect("Belady needs a recorded trace"),
            )),
        }
    }
}

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// The simulated cluster (one of the Table 4 presets).
    pub cluster: ClusterConfig,
    /// Workload generation knobs.
    pub params: WorkloadParams,
    /// Master seed.
    pub seed: u64,
    /// Fault-injection plan applied to every run. The default (empty) plan
    /// is byte-invisible: runs are identical to a context without it.
    pub faults: FaultPlan,
}

impl ExpContext {
    /// Default context: the paper's Main cluster, paper-scale workloads.
    pub fn main() -> Self {
        ExpContext {
            cluster: ClusterConfig::main_cluster(),
            params: WorkloadParams::default(),
            seed: 42,
            faults: FaultPlan::default(),
        }
    }

    /// Context on the LRC-comparison cluster.
    pub fn lrc() -> Self {
        ExpContext {
            cluster: ClusterConfig::lrc_cluster(),
            ..Self::main()
        }
    }

    /// Context on the MemTune-comparison cluster.
    pub fn memtune() -> Self {
        ExpContext {
            cluster: ClusterConfig::memtune_cluster(),
            ..Self::main()
        }
    }

    /// Fast, reduced-scale context (used by CI and the integration tests).
    pub fn quick(mut self) -> Self {
        self.params.partitions = 64;
        self.params.scale = 0.25;
        self.cluster.nodes = 8;
        self
    }

    /// Apply `REFDIST_QUICK=1` from the environment.
    pub fn from_env(self) -> Self {
        if std::env::var("REFDIST_QUICK").is_ok_and(|v| v != "0") {
            self.quick()
        } else {
            self
        }
    }
}

/// Total bytes of all cached RDDs in an application (every generation).
pub fn cached_footprint(spec: &AppSpec) -> u64 {
    spec.cached_rdds().map(|r| r.total_size()).sum()
}

/// Per-node cache capacity equal to `fraction` of the workload's cached
/// footprint divided across the cluster.
pub fn cache_for_fraction(spec: &AppSpec, cluster: &ClusterConfig, fraction: f64) -> u64 {
    ((cached_footprint(spec) as f64 * fraction) / cluster.nodes as f64) as u64
}

/// One simulated run. The simulation seed is taken from `ctx.seed`; the
/// sweep engine derives that per cell (see [`sweep::SweepCell::sim_seed`]).
pub fn run_one(
    spec: &AppSpec,
    plan: &AppPlan,
    ctx: &ExpContext,
    cache_bytes: u64,
    policy: PolicySpec,
    mode: ProfileMode,
) -> RunReport {
    let mut cfg = SimConfig::new(ctx.cluster.with_cache(cache_bytes)).with_seed(ctx.seed);
    cfg.faults = ctx.faults.clone();
    let trace = if policy == PolicySpec::Belady {
        Some(refdist_cluster::collect_trace(spec, plan, &cfg))
    } else {
        None
    };
    let mut p = policy.build(trace.as_deref());
    Simulation::new(spec, plan, mode, cfg).run(&mut *p)
}

/// A workload's run-independent artifacts, built once per sweep and shared
/// read-only by every cell of that workload: the generated spec and plan,
/// the [`AppProfiler`] (a function of `(spec, plan, mode)`), and the dense
/// [`BlockSlots`] arena (a function of `spec`). A W×P×F×S grid previously
/// re-profiled the DAG and rebuilt the arena in every one of its
/// P×F×S cells per workload; sharing builds each exactly once.
#[derive(Debug)]
pub struct PreparedWorkload {
    /// The workload these artifacts were generated from.
    pub workload: Workload,
    /// The generated application.
    pub spec: AppSpec,
    /// Its execution plan.
    pub plan: AppPlan,
    /// Profile-visibility mode the profiler was built with.
    pub mode: ProfileMode,
    profiler: Arc<AppProfiler>,
    arena: Arc<BlockSlots>,
}

impl PreparedWorkload {
    /// Generate `workload` and build its shared artifacts.
    pub fn new(workload: Workload, params: &WorkloadParams, mode: ProfileMode) -> Self {
        let spec = workload.build(params);
        let plan = AppPlan::build(&spec);
        let profiler = Arc::new(AppProfiler::new(&spec, &plan, mode));
        let arena = Arc::new(BlockSlots::new(&spec));
        PreparedWorkload {
            workload,
            spec,
            plan,
            mode,
            profiler,
            arena,
        }
    }

    /// A simulation of this workload under `cfg`, sharing the prepared
    /// artifacts instead of rebuilding them.
    pub fn simulation(&self, cfg: SimConfig) -> Simulation<'_> {
        Simulation::with_artifacts(
            &self.spec,
            &self.plan,
            Arc::clone(&self.profiler),
            Arc::clone(&self.arena),
            cfg,
        )
    }
}

/// [`run_one`] over a [`PreparedWorkload`]: shares the prepared artifacts
/// and recycles `scratch`'s engine buffers across calls. Produces reports
/// identical to `run_one` with the prepared mode.
pub fn run_one_prepared(
    prep: &PreparedWorkload,
    ctx: &ExpContext,
    cache_bytes: u64,
    policy: PolicySpec,
    scratch: &mut EngineScratch,
) -> RunReport {
    let mut cfg = SimConfig::new(ctx.cluster.with_cache(cache_bytes)).with_seed(ctx.seed);
    cfg.faults = ctx.faults.clone();
    let trace = if policy == PolicySpec::Belady {
        Some(refdist_cluster::collect_trace(&prep.spec, &prep.plan, &cfg))
    } else {
        None
    };
    let mut p = policy.build(trace.as_deref());
    prep.simulation(cfg).run_with_scratch(&mut *p, scratch)
}

/// Result of one (workload, cache-size) sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Fraction of the cached footprint the cluster cache covers.
    pub fraction: f64,
    /// Per-node cache bytes.
    pub cache_bytes: u64,
    /// Reports, parallel to the policies passed to [`sweep`].
    pub reports: Vec<RunReport>,
}

/// Standard cache fractions used by the sweeps (chosen so the smallest
/// point forces heavy eviction and the largest nearly fits everything).
pub const SWEEP_FRACTIONS: &[f64] = &[0.15, 0.25, 0.4, 0.6, 0.8, 1.1, 1.4];

/// Sweep cache sizes for one workload, running every policy at every point.
/// Cells run on the [`sweep`] engine's bounded worker pool (each simulation
/// is single-threaded and independent); results come back grouped per
/// fraction, reports parallel to `policies`.
pub fn sweep(
    w: Workload,
    ctx: &ExpContext,
    fractions: &[f64],
    policies: &[PolicySpec],
    mode: ProfileMode,
) -> Vec<SweepPoint> {
    let grid = SweepGrid::new(vec![w], policies.to_vec())
        .fractions(fractions)
        .seeds(&[ctx.seed]);
    let res = run_sweep(&grid, ctx, &SweepOptions::default().mode(mode));
    // Canonical cell order is fraction-major with policies adjacent, so the
    // results chunk exactly into one SweepPoint per fraction.
    res.cells
        .chunks(policies.len().max(1))
        .map(|chunk| SweepPoint {
            fraction: chunk[0].cell.capacity_frac,
            cache_bytes: chunk[0].cache_bytes,
            reports: chunk.iter().map(|c| c.report.clone()).collect(),
        })
        .collect()
}

/// The paper's Figure 4 methodology: best (lowest) JCT of `policy`
/// normalized against LRU *at the same cache size*, over the sweep.
/// Returns `(best normalized JCT, lru hit ratio, policy hit ratio)` at the
/// best point.
pub fn best_normalized(
    w: Workload,
    ctx: &ExpContext,
    fractions: &[f64],
    policy: PolicySpec,
    mode: ProfileMode,
) -> (f64, f64, f64) {
    let pts = sweep(w, ctx, fractions, &[PolicySpec::Lru, policy], mode);
    let mut best = (f64::INFINITY, 1.0, 1.0);
    for p in &pts {
        let norm = p.reports[1].normalized_jct(&p.reports[0]);
        if norm < best.0 {
            best = (norm, p.reports[0].hit_ratio(), p.reports[1].hit_ratio());
        }
    }
    best
}

/// Run a closure per workload on the bounded worker pool, collecting
/// results in input order.
pub fn par_map<T: Send>(workloads: &[Workload], f: impl Fn(Workload) -> T + Sync) -> Vec<T> {
    pool_map(workloads, 0, |_, &w| f(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExpContext {
        let mut ctx = ExpContext::main().quick();
        ctx.params.partitions = 8;
        ctx.params.scale = 0.02;
        ctx.cluster.nodes = 4;
        ctx
    }

    #[test]
    fn policy_specs_build() {
        for p in [
            PolicySpec::Lru,
            PolicySpec::Fifo,
            PolicySpec::Random,
            PolicySpec::Lrc,
            PolicySpec::MemTune,
            PolicySpec::MrdEvict,
            PolicySpec::MrdPrefetch,
            PolicySpec::MrdFull,
            PolicySpec::MrdJobMetric,
        ] {
            assert!(!p.build(None).name().is_empty());
        }
    }

    #[test]
    fn footprint_positive_for_cached_workloads() {
        let ctx = tiny_ctx();
        let spec = Workload::KMeans.build(&ctx.params);
        assert!(cached_footprint(&spec) > 0);
        let c = cache_for_fraction(&spec, &ctx.cluster, 0.5);
        assert!(c > 0);
    }

    #[test]
    fn sweep_runs_all_points_and_policies() {
        let ctx = tiny_ctx();
        let pts = sweep(
            Workload::ShortestPaths,
            &ctx,
            &[0.3, 0.9],
            &[PolicySpec::Lru, PolicySpec::MrdFull],
            ProfileMode::Recurring,
        );
        assert_eq!(pts.len(), 2);
        assert!(pts[0].fraction < pts[1].fraction);
        for p in &pts {
            assert_eq!(p.reports.len(), 2);
            assert!(p.reports.iter().all(|r| r.jct.micros() > 0));
        }
    }

    #[test]
    fn best_normalized_not_worse_than_one_for_mrd() {
        let ctx = tiny_ctx();
        let (norm, _, _) = best_normalized(
            Workload::ConnectedComponents,
            &ctx,
            &[0.3, 0.6],
            PolicySpec::MrdFull,
            ProfileMode::Recurring,
        );
        assert!(norm <= 1.05, "MRD should not lose badly to LRU: {norm}");
    }

    #[test]
    fn par_map_preserves_order() {
        let ws = [
            Workload::HiSort,
            Workload::HiWordCount,
            Workload::HiTeraSort,
        ];
        let names = par_map(&ws, |w| w.short_name().to_string());
        assert_eq!(names, vec!["Sort", "WordCount", "TeraSort"]);
    }

    #[test]
    fn prepared_runs_match_run_one() {
        // Shared artifacts + recycled scratch must be invisible in results,
        // including for Belady (trace collection) across repeated cells.
        let ctx = tiny_ctx();
        let prep =
            PreparedWorkload::new(Workload::ShortestPaths, &ctx.params, ProfileMode::Recurring);
        let mut scratch = EngineScratch::default();
        for frac in [0.3, 0.9] {
            let cache = cache_for_fraction(&prep.spec, &ctx.cluster, frac).max(1);
            for policy in [PolicySpec::Lru, PolicySpec::MrdFull, PolicySpec::Belady] {
                let plain = run_one(
                    &prep.spec,
                    &prep.plan,
                    &ctx,
                    cache,
                    policy,
                    ProfileMode::Recurring,
                );
                let prepared = run_one_prepared(&prep, &ctx, cache, policy, &mut scratch);
                assert_eq!(
                    format!("{plain:?}"),
                    format!("{prepared:?}"),
                    "{policy:?} at f{frac}"
                );
            }
        }
    }

    #[test]
    fn belady_runs_via_trace() {
        let ctx = tiny_ctx();
        let spec = Workload::ShortestPaths.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let cache = cache_for_fraction(&spec, &ctx.cluster, 0.3).max(1);
        let r = run_one(
            &spec,
            &plan,
            &ctx,
            cache,
            PolicySpec::Belady,
            ProfileMode::Recurring,
        );
        assert!(r.jct.micros() > 0);
        assert_eq!(r.policy, "Belady-MIN");
    }
}
