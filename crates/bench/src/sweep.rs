//! Parallel experiment sweep engine.
//!
//! The paper's evaluation is a grid of (workload × policy × cache capacity ×
//! seed) simulations. This module expands such a grid declaratively
//! ([`SweepGrid`] → [`SweepCell`]s), runs the cells across a fixed-size
//! crossbeam worker pool, and aggregates the resulting [`RunReport`]s in
//! canonical cell order regardless of completion order, so the output of a
//! sweep is byte-identical whether it ran on 1 thread or N.
//!
//! Determinism contract (upheld by `tests/determinism.rs`):
//!
//! * every cell's simulation seed is derived from a hash of the cell's
//!   *environment* key (workload, capacity fraction, replicate seed, master
//!   seed) — never from thread identity, scheduling order, or wall clock;
//! * the policy name is deliberately **excluded** from the seed hash, so all
//!   policies at the same grid point share identical simulation randomness —
//!   normalized-JCT comparisons are paired, as in the paper's methodology;
//! * aggregated output ([`SweepResults::csv`], [`SweepResults::table`]) is
//!   ordered by canonical cell index via [`refdist_metrics::OrderedSink`];
//! * progress and ETA lines go to **stderr** only, leaving stdout
//!   deterministic.

use crate::{cache_for_fraction, run_one_prepared, ExpContext, PolicySpec, PreparedWorkload};
use parking_lot::Mutex;
use refdist_cluster::{
    ArrivalProcess, EngineScratch, QuotaKind, ResilienceConfig, RunReport, ServeConfig,
    ServeSched, ServeSim, SimConfig,
};
use refdist_core::ProfileMode;
use refdist_dag::AppSpec;
use refdist_metrics::{CsvWriter, OrderedSink, TextTable};
use refdist_workloads::Workload;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Number of worker threads to use when none is requested explicitly:
/// `REFDIST_THREADS` from the environment if set and positive, otherwise the
/// number of available cores.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("REFDIST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over `items` on a bounded worker pool, returning results in input
/// order no matter which worker finished which item first. `threads == 0`
/// means [`default_threads`].
pub fn pool_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    }
    .min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let sink: Mutex<OrderedSink<usize, R>> =
        Mutex::new(OrderedSink::with_capacity(items.len()));
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let (next, sink, f) = (&next, &sink, &f);
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                sink.lock().push(i, r);
            });
        }
    })
    .expect("sweep worker panicked");
    sink.into_inner().into_ordered()
}

/// Multi-tenant serving parameters for one sweep cell: the cell's workload
/// is submitted once per tenant as a stream of arrivals onto one shared
/// cluster instead of running a single isolated application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeAxis {
    /// Number of tenants; each submits one instance of the cell's workload.
    pub tenants: u32,
    /// Mean inter-arrival gap of the Poisson arrival process, in simulated
    /// microseconds (`0` degenerates to all-at-once arrivals).
    pub mean_gap_us: u64,
    /// Inter-job scheduling discipline for the shared cluster.
    pub sched: ServeSched,
    /// Per-tenant cache quota policy.
    pub quota: QuotaKind,
    /// Serve-mode resilience knobs (app-level retry, admission control,
    /// SLO deadline). The passive default keeps the cell's key and seed in
    /// their pre-resilience shapes, so historical grids stay stable.
    pub resilience: ResilienceConfig,
}

/// One point of a sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// The workload to simulate.
    pub workload: Workload,
    /// The cache policy to drive.
    pub policy: PolicySpec,
    /// Per-cluster cache capacity as a fraction of the workload's cached
    /// footprint.
    pub capacity_frac: f64,
    /// Replicate seed (grid-level; the simulation seed is derived from it).
    pub seed: u64,
    /// Chaos fault rate applied via [`FaultPlan::chaos`]; `0.0` means no
    /// fault injection (the historical cell shape — its key and seed are
    /// unchanged from grids that predate the chaos axis).
    ///
    /// [`FaultPlan::chaos`]: refdist_cluster::FaultPlan::chaos
    pub chaos: f64,
    /// Multi-tenant serving axis; `None` runs the historical single-app
    /// cell (its key and seed are unchanged from grids that predate the
    /// tenancy axis).
    pub serve: Option<ServeAxis>,
}

impl SweepCell {
    /// Canonical key identifying this cell in reports and golden files.
    /// Fault-free cells keep the pre-chaos key shape.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}/f{:.4}/s{}",
            self.workload.short_name(),
            self.policy.name(),
            self.capacity_frac,
            self.seed
        );
        if self.chaos != 0.0 {
            key.push_str(&format!("/c{:.4}", self.chaos));
        }
        if let Some(ax) = &self.serve {
            key.push_str(&format!(
                "/t{}/g{}/{}/q{}",
                ax.tenants, ax.mean_gap_us, ax.sched, ax.quota
            ));
            // Passive resilience keeps the pre-resilience key shape.
            if !ax.resilience.is_passive() {
                let r = &ax.resilience;
                key.push_str(&format!(
                    "/r{}-{}-m{}-c{}-d{}",
                    r.max_app_attempts,
                    r.admission,
                    r.max_active_apps.unwrap_or(0),
                    r.queue_cap.unwrap_or(0),
                    r.deadline_us.unwrap_or(0)
                ));
            }
        }
        key
    }

    /// The simulation seed for this cell: a hash of the cell's environment
    /// key mixed with the context's master seed. The policy is excluded on
    /// purpose — all policies at one grid point see identical simulation
    /// *and fault* randomness, so their JCTs are directly comparable
    /// (paired runs). Fault-free cells hash the pre-chaos key shape, so
    /// their seeds are stable across the axis's introduction.
    pub fn sim_seed(&self, master_seed: u64) -> u64 {
        let mut env_key = format!(
            "{}|f{:.4}|s{}",
            self.workload.short_name(),
            self.capacity_frac,
            self.seed
        );
        if self.chaos != 0.0 {
            env_key.push_str(&format!("|c{:.4}", self.chaos));
        }
        if let Some(ax) = &self.serve {
            env_key.push_str(&format!(
                "|t{}|g{}|{}|q{}",
                ax.tenants, ax.mean_gap_us, ax.sched, ax.quota
            ));
            // Passive resilience keeps the pre-resilience seed shape.
            if !ax.resilience.is_passive() {
                let r = &ax.resilience;
                env_key.push_str(&format!(
                    "|r{}-{}-m{}-c{}-d{}",
                    r.max_app_attempts,
                    r.admission,
                    r.max_active_apps.unwrap_or(0),
                    r.queue_cap.unwrap_or(0),
                    r.deadline_us.unwrap_or(0)
                ));
            }
        }
        // FNV-1a over the key, finalized with a splitmix64 round so nearby
        // keys land far apart in seed space.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master_seed;
        for &b in env_key.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A declarative grid of sweep cells: the cross product of workloads,
/// policies, capacity fractions, and replicate seeds.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Workloads to sweep.
    pub workloads: Vec<Workload>,
    /// Policies to run at every point.
    pub policies: Vec<PolicySpec>,
    /// Capacity fractions (of the cached footprint).
    pub fractions: Vec<f64>,
    /// Replicate seeds.
    pub seeds: Vec<u64>,
    /// Chaos fault rates; the default `[0.0]` runs fault-free.
    pub chaos: Vec<f64>,
    /// Serving axes; the default `[None]` runs single-app cells only.
    pub serve: Vec<Option<ServeAxis>>,
}

impl SweepGrid {
    /// Grid over `workloads` × `policies` with the standard
    /// [`crate::SWEEP_FRACTIONS`] and a single replicate (seed 42).
    pub fn new(
        workloads: impl Into<Vec<Workload>>,
        policies: impl Into<Vec<PolicySpec>>,
    ) -> Self {
        SweepGrid {
            workloads: workloads.into(),
            policies: policies.into(),
            fractions: crate::SWEEP_FRACTIONS.to_vec(),
            seeds: vec![42],
            chaos: vec![0.0],
            serve: vec![None],
        }
    }

    /// Replace the capacity fractions.
    pub fn fractions(mut self, fractions: &[f64]) -> Self {
        self.fractions = fractions.to_vec();
        self
    }

    /// Replace the replicate seeds.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Replace the chaos fault rates (`0.0` = fault-free).
    pub fn chaos(mut self, chaos: &[f64]) -> Self {
        self.chaos = chaos.to_vec();
        self
    }

    /// Replace the serving axes (`None` = single-app cell).
    pub fn serve(mut self, serve: &[Option<ServeAxis>]) -> Self {
        self.serve = serve.to_vec();
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.fractions.len()
            * self.seeds.len()
            * self.chaos.len()
            * self.serve.len()
            * self.policies.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand to cells in canonical order: workload, then fraction, then
    /// seed, then chaos rate, then serving axis, then policy. All reports
    /// are aggregated in this order.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut out = Vec::with_capacity(self.len());
        for &workload in &self.workloads {
            for &capacity_frac in &self.fractions {
                for &seed in &self.seeds {
                    for &chaos in &self.chaos {
                        for &serve in &self.serve {
                            for &policy in &self.policies {
                                out.push(SweepCell {
                                    workload,
                                    policy,
                                    capacity_frac,
                                    seed,
                                    chaos,
                                    serve,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Execution options for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; 0 means [`default_threads`].
    pub threads: usize,
    /// Profile visibility mode for every cell.
    pub mode: ProfileMode,
    /// Emit per-cell progress with elapsed/ETA to stderr.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            mode: ProfileMode::Recurring,
            progress: false,
        }
    }
}

impl SweepOptions {
    /// Set the worker thread count (0 = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the profile mode.
    pub fn mode(mut self, mode: ProfileMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enable or disable progress reporting.
    pub fn progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }
}

/// Streaming-serve high-water marks, carried from the cell's
/// [`refdist_cluster::ServeReport`] into the CSV sink. Only serve cells
/// have them — the aggregate [`RunReport`] folds per-submission stats and
/// would lose the peaks otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServePeaks {
    /// Most submissions simultaneously admitted-but-not-retired.
    pub active_apps: u64,
    /// Slot-arena high-water mark (tracks peak concurrency, not stream
    /// length, under the streaming driver).
    pub arena_slots: u64,
    /// Most blocks memory-resident across the cluster at once.
    pub resident_blocks: u64,
    /// Most bytes memory-resident across the cluster at once.
    pub resident_bytes: u64,
}

/// Stream-level SLO accounting of a resilient serve cell, folded from the
/// per-submission [`refdist_cluster::ResilienceReport`]. Only serve cells
/// with a non-passive [`ResilienceConfig`] have one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSlo {
    /// Total app-level retries across the stream.
    pub retries: u64,
    /// Submissions shed at admission.
    pub shed: u64,
    /// Submissions admitted with caching bypassed.
    pub degraded: u64,
    /// Submissions that missed the configured deadline (shed included);
    /// zero when no deadline was configured.
    pub deadline_misses: u64,
    /// 95th-percentile admission-queue delay, microseconds.
    pub queue_p95_us: u64,
    /// 99th-percentile admission-queue delay, microseconds.
    pub queue_p99_us: u64,
}

/// One completed cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: SweepCell,
    /// Per-node cache bytes the fraction resolved to.
    pub cache_bytes: u64,
    /// The simulation report.
    pub report: RunReport,
    /// High-water marks of the serve stream, for serve cells only.
    pub serve_peaks: Option<ServePeaks>,
    /// SLO accounting, for serve cells with non-passive resilience only.
    pub serve_slo: Option<ServeSlo>,
}

/// All results of a sweep, in canonical cell order.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Completed cells, ordered as [`SweepGrid::cells`] expanded them.
    pub cells: Vec<CellResult>,
    /// Wall-clock time of the whole sweep (excluded from all deterministic
    /// output).
    pub wall: Duration,
}

impl SweepResults {
    /// The result for one exact cell, if it was part of the grid.
    pub fn get(
        &self,
        workload: Workload,
        policy: PolicySpec,
        capacity_frac: f64,
        seed: u64,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.cell.workload == workload
                && c.cell.policy == policy
                && c.cell.capacity_frac == capacity_frac
                && c.cell.seed == seed
        })
    }

    /// Best (lowest) JCT of `policy` normalized against `baseline` at the
    /// same grid point, over all fractions and seeds of `workload`. Returns
    /// `(best normalized JCT, baseline hit ratio, policy hit ratio)` at the
    /// best point — the paper's Figure 4/5 methodology.
    pub fn best_normalized(
        &self,
        workload: Workload,
        baseline: PolicySpec,
        policy: PolicySpec,
    ) -> Option<(f64, f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None;
        for c in self.cells.iter().filter(|c| {
            c.cell.workload == workload && c.cell.policy == policy
        }) {
            let base = self.get(workload, baseline, c.cell.capacity_frac, c.cell.seed)?;
            let norm = c.report.normalized_jct(&base.report);
            if best.is_none_or(|(b, _, _)| norm < b) {
                best = Some((norm, base.report.hit_ratio(), c.report.hit_ratio()));
            }
        }
        best
    }

    /// Human-readable table of every cell, in canonical order.
    pub fn table(&self) -> String {
        let mut t = TextTable::new([
            "Workload",
            "Policy",
            "Frac",
            "Seed",
            "Cache/node",
            "JCT (s)",
            "Hit %",
            "Evictions",
            "Prefetches",
        ]);
        for c in &self.cells {
            t.row([
                c.cell.workload.short_name().to_string(),
                c.cell.policy.name().to_string(),
                format!("{:.2}", c.cell.capacity_frac),
                c.cell.seed.to_string(),
                refdist_metrics::human_bytes(c.cache_bytes),
                format!("{:.2}", c.report.jct_secs()),
                format!("{:.1}", c.report.hit_ratio() * 100.0),
                (c.report.stats.evictions + c.report.stats.purges).to_string(),
                c.report.stats.prefetches.to_string(),
            ]);
        }
        t.render()
    }

    /// Machine-readable CSV of every cell, in canonical order. All values
    /// are exact integers or fixed-precision decimals, so equal sweeps
    /// produce byte-identical CSV.
    pub fn csv(&self) -> String {
        let mut w = CsvWriter::new([
            "workload",
            "policy",
            "fraction",
            "seed",
            "cache_bytes",
            "jct_us",
            "hits",
            "misses",
            "hit_ratio",
            "evictions",
            "purges",
            "prefetches",
            "prefetch_hits",
            "wasted_prefetches",
            "disk_hits",
            "recomputes",
            "tasks",
            "peak_active_apps",
            "peak_arena_slots",
            "peak_resident_blocks",
            "peak_resident_bytes",
            "app_retries",
            "shed",
            "degraded",
            "deadline_misses",
            "queue_p95_us",
            "queue_p99_us",
        ]);
        for c in &self.cells {
            let s = &c.report.stats;
            // Serve-stream high-water marks; empty cells for solo runs,
            // which have no stream to peak over.
            let peaks = |f: fn(&ServePeaks) -> u64| {
                c.serve_peaks.map_or(String::new(), |p| f(&p).to_string())
            };
            // SLO accounting; empty cells whenever resilience was passive.
            let slo = |f: fn(&ServeSlo) -> u64| {
                c.serve_slo.map_or(String::new(), |s| f(&s).to_string())
            };
            w.row([
                c.cell.workload.short_name().to_string(),
                c.cell.policy.name().to_string(),
                format!("{:.4}", c.cell.capacity_frac),
                c.cell.seed.to_string(),
                c.cache_bytes.to_string(),
                c.report.jct.micros().to_string(),
                s.hits.to_string(),
                s.misses.to_string(),
                format!("{:.4}", c.report.hit_ratio()),
                s.evictions.to_string(),
                s.purges.to_string(),
                s.prefetches.to_string(),
                s.prefetch_hits.to_string(),
                s.wasted_prefetches.to_string(),
                s.disk_hits.to_string(),
                s.recomputes.to_string(),
                c.report.tasks.to_string(),
                peaks(|p| p.active_apps),
                peaks(|p| p.arena_slots),
                peaks(|p| p.resident_blocks),
                peaks(|p| p.resident_bytes),
                slo(|s| s.retries),
                slo(|s| s.shed),
                slo(|s| s.degraded),
                slo(|s| s.deadline_misses),
                slo(|s| s.queue_p95_us),
                slo(|s| s.queue_p99_us),
            ]);
        }
        w.finish().to_string()
    }
}

/// Per-cell progress reporting with elapsed/ETA, stderr only.
struct Progress {
    total: usize,
    done: AtomicUsize,
    start: Instant,
    enabled: bool,
}

impl Progress {
    fn new(total: usize, enabled: bool) -> Self {
        Progress {
            total,
            done: AtomicUsize::new(0),
            start: Instant::now(),
            enabled,
        }
    }

    fn cell_done(&self, key: &str, cell_wall: Duration) {
        if !self.enabled {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = elapsed / done as f64 * (self.total.saturating_sub(done)) as f64;
        eprintln!(
            "[{done}/{}] {key} in {:.1}s (elapsed {:.0}s, eta {:.0}s)",
            self.total,
            cell_wall.as_secs_f64(),
            elapsed,
            eta
        );
    }
}

/// Run one multi-tenant serve cell: `ax.tenants` copies of the prepared
/// workload arrive as a Poisson stream on a shared cluster, and the
/// per-submission reports are folded into one aggregate [`RunReport`] via
/// [`refdist_cluster::ServeReport::merged_report`]. Serve mode always uses
/// recurring profiles (each submission is a known, previously-seen app), and
/// Belady is excluded — a whole-run trace is meaningless under interleaving.
fn run_serve_cell(
    prep: &PreparedWorkload,
    ctx: &ExpContext,
    cache_bytes: u64,
    policy: PolicySpec,
    ax: ServeAxis,
) -> (RunReport, ServePeaks, Option<ServeSlo>) {
    assert!(
        policy != PolicySpec::Belady,
        "Belady-MIN is excluded from serve cells (no whole-run trace under interleaving)"
    );
    let mut sim = SimConfig::new(ctx.cluster.with_cache(cache_bytes)).with_seed(ctx.seed);
    sim.faults = ctx.faults.clone();
    let subs: Vec<(&AppSpec, u32)> = (0..ax.tenants).map(|t| (&prep.spec, t)).collect();
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim,
            arrivals: ArrivalProcess::Poisson {
                mean_gap_us: ax.mean_gap_us,
            },
            sched: ax.sched,
            quota: ax.quota,
            upfront: false,
            intern: true,
            resilience: ax.resilience,
        },
    );
    // App-level retry needs a fresh policy instance per admission, so serve
    // cells always go through the factory path.
    let report = serve.run_with(|_| policy.build(None));
    let peaks = ServePeaks {
        active_apps: report.peak_active_apps,
        arena_slots: report.peak_arena_slots,
        resident_blocks: report.peak_resident_blocks,
        resident_bytes: report.peak_resident_bytes,
    };
    let slo = report.resilience.as_ref().map(|res| {
        let mut delays: Vec<u64> = res.queue_delay_us.clone();
        delays.sort_unstable();
        let pct = |q: f64| -> u64 {
            if delays.is_empty() {
                return 0;
            }
            let rank = ((delays.len() as f64) * q).ceil() as usize;
            delays[rank.clamp(1, delays.len()) - 1]
        };
        let deadline_misses = (0..report.reports.len())
            .filter(|&i| {
                res.met_deadline(i, report.arrivals[i], report.completions[i]) == Some(false)
            })
            .count() as u64;
        ServeSlo {
            retries: res.total_retries(),
            shed: res.shed_count(),
            degraded: res.degraded_count(),
            deadline_misses,
            queue_p95_us: pct(0.95),
            queue_p99_us: pct(0.99),
        }
    });
    (report.merged_report(), peaks, slo)
}

/// Run every cell of `grid` on a worker pool and aggregate the reports in
/// canonical cell order. See the module docs for the determinism contract.
pub fn run_sweep(grid: &SweepGrid, ctx: &ExpContext, opts: &SweepOptions) -> SweepResults {
    let started = Instant::now();

    // Build each workload's run-independent artifacts — spec, plan, profiler
    // and block-slot arena — exactly once, shared read-only by every cell of
    // that workload (cross-cell artifact sharing).
    let prepared: Vec<PreparedWorkload> = pool_map(&grid.workloads, opts.threads, |_, &w| {
        PreparedWorkload::new(w, &ctx.params, opts.mode)
    });

    // Per worker thread: engine buffers recycled across that worker's cells.
    thread_local! {
        static SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::default());
    }

    let cells = grid.cells();
    let progress = Progress::new(cells.len(), opts.progress);
    let cells = pool_map(&cells, opts.threads, |_, cell| {
        let prep = prepared
            .iter()
            .find(|p| p.workload == cell.workload)
            .expect("workload prepared");
        let cache_bytes =
            cache_for_fraction(&prep.spec, &ctx.cluster, cell.capacity_frac).max(1);
        let mut cell_ctx = ctx.clone();
        cell_ctx.seed = cell.sim_seed(ctx.seed);
        if cell.chaos > 0.0 {
            cell_ctx.faults = refdist_cluster::FaultPlan::chaos(cell.chaos);
        }
        let cell_started = Instant::now();
        let (report, serve_peaks, serve_slo) = if let Some(ax) = cell.serve {
            let (report, peaks, slo) =
                run_serve_cell(prep, &cell_ctx, cache_bytes, cell.policy, ax);
            (report, Some(peaks), slo)
        } else {
            let report = SCRATCH.with(|s| {
                run_one_prepared(prep, &cell_ctx, cache_bytes, cell.policy, &mut s.borrow_mut())
            });
            (report, None, None)
        };
        progress.cell_done(&cell.key(), cell_started.elapsed());
        CellResult {
            cell: *cell,
            cache_bytes,
            report,
            serve_peaks,
            serve_slo,
        }
    });

    SweepResults {
        cells,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExpContext {
        let mut ctx = ExpContext::main().quick();
        ctx.params.partitions = 8;
        ctx.params.scale = 0.02;
        ctx.cluster.nodes = 4;
        ctx
    }

    #[test]
    fn grid_expands_in_canonical_order() {
        let grid = SweepGrid::new(
            vec![Workload::KMeans, Workload::PageRank],
            vec![PolicySpec::Lru, PolicySpec::MrdFull],
        )
        .fractions(&[0.3, 0.6])
        .seeds(&[1, 2]);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 16);
        // First workload's cells come first; within one (workload, fraction,
        // seed) the policies are adjacent.
        assert_eq!(cells[0].key(), "KM/LRU/f0.3000/s1");
        assert_eq!(cells[1].key(), "KM/MRD/f0.3000/s1");
        assert_eq!(cells[2].key(), "KM/LRU/f0.3000/s2");
        assert!(cells[..8].iter().all(|c| c.workload == Workload::KMeans));
        assert!(cells[8..].iter().all(|c| c.workload == Workload::PageRank));
    }

    #[test]
    fn sim_seed_ignores_policy_but_not_environment() {
        let mk = |policy, frac, seed| SweepCell {
            workload: Workload::KMeans,
            policy,
            capacity_frac: frac,
            seed,
            chaos: 0.0,
            serve: None,
        };
        let a = mk(PolicySpec::Lru, 0.4, 42).sim_seed(42);
        let b = mk(PolicySpec::MrdFull, 0.4, 42).sim_seed(42);
        assert_eq!(a, b, "policies at one grid point must share randomness");
        assert_ne!(a, mk(PolicySpec::Lru, 0.6, 42).sim_seed(42));
        assert_ne!(a, mk(PolicySpec::Lru, 0.4, 43).sim_seed(42));
        assert_ne!(a, mk(PolicySpec::Lru, 0.4, 42).sim_seed(7));
    }

    #[test]
    fn chaos_axis_is_invisible_at_rate_zero() {
        let base = SweepCell {
            workload: Workload::KMeans,
            policy: PolicySpec::Lru,
            capacity_frac: 0.4,
            seed: 42,
            chaos: 0.0,
            serve: None,
        };
        let chaotic = SweepCell { chaos: 0.02, ..base };
        // Rate 0 keeps the pre-chaos key and seed shapes (golden files and
        // paired baselines stay stable); nonzero rates extend both.
        assert_eq!(base.key(), "KM/LRU/f0.4000/s42");
        assert_eq!(chaotic.key(), "KM/LRU/f0.4000/s42/c0.0200");
        assert_ne!(base.sim_seed(42), chaotic.sim_seed(42));
        assert_ne!(chaotic.sim_seed(42), SweepCell { chaos: 0.04, ..base }.sim_seed(42));
    }

    #[test]
    fn chaos_cells_inject_faults_and_clean_cells_do_not() {
        let ctx = tiny_ctx();
        let grid = SweepGrid::new(vec![Workload::KMeans], vec![PolicySpec::Lru])
            .fractions(&[0.5])
            .chaos(&[0.0, 0.08]);
        let res = run_sweep(&grid, &ctx, &SweepOptions::default().threads(2));
        assert_eq!(res.cells.len(), 2);
        let clean = &res.cells[0];
        let chaotic = &res.cells[1];
        assert_eq!(clean.cell.chaos, 0.0);
        assert!(clean.report.faults.is_empty(), "{:?}", clean.report.faults);
        assert!(
            chaotic.report.faults.task_failures + chaotic.report.faults.fetch_failures > 0,
            "{:?}",
            chaotic.report.faults
        );
        assert!(chaotic.report.aborted.is_none());
    }

    #[test]
    fn serve_axis_is_invisible_when_absent() {
        let base = SweepCell {
            workload: Workload::KMeans,
            policy: PolicySpec::Lru,
            capacity_frac: 0.4,
            seed: 42,
            chaos: 0.0,
            serve: None,
        };
        let ax = ServeAxis {
            tenants: 3,
            mean_gap_us: 200_000,
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            resilience: Default::default(),
        };
        let served = SweepCell {
            serve: Some(ax),
            ..base
        };
        // `None` keeps the pre-tenancy key and seed shapes; a serving axis
        // extends both, and composes with the chaos suffix.
        assert_eq!(base.key(), "KM/LRU/f0.4000/s42");
        assert_eq!(
            served.key(),
            "KM/LRU/f0.4000/s42/t3/g200000/fair-share/qequal-share"
        );
        assert_ne!(base.sim_seed(42), served.sim_seed(42));
        let fifo = SweepCell {
            serve: Some(ServeAxis {
                sched: ServeSched::Fifo,
                ..ax
            }),
            ..base
        };
        assert_ne!(served.sim_seed(42), fifo.sim_seed(42));
        let both = SweepCell {
            chaos: 0.02,
            ..served
        };
        assert_eq!(
            both.key(),
            "KM/LRU/f0.4000/s42/c0.0200/t3/g200000/fair-share/qequal-share"
        );
        // Policies at one serve grid point still share simulation randomness.
        assert_eq!(
            served.sim_seed(42),
            SweepCell {
                policy: PolicySpec::MrdFull,
                ..served
            }
            .sim_seed(42)
        );
    }

    #[test]
    fn serve_cells_run_multi_tenant_streams() {
        let ctx = tiny_ctx();
        let ax = ServeAxis {
            tenants: 3,
            mean_gap_us: 100_000,
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            resilience: Default::default(),
        };
        let grid = SweepGrid::new(vec![Workload::KMeans], vec![PolicySpec::Lru])
            .fractions(&[0.5])
            .serve(&[None, Some(ax)]);
        let res = run_sweep(&grid, &ctx, &SweepOptions::default().threads(2));
        assert_eq!(res.cells.len(), 2);
        let single = &res.cells[0];
        let served = &res.cells[1];
        assert!(single.cell.serve.is_none());
        assert_eq!(served.cell.serve, Some(ax));
        // Three tenants each ran a full copy of the workload.
        assert_eq!(served.report.tasks, 3 * single.report.tasks);
        assert!(served.report.jct >= single.report.jct);
        assert!(served.report.app.contains('+'), "{}", served.report.app);
    }

    #[test]
    fn resilience_axis_is_invisible_when_passive() {
        use refdist_cluster::AdmissionPolicy;
        let ax = ServeAxis {
            tenants: 3,
            mean_gap_us: 200_000,
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            resilience: Default::default(),
        };
        let base = SweepCell {
            workload: Workload::KMeans,
            policy: PolicySpec::Lru,
            capacity_frac: 0.4,
            seed: 42,
            chaos: 0.0,
            serve: Some(ax),
        };
        // A passive config — even one with non-default backoff knobs, which
        // only matter once retries happen — keeps the pre-resilience key and
        // seed shapes, so historical serve grids stay byte-stable.
        let tuned_but_passive = SweepCell {
            serve: Some(ServeAxis {
                resilience: ResilienceConfig {
                    retry_backoff_us: 123,
                    max_retry_backoff_us: 456,
                    admission: AdmissionPolicy::Degrade,
                    ..Default::default()
                },
                ..ax
            }),
            ..base
        };
        assert_eq!(
            base.key(),
            "KM/LRU/f0.4000/s42/t3/g200000/fair-share/qequal-share"
        );
        assert_eq!(base.key(), tuned_but_passive.key());
        assert_eq!(base.sim_seed(42), tuned_but_passive.sim_seed(42));
        // Any gating field extends both, and distinct configs get distinct
        // fault/arrival randomness.
        let resilient = SweepCell {
            serve: Some(ServeAxis {
                resilience: ResilienceConfig {
                    max_app_attempts: 3,
                    admission: AdmissionPolicy::Shed,
                    max_active_apps: Some(2),
                    queue_cap: Some(4),
                    deadline_us: Some(5_000_000),
                    ..Default::default()
                },
                ..ax
            }),
            ..base
        };
        assert_eq!(
            resilient.key(),
            "KM/LRU/f0.4000/s42/t3/g200000/fair-share/qequal-share/r3-shed-m2-c4-d5000000"
        );
        assert_ne!(base.sim_seed(42), resilient.sim_seed(42));
        // Policies at one resilient grid point still share randomness.
        assert_eq!(
            resilient.sim_seed(42),
            SweepCell {
                policy: PolicySpec::MrdFull,
                ..resilient
            }
            .sim_seed(42)
        );
    }

    #[test]
    fn resilient_serve_cells_report_slo_columns() {
        use refdist_cluster::AdmissionPolicy;
        let ctx = tiny_ctx();
        let passive = ServeAxis {
            tenants: 3,
            mean_gap_us: 0,
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            resilience: Default::default(),
        };
        // All three tenants arrive at t=0; one admission slot and a shedding
        // policy means exactly two submissions are turned away.
        let shedding = ServeAxis {
            resilience: ResilienceConfig {
                admission: AdmissionPolicy::Shed,
                max_active_apps: Some(1),
                deadline_us: Some(1),
                ..Default::default()
            },
            ..passive
        };
        let grid = SweepGrid::new(vec![Workload::KMeans], vec![PolicySpec::Lru])
            .fractions(&[0.5])
            .serve(&[Some(passive), Some(shedding)]);
        let res = run_sweep(&grid, &ctx, &SweepOptions::default().threads(2));
        assert_eq!(res.cells.len(), 2);
        let quiet = &res.cells[0];
        let shed = &res.cells[1];
        assert!(
            quiet.serve_slo.is_none(),
            "passive resilience must not grow an SLO report"
        );
        let slo = shed.serve_slo.expect("non-passive cell reports SLO stats");
        assert_eq!(slo.shed, 2, "one slot, three simultaneous arrivals");
        assert_eq!(slo.degraded, 0);
        assert!(
            slo.deadline_misses >= 2,
            "shed submissions always miss the deadline"
        );
        // The CSV carries the SLO columns: empty for the passive cell,
        // populated for the resilient one.
        let csv = res.csv();
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows.len(), 3, "header + one row per cell");
        assert!(rows[0].ends_with(
            "app_retries,shed,degraded,deadline_misses,queue_p95_us,queue_p99_us"
        ));
        assert!(rows[1].ends_with(",,,,,"), "{}", rows[1]);
        assert!(
            rows[2].contains(",2,0,") && !rows[2].ends_with(",,,,,"),
            "{}",
            rows[2]
        );
    }

    #[test]
    fn pool_map_orders_results_at_any_width() {
        let items: Vec<usize> = (0..25).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [1, 2, 7, 64] {
            let got = pool_map(&items, threads, |_, &i| i * i);
            assert_eq!(got, expect, "threads={threads}");
        }
        assert!(pool_map(&[] as &[usize], 4, |_, &i| i).is_empty());
    }

    #[test]
    fn sweep_runs_and_aggregates() {
        let ctx = tiny_ctx();
        let grid = SweepGrid::new(
            vec![Workload::ShortestPaths],
            vec![PolicySpec::Lru, PolicySpec::MrdFull],
        )
        .fractions(&[0.3, 0.9]);
        let res = run_sweep(&grid, &ctx, &SweepOptions::default().threads(2));
        assert_eq!(res.cells.len(), 4);
        assert!(res.cells.iter().all(|c| c.report.jct.micros() > 0));
        let (norm, lru_hits, mrd_hits) = res
            .best_normalized(Workload::ShortestPaths, PolicySpec::Lru, PolicySpec::MrdFull)
            .unwrap();
        assert!(norm > 0.0);
        assert!((0.0..=1.0).contains(&lru_hits));
        assert!((0.0..=1.0).contains(&mrd_hits));
        let csv = res.csv();
        assert_eq!(csv.lines().count(), 5, "header + one row per cell");
        assert!(res.table().contains("SP"));
    }
}
