//! Library implementations of the experiment binaries that run on the
//! [`crate::sweep`] engine.
//!
//! Each `*_text` function renders one experiment's full stdout and returns
//! it as a `String`: the `exp_*` binaries just print it, and the golden-file
//! tests (`tests/golden/`) snapshot it. Everything here is deterministic for
//! a fixed [`ExpContext`] — parallelism comes from the sweep engine, whose
//! aggregation order is canonical regardless of worker count.

use crate::{
    cache_for_fraction, pool_map, run_one, run_sweep, ExpContext, PolicySpec, SweepGrid,
    SweepOptions, SWEEP_FRACTIONS,
};
use refdist_cluster::{RunReport, SimConfig, Simulation};
use refdist_core::{MrdConfig, MrdPolicy, ProfileMode, TieBreak};
use refdist_dag::{AppPlan, AppSpec, RddId, RefAnalyzer, StageId, StorageLevel};
use refdist_metrics::{geomean, BarChart, Summary, TextTable};
use refdist_workloads::Workload;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Figure 2 — per-stage policy metrics across the ConnectedComponents
/// workflow (no simulations; pure DAG analysis).
pub fn fig2_text(ctx: &ExpContext) -> String {
    let mut ctx = ctx.clone();
    // A compact CC instance keeps the table readable.
    ctx.params.iterations = Some(4);
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let profile = RefAnalyzer::new(&spec, &plan).profile();

    // The interesting RDDs: cached, referenced at least twice.
    let rdds: Vec<RddId> = profile
        .per_rdd
        .values()
        .filter(|r| r.count() >= 2)
        .map(|r| r.rdd)
        .collect();

    // Total references per RDD (LRC's initial count).
    let totals: HashMap<RddId, usize> = rdds
        .iter()
        .map(|&r| (r, profile.refs(r).unwrap().count()))
        .collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: per-stage policy metrics for {} (cached RDDs with >=2 refs)",
        spec.name
    );
    let _ = writeln!(
        out,
        "cell = LRU idle / LRC remaining / MRD distance ('-' = not created yet, inf = dead)\n"
    );

    let mut header: Vec<String> = vec!["Stage".into(), "Job".into()];
    header.extend(rdds.iter().map(|r| spec.rdd(*r).name.clone()));
    let mut t = TextTable::new(header);

    for stage in &plan.stages {
        let mut row = vec![stage.id.to_string(), stage.job.to_string()];
        for &r in &rdds {
            let refs = profile.refs(r).unwrap();
            let creation = refs.stages[0];
            if stage.id < creation {
                row.push("-".into());
                continue;
            }
            // LRU: stages since the most recent reference at or before now.
            let last_ref = refs
                .stages
                .iter()
                .rev()
                .find(|&&s| s <= stage.id)
                .copied()
                .unwrap_or(creation);
            let lru = stage.id.0 - last_ref.0;
            // LRC: total minus references consumed so far.
            let consumed = refs.stages.iter().filter(|&&s| s <= stage.id).count();
            let lrc = totals[&r] - consumed;
            // MRD: distance to the next reference strictly after now (a
            // reference *at* the current stage is being consumed now).
            let mrd = match refs.next_ref_at_or_after(StageId(stage.id.0 + 1)) {
                Some(s) => (s.0 - stage.id.0).to_string(),
                None => "inf".into(),
            };
            let referenced_now = refs.stages.contains(&stage.id);
            let mark = if referenced_now { "*" } else { "" };
            row.push(format!("{mark}{lru}/{lrc}/{mrd}"));
        }
        t.row(row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(out, "'*' marks a stage that references the RDD.");
    let _ = writeln!(
        out,
        "Observations (paper §3.3): LRU punishes reference gaps; LRC strands\n\
         single-reference RDDs behind high-count peers; MRD keeps whichever\n\
         block is referenced next and marks dead data inf for eager eviction."
    );
    out
}

/// Figure 4 — best performance of MRD modes against LRU on the Main
/// cluster, over a full (workload × policy × cache-size) sweep grid.
pub fn fig4_text(ctx: &ExpContext, opts: &SweepOptions) -> String {
    let modes = [
        PolicySpec::MrdEvict,
        PolicySpec::MrdPrefetch,
        PolicySpec::MrdFull,
    ];
    let grid = SweepGrid::new(
        Workload::sparkbench().to_vec(),
        vec![
            PolicySpec::Lru,
            PolicySpec::MrdEvict,
            PolicySpec::MrdPrefetch,
            PolicySpec::MrdFull,
        ],
    )
    .fractions(SWEEP_FRACTIONS)
    .seeds(&[ctx.seed]);
    let res = run_sweep(&grid, ctx, opts);

    let rows: Vec<(Workload, [f64; 3], (f64, f64))> = Workload::sparkbench()
        .iter()
        .map(|&w| {
            let mut best = [f64::INFINITY; 3];
            let mut best_hits = (1.0, 1.0); // (lru, full mrd) at full MRD's best
            for (k, &m) in modes.iter().enumerate() {
                if let Some((norm, lru_hit, mrd_hit)) =
                    res.best_normalized(w, PolicySpec::Lru, m)
                {
                    best[k] = norm;
                    if m == PolicySpec::MrdFull {
                        best_hits = (lru_hit, mrd_hit);
                    }
                }
            }
            (w, best, best_hits)
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4: Normalized JCT vs LRU (best cache point per mode)\n"
    );
    let mut t = TextTable::new([
        "Workload",
        "Evict-only",
        "Prefetch-only",
        "Full MRD",
        "LRU hit%",
        "MRD hit%",
        "JobType",
    ]);
    let (mut e, mut p, mut f) = (vec![], vec![], vec![]);
    for (w, best, hits) in &rows {
        e.push(best[0]);
        p.push(best[1]);
        f.push(best[2]);
        t.row([
            w.short_name().to_string(),
            format!("{:.2}", best[0]),
            format!("{:.2}", best[1]),
            format!("{:.2}", best[2]),
            format!("{:.1}", hits.0 * 100.0),
            format!("{:.1}", hits.1 * 100.0),
            w.job_type().to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());

    let mut chart = BarChart::new("Full MRD normalized JCT (shorter is better, 1.0 = LRU)")
        .width(40)
        .scale_to(1.0);
    for (w, best, _) in &rows {
        chart.row(w.short_name(), best[2]);
    }
    let _ = writeln!(out, "{}", chart.render());

    let mean = |v: &[f64]| Summary::of(v).map(|s| s.mean).unwrap_or(1.0);
    let _ = writeln!(
        out,
        "Average normalized JCT: evict-only {:.2} (paper 0.62), prefetch-only {:.2} (paper 0.67), full {:.2} (paper 0.53)",
        mean(&e),
        mean(&p),
        mean(&f)
    );
    let _ = writeln!(
        out,
        "Geomean normalized JCT: evict-only {:.2}, prefetch-only {:.2}, full {:.2}",
        geomean(&e).unwrap_or(1.0),
        geomean(&p).unwrap_or(1.0),
        geomean(&f).unwrap_or(1.0)
    );
    let best_full = rows
        .iter()
        .min_by(|a, b| a.1[2].total_cmp(&b.1[2]))
        .unwrap();
    let worst_full = rows
        .iter()
        .max_by(|a, b| a.1[2].total_cmp(&b.1[2]))
        .unwrap();
    let _ = writeln!(
        out,
        "Full MRD: best {} at {:.2} (paper: SCC at 0.20), weakest {} at {:.2} (paper: DT at 0.88)",
        best_full.0.short_name(),
        best_full.1[2],
        worst_full.0.short_name(),
        worst_full.1[2]
    );
    out
}

/// Figure 5 — MRD vs LRC on the LRC-comparison cluster.
pub fn fig5_text(ctx: &ExpContext, opts: &SweepOptions) -> String {
    let workloads = [
        Workload::ConnectedComponents,
        Workload::PageRank,
        Workload::SvdPlusPlus,
        Workload::KMeans,
        Workload::StronglyConnectedComponents,
        Workload::LabelPropagation,
    ];
    let grid = SweepGrid::new(
        workloads.to_vec(),
        vec![PolicySpec::Lru, PolicySpec::Lrc, PolicySpec::MrdFull],
    )
    .fractions(SWEEP_FRACTIONS)
    .seeds(&[ctx.seed]);
    let res = run_sweep(&grid, ctx, opts);

    // Paper methodology: best value per policy across cache sizes.
    let rows: Vec<(Workload, f64, f64)> = workloads
        .iter()
        .map(|&w| {
            let lrc = res
                .best_normalized(w, PolicySpec::Lru, PolicySpec::Lrc)
                .map_or(f64::INFINITY, |(n, _, _)| n);
            let mrd = res
                .best_normalized(w, PolicySpec::Lru, PolicySpec::MrdFull)
                .map_or(f64::INFINITY, |(n, _, _)| n);
            (w, lrc, mrd)
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5: MRD vs LRC (normalized JCT vs LRU, LRC cluster)\n"
    );
    let mut t = TextTable::new(["Workload", "LRC", "MRD", "MRD vs LRC improvement"]);
    let mut improvements = vec![];
    for (w, lrc, mrd) in &rows {
        let imp = 1.0 - mrd / lrc;
        improvements.push(imp);
        t.row([
            w.short_name().to_string(),
            format!("{lrc:.2}"),
            format!("{mrd:.2}"),
            format!("{:.0}%", imp * 100.0),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let s = Summary::of(&improvements).unwrap();
    let _ = writeln!(
        out,
        "MRD improves on LRC by up to {:.0}% and {:.0}% on average (paper: up to 45%, avg 30%)",
        s.max * 100.0,
        s.mean * 100.0
    );
    out
}

/// Table 1 — reference-distance characteristics of all 20 workloads,
/// measured on our synthetic DAGs beside the paper's published values.
pub fn table1_text(ctx: &ExpContext, threads: usize) -> String {
    /// Paper Table 1 values: (avg job, max job, avg stage, max stage).
    fn paper(w: Workload) -> (f64, u32, f64, u32) {
        use Workload::*;
        match w {
            KMeans => (5.15, 16, 5.34, 19),
            LinearRegression => (1.24, 5, 1.76, 8),
            LogisticRegression => (1.53, 6, 2.00, 9),
            Svm => (1.48, 6, 1.96, 10),
            DecisionTree => (2.71, 9, 4.38, 15),
            MatrixFactorization => (1.56, 7, 3.31, 18),
            PageRank => (1.74, 5, 6.08, 19),
            TriangleCount => (0.07, 1, 1.23, 6),
            ShortestPaths => (0.19, 1, 1.19, 4),
            LabelPropagation => (7.19, 22, 28.37, 85),
            SvdPlusPlus => (3.51, 11, 6.82, 23),
            ConnectedComponents => (1.30, 4, 5.31, 16),
            StronglyConnectedComponents => (7.77, 24, 29.96, 90),
            PregelOperation => (1.28, 4, 5.45, 16),
            HiSort => (0.00, 0, 0.00, 0),
            HiWordCount => (0.00, 0, 0.00, 0),
            HiTeraSort => (0.22, 1, 0.22, 1),
            HiPageRank => (0.00, 0, 0.09, 2),
            HiBayes => (2.09, 7, 3.23, 9),
            HiKMeans => (6.08, 19, 6.60, 25),
        }
    }

    let all: Vec<Workload> = Workload::sparkbench()
        .iter()
        .chain(Workload::hibench())
        .copied()
        .collect();

    let rows = pool_map(&all, threads, |_, &w| {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        (w, RefAnalyzer::distance_stats(&profile))
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: Reference distance characteristics (measured vs paper)\n"
    );
    let mut t = TextTable::new([
        "Workload",
        "AvgJob",
        "AvgJob(paper)",
        "MaxJob",
        "MaxJob(paper)",
        "AvgStage",
        "AvgStage(paper)",
        "MaxStage",
        "MaxStage(paper)",
    ]);
    let mut suite_break_done = false;
    for (w, d) in &rows {
        if !suite_break_done && Workload::hibench().contains(w) {
            t.row(["-- HiBench --", "", "", "", "", "", "", "", ""]);
            suite_break_done = true;
        }
        let (pj, pmj, ps, pms) = paper(*w);
        t.row([
            w.short_name().to_string(),
            format!("{:.2}", d.avg_job),
            format!("{pj:.2}"),
            d.max_job.to_string(),
            pmj.to_string(),
            format!("{:.2}", d.avg_stage),
            format!("{ps:.2}"),
            d.max_stage.to_string(),
            pms.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

fn run_mrd(spec: &AppSpec, plan: &AppPlan, cfg: SimConfig, mrd: MrdConfig) -> RunReport {
    let mut p = MrdPolicy::new(mrd);
    Simulation::new(spec, plan, ProfileMode::Recurring, cfg).run(&mut p)
}

/// Extension ablations (DESIGN.md §4b): tie-breaking, prefetch horizon,
/// execution-memory churn, fixed vs adaptive prefetch threshold, and vertex
/// storage level. Independent configurations run on the worker pool.
pub fn ablations_text(ctx: &ExpContext, threads: usize) -> String {
    const FRACTION: f64 = 0.4;
    let mut out = String::new();

    // --- 1. Tie-breaking -------------------------------------------------
    let _ = writeln!(
        out,
        "Ablation 1: distance tie-breaking (full MRD, normalized JCT vs LRU)\n"
    );
    let workloads = [
        Workload::KMeans,
        Workload::DecisionTree,
        Workload::ConnectedComponents,
        Workload::StronglyConnectedComponents,
    ];
    let mut t = TextTable::new(["Workload", "MRU tiebreak", "LRU tiebreak"]);
    let rows = pool_map(&workloads, threads, |_, &w| {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let cache = cache_for_fraction(&spec, &ctx.cluster, FRACTION).max(1);
        let cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        let lru = run_one(&spec, &plan, ctx, cache, PolicySpec::Lru, ProfileMode::Recurring);
        let mru = run_mrd(&spec, &plan, cfg.clone(), MrdConfig::default());
        let lru_tie = run_mrd(
            &spec,
            &plan,
            cfg,
            MrdConfig {
                tie_break: TieBreak::Lru,
                ..Default::default()
            },
        );
        [
            w.short_name().to_string(),
            format!("{:.2}", mru.normalized_jct(&lru)),
            format!("{:.2}", lru_tie.normalized_jct(&lru)),
        ]
    });
    for row in rows {
        t.row(row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "An LRU tiebreak thrashes intra-stage scans (KM/DT); MRU is Belady-consistent.\n"
    );

    // --- 2. Prefetch horizon ---------------------------------------------
    let _ = writeln!(
        out,
        "Ablation 2: prefetch horizon (full MRD on SCC, normalized JCT vs LRU)\n"
    );
    let spec = Workload::StronglyConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.25).max(1);
    let lru = run_one(&spec, &plan, ctx, cache, PolicySpec::Lru, ProfileMode::Recurring);
    let mut t = TextTable::new([
        "Horizon",
        "Normalized JCT",
        "Prefetches",
        "Prefetch hits",
        "Wasted",
    ]);
    let horizons = [1u32, 3, 6, 12, 0 /* unlimited */];
    let rows = pool_map(&horizons, threads, |_, &horizon| {
        let cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        let r = run_mrd(
            &spec,
            &plan,
            cfg,
            MrdConfig {
                prefetch_horizon: horizon,
                ..Default::default()
            },
        );
        [
            if horizon == 0 {
                "unlimited".into()
            } else {
                horizon.to_string()
            },
            format!("{:.2}", r.normalized_jct(&lru)),
            r.stats.prefetches.to_string(),
            r.stats.prefetch_hits.to_string(),
            r.stats.wasted_prefetches.to_string(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Far horizons waste transfers on blocks the next reservation evicts.\n"
    );

    // --- 3. Execution-memory fraction --------------------------------------
    let _ = writeln!(
        out,
        "Ablation 3: execution-memory churn (full MRD on CC, normalized JCT vs LRU at same fraction)\n"
    );
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.5).max(1);
    let mut t = TextTable::new(["exec fraction", "LRU JCT(s)", "MRD JCT(s)", "Normalized"]);
    let fracs = [0.0f64, 0.15, 0.3, 0.5];
    let rows = pool_map(&fracs, threads, |_, &frac| {
        let mut cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        cfg.exec_mem_fraction = frac;
        let mut lru_p = PolicySpec::Lru.build(None);
        let lru =
            Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone()).run(&mut *lru_p);
        let mrd = run_mrd(&spec, &plan, cfg, MrdConfig::default());
        [
            format!("{frac:.2}"),
            format!("{:.1}", lru.jct_secs()),
            format!("{:.1}", mrd.jct_secs()),
            format!("{:.2}", mrd.normalized_jct(&lru)),
        ]
    });
    for row in rows {
        t.row(row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "More churn hurts both policies but widens MRD's edge: its victims matter more.\n"
    );

    // --- 4. Prefetch threshold: fixed sweep vs adaptive --------------------
    // Under the default per-stage cap and horizon the force-prefetch path
    // rarely fires, so the threshold is exercised with the prefetcher
    // uncapped and the horizon unlimited (the paper's Algorithm 1 has
    // neither bound) on SCC.
    let _ = writeln!(
        out,
        "Ablation 4: prefetch threshold — fixed sweep vs adaptive (paper future work)\n"
    );
    // The threshold only binds when a block is a sizeable fraction of the
    // cache (otherwise "fits in free" decides everything); coarse
    // partitioning makes blocks big enough to exercise the forced path.
    let mut coarse = ctx.params;
    coarse.partitions = 24;
    let spec = Workload::StronglyConnectedComponents.build(&coarse);
    let plan = AppPlan::build(&spec);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.12).max(1);
    let mut t = TextTable::new(["Threshold", "JCT(s)", "Prefetches", "Wasted"]);
    let mut base = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
    base.max_prefetch_per_node = usize::MAX;
    // (label, threshold, adaptive) in presentation order.
    let cases = [
        ("fixed 0.05", 0.05f64, false),
        ("fixed 0.25", 0.25, false),
        ("fixed 0.60", 0.6, false),
        ("adaptive (from 0.05)", 0.05, true),
        ("adaptive (from 0.25)", 0.25, true),
    ];
    let rows = pool_map(&cases, threads, |_, &(label, thr, adaptive)| {
        let mut cfg = base.clone();
        cfg.prefetch_threshold = thr;
        cfg.adaptive_threshold = adaptive;
        let r = run_mrd(
            &spec,
            &plan,
            cfg,
            MrdConfig {
                prefetch_horizon: 0,
                ..Default::default()
            },
        );
        [
            label.to_string(),
            format!("{:.1}", r.jct_secs()),
            r.stats.prefetches.to_string(),
            r.stats.wasted_prefetches.to_string(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Lower thresholds force far more wasteful prefetch-evictions; the adaptive rule\nrecovers even from a bad initial setting — the paper's future-work item.\n"
    );

    // --- 5. Vertex storage level -------------------------------------------
    let _ = writeln!(
        out,
        "Ablation 5: MEMORY_AND_DISK vs MEMORY_ONLY cached data (CC, full MRD vs LRU)\n"
    );
    let mut t = TextTable::new([
        "Storage",
        "LRU JCT(s)",
        "MRD JCT(s)",
        "Normalized",
        "LRU recomputes",
    ]);
    let variants = [false, true];
    let rows = pool_map(&variants, threads, |_, &memory_only| {
        let mut spec = Workload::ConnectedComponents.build(&ctx.params);
        if memory_only {
            for r in &mut spec.rdds {
                if r.storage.is_cached() {
                    r.storage = StorageLevel::MemoryOnly;
                }
            }
        }
        let plan = AppPlan::build(&spec);
        let cache = cache_for_fraction(&spec, &ctx.cluster, 0.4).max(1);
        let cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        let mut lru_p = PolicySpec::Lru.build(None);
        let lru =
            Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone()).run(&mut *lru_p);
        let mrd = run_mrd(&spec, &plan, cfg, MrdConfig::default());
        [
            if memory_only {
                "MEMORY_ONLY"
            } else {
                "MEMORY_AND_DISK"
            }
            .to_string(),
            format!("{:.1}", lru.jct_secs()),
            format!("{:.1}", mrd.jct_secs()),
            format!("{:.2}", mrd.normalized_jct(&lru)),
            lru.stats.recomputes.to_string(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Under MEMORY_ONLY every bad eviction becomes a recompute cascade —\nthe regime where eviction policy matters most (and prefetch least)."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExpContext {
        let mut ctx = ExpContext::main().quick();
        ctx.params.partitions = 8;
        ctx.params.scale = 0.02;
        ctx.cluster.nodes = 4;
        ctx
    }

    #[test]
    fn fig2_text_renders_metric_cells() {
        let out = fig2_text(&tiny_ctx());
        assert!(out.contains("Figure 2"));
        assert!(out.contains("inf"));
    }

    #[test]
    fn table1_text_covers_both_suites() {
        let out = table1_text(&tiny_ctx(), 2);
        assert!(out.contains("-- HiBench --"));
        for &w in Workload::sparkbench() {
            assert!(out.contains(w.short_name()), "missing {}", w.short_name());
        }
    }

    #[test]
    fn fig5_text_reports_improvements() {
        let mut ctx = tiny_ctx();
        ctx.cluster = refdist_cluster::ClusterConfig::lrc_cluster();
        ctx.cluster.nodes = 4;
        let out = fig5_text(&ctx, &SweepOptions::default().threads(2));
        assert!(out.contains("Figure 5"));
        assert!(out.contains("MRD improves on LRC"));
    }
}
