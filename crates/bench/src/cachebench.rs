//! Cache hot-path benchmark harness (ISSUE 2).
//!
//! Two pieces, shared by the `victim_selection` criterion bench, the
//! `bench_cache` binary that emits `BENCH_baseline.json` / `BENCH_pr2.json`,
//! and the protocol-equivalence test in `tests/determinism.rs`:
//!
//! * [`NaiveScan`] — a wrapper that forces any policy back onto the
//!   pre-index eviction protocol (re-collect the sorted candidate list, ask
//!   for ONE victim, notify `on_remove`, repeat), exactly as the old
//!   `evict_one` loop drove it. Wrapping a policy in it reproduces the
//!   baseline cost profile without keeping dead code around.
//! * [`Churn`] — a steady-state eviction churn driver: a full cache of `n`
//!   unit-size blocks where every step inserts one block and must evict one
//!   first. Step cost is dominated by victim selection, so `ns/step` for the
//!   naive wrapper vs. the indexed policy measures the O(n)-scan vs.
//!   O(log n)-index gap directly.

use refdist_core::{DistanceMetric, MrdConfig, MrdMode, MrdPolicy};
use refdist_dag::{AppProfile, BlockId, BlockSlots, JobId, RddId, RddRefs, StageId, StageTouches};
use refdist_policies::{CachePolicy, PolicyKind};
use refdist_store::NodeId;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

/// The single node the churn driver runs on.
pub const NODE: NodeId = NodeId(0);

/// Number of distinct RDDs the churn block universe is spread over.
const RDDS: u32 = 64;

/// How often the driver advances the stage clock (exercises the MRD table
/// broadcast / lazy-rebuild path without dominating the churn cost).
const STAGE_PERIOD: u64 = 2048;

/// Constructor for one benched policy instance.
pub type PolicyBuilder = fn() -> Box<dyn CachePolicy>;

/// Policies the cache benches compare, by display name.
pub fn bench_policies() -> Vec<(&'static str, PolicyBuilder)> {
    vec![
        ("LRU", || PolicyKind::Lru.build()),
        ("FIFO", || PolicyKind::Fifo.build()),
        ("LRC", || PolicyKind::Lrc.build()),
        ("MemTune", || PolicyKind::MemTune.build()),
        ("MRD", || {
            Box::new(MrdPolicy::new(MrdConfig {
                mode: MrdMode::Full,
                metric: DistanceMetric::Stage,
                ..Default::default()
            }))
        }),
    ]
}

/// Forces a policy onto the pre-index, one-victim-at-a-time eviction
/// protocol by overriding [`CachePolicy::select_victims`] with the old
/// `evict_one` loop: collect the sorted candidate list, `pick_victim`,
/// notify the inner policy's `on_remove`, repeat until the shortfall is
/// covered.
///
/// Because the inner policy is told about each removal *during* selection
/// (as the old runtime did), the wrapper swallows the runtime's follow-up
/// `on_remove` for those victims so the inner policy is not notified twice.
pub struct NaiveScan {
    inner: Box<dyn CachePolicy>,
    pending: HashSet<(NodeId, BlockId)>,
}

impl NaiveScan {
    /// Wrap `inner` in the naive protocol.
    pub fn new(inner: Box<dyn CachePolicy>) -> Self {
        NaiveScan {
            inner,
            pending: HashSet::new(),
        }
    }
}

impl CachePolicy for NaiveScan {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn attach_slots(&mut self, slots: &Arc<BlockSlots>) {
        self.inner.attach_slots(slots);
    }

    fn on_job_submit(&mut self, job: JobId, visible: &AppProfile) {
        self.inner.on_job_submit(job, visible);
    }

    fn on_stage_start(&mut self, stage: StageId, visible: &AppProfile) {
        self.inner.on_stage_start(stage, visible);
    }

    fn on_insert(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_insert(node, block);
    }

    fn on_access(&mut self, node: NodeId, block: BlockId) {
        self.inner.on_access(node, block);
    }

    fn on_remove(&mut self, node: NodeId, block: BlockId) {
        if !self.pending.remove(&(node, block)) {
            self.inner.on_remove(node, block);
        }
    }

    fn pick_victim(&mut self, node: NodeId, candidates: &[BlockId]) -> Option<BlockId> {
        self.inner.pick_victim(node, candidates)
    }

    fn select_victims(
        &mut self,
        node: NodeId,
        shortfall: u64,
        resident: &BTreeMap<BlockId, u64>,
    ) -> Vec<BlockId> {
        let mut candidates: Vec<BlockId> = resident.keys().copied().collect();
        let mut victims = Vec::new();
        let mut freed = 0u64;
        while freed < shortfall && !candidates.is_empty() {
            let Some(victim) = self.inner.pick_victim(node, &candidates) else {
                break;
            };
            let Ok(pos) = candidates.binary_search(&victim) else {
                break;
            };
            candidates.remove(pos);
            self.inner.on_remove(node, victim);
            self.pending.insert((node, victim));
            freed += resident[&victim];
            victims.push(victim);
        }
        victims
    }

    fn purge_candidates(&mut self, in_memory: &[BlockId]) -> Vec<BlockId> {
        self.inner.purge_candidates(in_memory)
    }

    fn prefetch_order(&mut self, node: NodeId, missing: &[BlockId]) -> Vec<BlockId> {
        self.inner.prefetch_order(node, missing)
    }

    fn wants_prefetch(&self) -> bool {
        self.inner.wants_prefetch()
    }
}

/// A profile covering the churn block universe: RDD r is referenced at three
/// stages derived from r, so MRD sees a mix of finite and infinite
/// distances, LRC sees varied reference counts, and MemTune sees a rolling
/// needed-window.
fn churn_profile() -> AppProfile {
    let mut per_rdd = BTreeMap::new();
    let mut per_stage = vec![StageTouches::default(); 40];
    for r in 0..RDDS {
        let base = r % 16;
        let stages = [base, base + 3, base + 9];
        per_rdd.insert(
            RddId(r),
            RddRefs {
                rdd: RddId(r),
                stages: stages.iter().map(|&s| StageId(s)).collect(),
                jobs: stages.iter().map(|&s| JobId(s / 5)).collect(),
            },
        );
        for &s in &stages {
            per_stage[s as usize].reads.push(RddId(r));
        }
    }
    AppProfile {
        per_rdd,
        per_stage,
        stage_job: (0..40).map(|s| JobId(s / 5)).collect(),
        num_jobs: 8,
    }
}

/// Steady-state eviction churn driver for one policy instance.
///
/// The cache starts full with `n` unit-size blocks; every [`Churn::step`]
/// touches one recently inserted block, then inserts the oldest evicted
/// block back, which forces exactly one eviction through
/// [`CachePolicy::select_victims`]. Residency stays at `n` forever, so each
/// step is one complete insert-under-pressure event — the hot path the
/// runtime's `free_up` drives.
pub struct Churn {
    policy: Box<dyn CachePolicy>,
    resident: BTreeMap<BlockId, u64>,
    spare: VecDeque<BlockId>,
    recent: Vec<BlockId>,
    profile: AppProfile,
    steps: u64,
    stage: u32,
    rng: u64,
}

impl Churn {
    /// A churn driver over `n` resident blocks (plus an `n/4` spare pool).
    /// `naive` wraps the policy in [`NaiveScan`].
    pub fn new(build: fn() -> Box<dyn CachePolicy>, n: usize, naive: bool) -> Self {
        Self::with_mode(build, n, naive, false)
    }

    /// [`Churn::new`] with an explicit state mode: `dense` offers the policy
    /// a [`BlockSlots`] arena covering the whole churn universe before any
    /// other hook, exactly as the runtime does in dense mode. Policies
    /// without slot-indexed state ignore it.
    pub fn with_mode(
        build: fn() -> Box<dyn CachePolicy>,
        n: usize,
        naive: bool,
        dense: bool,
    ) -> Self {
        let mut policy = if naive {
            Box::new(NaiveScan::new(build())) as Box<dyn CachePolicy>
        } else {
            build()
        };
        if dense {
            let universe = n + (n / 4).max(1);
            let parts = universe.div_ceil(RDDS as usize) as u32;
            let arena = Arc::new(BlockSlots::from_counts((0..RDDS).map(|r| (RddId(r), parts))));
            policy.attach_slots(&arena);
        }
        let profile = churn_profile();
        policy.on_job_submit(JobId(0), &profile);
        policy.on_stage_start(StageId(0), &profile);
        let universe = n + (n / 4).max(1);
        let mut resident = BTreeMap::new();
        let mut spare = VecDeque::new();
        for i in 0..universe {
            let b = BlockId::new(RddId(i as u32 % RDDS), (i / RDDS as usize) as u32);
            if i < n {
                resident.insert(b, 1);
                policy.on_insert(NODE, b);
            } else {
                spare.push_back(b);
            }
        }
        Churn {
            policy,
            resident,
            spare,
            recent: Vec::with_capacity(64),
            profile,
            steps: 0,
            stage: 0,
            rng: 0x9e3779b97f4a7c15,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64: deterministic, cheap, state in one word.
        self.rng = self.rng.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// One churn step: occasional stage advance, one access, one
    /// insert-under-pressure (evicting exactly one block). Returns the
    /// victim so callers can check protocol equivalence.
    pub fn step(&mut self) -> BlockId {
        self.steps += 1;
        if self.steps.is_multiple_of(STAGE_PERIOD) && self.stage < 39 {
            self.stage += 1;
            self.policy.on_stage_start(StageId(self.stage), &self.profile);
        }
        if !self.recent.is_empty() {
            let idx = self.next_rand() as usize % self.recent.len();
            let touched = self.recent[idx];
            if self.resident.contains_key(&touched) {
                self.policy.on_access(NODE, touched);
            }
        }
        let incoming = self.spare.pop_front().expect("spare pool never empties");
        let victims = self.policy.select_victims(NODE, 1, &self.resident);
        let &victim = victims.first().expect("a full cache always has a victim");
        for &v in &victims {
            assert!(self.resident.remove(&v).is_some(), "non-resident victim");
            self.policy.on_remove(NODE, v);
            self.spare.push_back(v);
        }
        self.resident.insert(incoming, 1);
        self.policy.on_insert(NODE, incoming);
        if self.recent.len() < 64 {
            self.recent.push(incoming);
        } else {
            self.recent[(self.steps % 64) as usize] = incoming;
        }
        victim
    }

    /// Number of resident blocks (constant across steps).
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the cache is empty (never, after construction with n > 0).
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_keeps_residency_constant() {
        let (_, build) = bench_policies()[0];
        let mut c = Churn::new(build, 100, false);
        for _ in 0..300 {
            c.step();
        }
        assert_eq!(c.len(), 100);
        assert!(!c.is_empty());
    }

    #[test]
    fn naive_wrapper_matches_indexed_for_every_policy() {
        for (name, build) in bench_policies() {
            let mut naive = Churn::new(build, 64, true);
            let mut indexed = Churn::new(build, 64, false);
            for i in 0..512 {
                let a = naive.step();
                let b = indexed.step();
                assert_eq!(a, b, "victim diverged at step {i} for {name}");
            }
        }
    }

    #[test]
    fn dense_state_matches_hashed_for_every_policy() {
        for (name, build) in bench_policies() {
            let mut hashed = Churn::with_mode(build, 64, false, false);
            let mut dense = Churn::with_mode(build, 64, false, true);
            for i in 0..512 {
                let a = hashed.step();
                let b = dense.step();
                assert_eq!(a, b, "victim diverged at step {i} for {name}");
            }
        }
    }
}
