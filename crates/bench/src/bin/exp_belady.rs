//! Extension — How close is MRD to Belady's MIN?
//!
//! The paper argues (§3.1) that DAG information gives a "semi-omniscient"
//! view that only *approximates* Belady's optimal policy, because the exact
//! task order is unknown. With the full simulator we can run the actual
//! clairvoyant oracle (replaying the access trace of an unconstrained run)
//! and measure the gap across the suite at a fixed, constrained cache.

use refdist_bench::{cache_for_fraction, par_map, run_one, ExpContext, PolicySpec};
use refdist_core::ProfileMode;
use refdist_dag::AppPlan;
use refdist_metrics::{Summary, TextTable};
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::main().from_env();
    const FRACTION: f64 = 0.4;

    let rows = par_map(Workload::sparkbench(), |w| {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let cache = cache_for_fraction(&spec, &ctx.cluster, FRACTION).max(1);
        let lru = run_one(
            &spec,
            &plan,
            &ctx,
            cache,
            PolicySpec::Lru,
            ProfileMode::Recurring,
        );
        // Apples to apples: the MIN oracle only evicts, so compare it
        // against MRD's eviction half; full MRD is shown alongside.
        let mrd = run_one(
            &spec,
            &plan,
            &ctx,
            cache,
            PolicySpec::MrdEvict,
            ProfileMode::Recurring,
        );
        let full = run_one(
            &spec,
            &plan,
            &ctx,
            cache,
            PolicySpec::MrdFull,
            ProfileMode::Recurring,
        );
        let min = run_one(
            &spec,
            &plan,
            &ctx,
            cache,
            PolicySpec::Belady,
            ProfileMode::Recurring,
        );
        (w, lru, mrd, full, min)
    });

    println!(
        "Extension: MRD vs Belady's MIN (cache = {:.0}% of cached footprint)\n",
        FRACTION * 100.0
    );
    let mut t = TextTable::new([
        "Workload",
        "LRU JCT(s)",
        "MRD-evict JCT(s)",
        "MIN JCT(s)",
        "Full MRD JCT(s)",
        "evict/MIN",
        "MRD-evict hit%",
        "MIN hit%",
    ]);
    let mut gaps = vec![];
    for (w, lru, mrd, full, min) in &rows {
        let gap = mrd.jct.micros() as f64 / min.jct.micros().max(1) as f64;
        gaps.push(gap);
        t.row([
            w.short_name().to_string(),
            format!("{:.1}", lru.jct_secs()),
            format!("{:.1}", mrd.jct_secs()),
            format!("{:.1}", min.jct_secs()),
            format!("{:.1}", full.jct_secs()),
            format!("{gap:.2}"),
            format!("{:.1}", mrd.hit_ratio() * 100.0),
            format!("{:.1}", min.hit_ratio() * 100.0),
        ]);
    }
    println!("{}", t.render());
    let s = Summary::of(&gaps).unwrap();
    println!(
        "MRD eviction runs within {:.2}x of the clairvoyant eviction optimum on average\n\
         (worst {:.2}x) — quantifying §3.1's claim that stage-level DAG knowledge\n\
         approximates MIN. Full MRD (with prefetching) often beats the eviction-only\n\
         oracle outright: prefetching moves I/O off the critical path, something no\n\
         eviction policy can do.",
        s.mean, s.max
    );
}
