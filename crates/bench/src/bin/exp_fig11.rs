//! Figure 11 — JCT reduction vs average stage distance (§5.10).
//!
//! High-stage-distance workloads (LP, SCC) leave big reference gaps MRD can
//! exploit; low-distance workloads (SVM, SP) leave little. The paper fits a
//! linear trend with R² = 0.46.

use refdist_bench::{best_normalized, par_map, ExpContext, PolicySpec, SWEEP_FRACTIONS};
use refdist_core::ProfileMode;
use refdist_dag::{AppPlan, RefAnalyzer};
use refdist_metrics::{linear_fit, TextTable};
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::main().from_env();
    let rows = par_map(Workload::sparkbench(), |w| {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let d = RefAnalyzer::distance_stats(&profile);
        let (norm, _, _) = best_normalized(
            w,
            &ctx,
            SWEEP_FRACTIONS,
            PolicySpec::MrdFull,
            ProfileMode::Recurring,
        );
        (w, d.avg_stage, (1.0 - norm) * 100.0)
    });

    println!("Figure 11: JCT reduction vs average stage distance\n");
    let mut t = TextTable::new(["Workload", "AvgStageDistance", "JCT reduction %"]);
    let pts: Vec<(f64, f64)> = rows.iter().map(|(_, x, y)| (*x, *y)).collect();
    for (w, x, y) in &rows {
        t.row([
            w.short_name().to_string(),
            format!("{x:.2}"),
            format!("{y:.1}"),
        ]);
    }
    println!("{}", t.render());
    match linear_fit(&pts) {
        Some(fit) => println!(
            "Trendline: reduction% = {:.2} + {:.2} * avg_stage_distance, R² = {:.2} (paper R² = 0.46, positive slope)",
            fit.intercept, fit.slope, fit.r2
        ),
        None => println!("trendline: degenerate input"),
    }
}
