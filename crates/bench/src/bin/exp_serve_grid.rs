//! Serve-grid experiment (ROADMAP item 1 follow-up): does reference
//! distance still win when tenants evict each other?
//!
//! The paper's comparison is single-application: one DAG, one cache, MRD's
//! reference distances computed against one profile. Serving breaks the
//! cleanest assumption behind that result — a tenant's blocks can be
//! evicted by *other* tenants' pressure, at moments its own reference
//! pattern never predicted. This experiment runs 10k-submission Poisson
//! streams over the full serve grid (tenants × arrival rate × scheduler ×
//! quota) with per-submission LRU vs LRC vs MRD policies and compares
//! per-tenant JCT distributions and cross-tenant eviction counts.
//!
//! The per-submission app is the hot/cold pattern where reference distance
//! has signal: two cached RDDs, one re-read by every job, one written early
//! and read back only by the final job. LRU keeps whatever was touched
//! last; MRD knows the cold RDD's next reference is far away and sheds it
//! first. The cluster's cache holds ~2 concurrent working sets while the
//! arrival rate keeps ~4-10 submissions live, so eviction pressure is
//! continuous and mostly *cross*-submission.
//!
//! `REFDIST_QUICK=1` shrinks the stream for smoke runs. The full run backs
//! the "MRD under multi-tenancy" section in EXPERIMENTS.md.

use refdist_cluster::{
    ArrivalProcess, ClusterConfig, QuotaKind, ServeConfig, ServeReport, ServeSched, ServeSim,
    SimConfig,
};
use refdist_core::MrdPolicy;
use refdist_dag::{AppBuilder, AppSpec, StorageLevel};
use refdist_metrics::TextTable;
use refdist_policies::{CachePolicy, PolicyKind};

fn quick() -> bool {
    std::env::var("REFDIST_QUICK").is_ok_and(|v| v != "0")
}

/// Hot/cold iterative app: `hot` is re-read by all three aggregation jobs,
/// `cold` is created up front and referenced again only by the last job —
/// the distance between LRU's recency signal and MRD's reference distance.
fn grid_app() -> AppSpec {
    let parts = 4;
    let block = 64 * 1024;
    let mut b = AppBuilder::new("grid-app");
    let input = b.input("in", parts, block, 2_000);
    let hot = b.narrow("hot", input, block, 5_000);
    b.persist(hot, StorageLevel::MemoryAndDisk);
    let cold = b.narrow("cold", input, block, 5_000);
    b.persist(cold, StorageLevel::MemoryAndDisk);
    let seed = b.narrow_multi("seed", &[hot, cold], 1024, 100);
    b.action("create", seed);
    for i in 0..3 {
        let s = b.shuffle(format!("agg{i}"), &[hot], parts, block / 8, 500);
        b.action(format!("job{i}"), s);
    }
    let last = b.shuffle("coldref", &[cold], parts, block / 8, 500);
    b.action("jc", last);
    b.build()
}

fn build(policy: &str) -> Box<dyn CachePolicy> {
    match policy {
        "lru" => PolicyKind::Lru.build(),
        "lrc" => PolicyKind::Lrc.build(),
        "mrd" => Box::new(MrdPolicy::full()),
        other => panic!("unknown policy {other}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    spec: &AppSpec,
    n: usize,
    tenants: u32,
    mean_gap_us: u64,
    sched: ServeSched,
    quota: QuotaKind,
    policy: &str,
) -> ServeReport {
    let subs: Vec<(&AppSpec, u32)> = (0..n).map(|i| (spec, i as u32 % tenants)).collect();
    // ~2 concurrent working sets fit; the rest is eviction pressure.
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let mut sim = SimConfig::new(ClusterConfig::tiny(2, footprint));
    sim.seed = 42;
    sim.compute_jitter = 0.0;
    sim.exec_mem_fraction = 0.0;
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim,
            arrivals: ArrivalProcess::Poisson { mean_gap_us },
            sched,
            quota,
            upfront: false,
            intern: true,
            resilience: Default::default(),
        },
    );
    serve.run((0..n).map(|_| build(policy)).collect())
}

struct Cell {
    mean_ms: f64,
    p99_ms: f64,
    cross_frac: f64,
}

fn summarize(r: &ServeReport) -> Cell {
    let mut jcts: Vec<u64> = r.reports.iter().map(|x| x.jct.micros()).collect();
    jcts.sort_unstable();
    let mean = jcts.iter().sum::<u64>() as f64 / jcts.len() as f64;
    let p99 = jcts[(jcts.len() * 99).div_ceil(100).clamp(1, jcts.len()) - 1];
    let total: u64 = r.cross_evictions.iter().flatten().sum();
    let cross: u64 = r
        .cross_evictions
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v)
                .sum::<u64>()
        })
        .sum();
    Cell {
        mean_ms: mean / 1e3,
        p99_ms: p99 as f64 / 1e3,
        cross_frac: if total == 0 {
            0.0
        } else {
            cross as f64 / total as f64
        },
    }
}

fn main() {
    let n = if quick() { 400 } else { 10_000 };
    let spec = grid_app();
    println!(
        "serve grid: {n}-submission Poisson streams of the hot/cold app, \
         per-submission policies, streaming admission\n"
    );
    let mut t = TextTable::new([
        "tenants", "gap ms", "sched", "quota", "policy", "mean JCT", "p99 JCT", "cross-ev",
        "vs lru",
    ]);
    for &tenants in &[4u32, 16] {
        for &gap in &[40_000u64, 80_000] {
            for &sched in &[ServeSched::Fifo, ServeSched::FairShare] {
                for &quota in &[QuotaKind::Unlimited, QuotaKind::EqualShare] {
                    let mut lru_mean = None;
                    for policy in ["lru", "lrc", "mrd"] {
                        let report = run_cell(&spec, n, tenants, gap, sched, quota, policy);
                        let c = summarize(&report);
                        if policy == "lru" {
                            lru_mean = Some(c.mean_ms);
                        }
                        let vs = lru_mean.map_or(1.0, |l| c.mean_ms / l);
                        t.row([
                            tenants.to_string(),
                            (gap / 1_000).to_string(),
                            sched.to_string(),
                            quota.to_string(),
                            policy.to_string(),
                            format!("{:.1} ms", c.mean_ms),
                            format!("{:.1} ms", c.p99_ms),
                            format!("{:.0}%", c.cross_frac * 100.0),
                            format!("{vs:.3}"),
                        ]);
                    }
                }
            }
        }
    }
    println!("{}", t.render());
    println!("vs lru: mean JCT relative to the same cell under LRU (lower is better).");
}
