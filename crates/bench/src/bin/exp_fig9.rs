//! Figure 9 — Ad-hoc (one job DAG at a time) vs recurring (whole-application
//! profile) runs (§5.8).
//!
//! Paper: K-Means, with 17 jobs and heavy cross-job reuse, suffers without
//! the application-wide view — cross-job references look infinite and good
//! blocks get evicted. TriangleCount, with only 2 jobs and 0.8 references
//! per RDD, is indifferent.

use refdist_bench::{par_map, sweep, ExpContext, PolicySpec, SWEEP_FRACTIONS};
use refdist_core::ProfileMode;
use refdist_metrics::TextTable;
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::main().from_env();
    let workloads = [
        Workload::KMeans,
        Workload::TriangleCount,
        Workload::LabelPropagation,
        Workload::SvdPlusPlus,
    ];
    let policies = [PolicySpec::Lru, PolicySpec::MrdFull];

    let rows = par_map(&workloads, |w| {
        let best = |mode: ProfileMode| {
            let pts = sweep(w, &ctx, SWEEP_FRACTIONS, &policies, mode);
            let mut best = (f64::INFINITY, 0.0);
            for p in &pts {
                let n = p.reports[1].normalized_jct(&p.reports[0]);
                if n < best.0 {
                    best = (n, p.reports[1].hit_ratio());
                }
            }
            best
        };
        (w, best(ProfileMode::Recurring), best(ProfileMode::AdHoc))
    });

    println!("Figure 9: recurring vs ad-hoc profile visibility (MRD, normalized JCT vs LRU)\n");
    let mut t = TextTable::new([
        "Workload",
        "Recurring JCT",
        "Recurring hit%",
        "Ad-hoc JCT",
        "Ad-hoc hit%",
    ]);
    for (w, rec, adhoc) in &rows {
        t.row([
            w.short_name().to_string(),
            format!("{:.2}", rec.0),
            format!("{:.1}", rec.1 * 100.0),
            format!("{:.2}", adhoc.0),
            format!("{:.1}", adhoc.1 * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expectation (paper §5.8): KM loses noticeably without the whole-app\n\
         DAG (cross-job references read as infinite); TC barely changes."
    );
}
