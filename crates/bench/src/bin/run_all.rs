//! Run every experiment binary, writing each one's output to
//! `experiments/<name>.txt` next to the workspace root (and echoing to
//! stdout). The per-experiment binaries are expected to live next to this
//! one in the cargo target directory.
//!
//! Experiments run concurrently on the sweep engine's worker pool (each
//! child is itself internally parallel, so the pool is halved to avoid
//! oversubscription), but their outputs are printed and written in the
//! canonical list order below — the combined stdout is identical to a
//! sequential run. Scheduling chatter goes to stderr.

use refdist_bench::{default_threads, pool_map};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_table3",
    "exp_fig2",
    "exp_fig4",
    "exp_fig5",
    "exp_fig6",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9",
    "exp_fig10",
    "exp_fig11",
    "exp_fig12",
    "exp_belady",
    "exp_overheads",
    "exp_ablations",
];

enum Outcome {
    Missing,
    Failed { stderr: String },
    Done { stdout: String, secs: f64 },
}

fn main() {
    let me = std::env::current_exe().expect("current_exe");
    let bin_dir = me.parent().expect("bin dir").to_path_buf();
    let out_dir =
        PathBuf::from(std::env::var("REFDIST_OUT_DIR").unwrap_or_else(|_| "experiments".into()));
    fs::create_dir_all(&out_dir).expect("create output dir");

    // Children are internally parallel; running all of them at full width
    // would oversubscribe the machine.
    let threads = default_threads().div_ceil(2);
    eprintln!(
        "running {} experiments on {} worker(s)",
        EXPERIMENTS.len(),
        threads
    );

    let outcomes = pool_map(EXPERIMENTS, threads, |_, &name| {
        let bin = bin_dir.join(name);
        if !bin.exists() {
            eprintln!(
                "skipping {name}: {} not built (run `cargo build --release -p refdist-bench`)",
                bin.display()
            );
            return Outcome::Missing;
        }
        eprintln!("[start] {name}");
        let started = Instant::now();
        let output = Command::new(&bin).output().expect("spawn experiment");
        let secs = started.elapsed().as_secs_f64();
        if !output.status.success() {
            return Outcome::Failed {
                stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
            };
        }
        eprintln!("[done]  {name} in {secs:.1}s");
        Outcome::Done {
            stdout: String::from_utf8_lossy(&output.stdout).into_owned(),
            secs,
        }
    });

    let mut failures = Vec::new();
    for (name, outcome) in EXPERIMENTS.iter().zip(outcomes) {
        match outcome {
            Outcome::Missing => failures.push(*name),
            Outcome::Failed { stderr } => {
                eprintln!("{name} FAILED: {stderr}");
                failures.push(*name);
            }
            Outcome::Done { stdout, secs } => {
                println!("\n================ {name} ================\n");
                print!("{stdout}");
                let mut f =
                    fs::File::create(out_dir.join(format!("{name}.txt"))).expect("create file");
                f.write_all(stdout.as_bytes()).expect("write output");
                // Timing is nondeterministic, so it goes to stderr only.
                eprintln!("[{name} finished in {secs:.1}s]");
            }
        }
    }
    if failures.is_empty() {
        println!(
            "\nAll experiments completed; outputs in {}/",
            out_dir.display()
        );
    } else {
        eprintln!("\nFailed or skipped: {failures:?}");
        std::process::exit(1);
    }
}
