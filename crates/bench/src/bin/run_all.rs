//! Run every experiment binary in sequence, writing each one's output to
//! `experiments/<name>.txt` next to the workspace root (and echoing to
//! stdout). The per-experiment binaries are expected to live next to this
//! one in the cargo target directory.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_table3",
    "exp_fig2",
    "exp_fig4",
    "exp_fig5",
    "exp_fig6",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9",
    "exp_fig10",
    "exp_fig11",
    "exp_fig12",
    "exp_belady",
    "exp_overheads",
    "exp_ablations",
];

fn main() {
    let me = std::env::current_exe().expect("current_exe");
    let bin_dir = me.parent().expect("bin dir").to_path_buf();
    let out_dir =
        PathBuf::from(std::env::var("REFDIST_OUT_DIR").unwrap_or_else(|_| "experiments".into()));
    fs::create_dir_all(&out_dir).expect("create output dir");

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let bin = bin_dir.join(name);
        if !bin.exists() {
            eprintln!(
                "skipping {name}: {} not built (run `cargo build --release -p refdist-bench`)",
                bin.display()
            );
            failures.push(*name);
            continue;
        }
        println!("\n================ {name} ================\n");
        let started = std::time::Instant::now();
        let output = Command::new(&bin).output().expect("spawn experiment");
        let elapsed = started.elapsed();
        let text = String::from_utf8_lossy(&output.stdout);
        print!("{text}");
        if !output.status.success() {
            eprintln!("{name} FAILED: {}", String::from_utf8_lossy(&output.stderr));
            failures.push(*name);
            continue;
        }
        let mut f = fs::File::create(out_dir.join(format!("{name}.txt"))).expect("create file");
        f.write_all(text.as_bytes()).expect("write output");
        println!("[{name} finished in {:.1}s]", elapsed.as_secs_f64());
    }
    if failures.is_empty() {
        println!(
            "\nAll experiments completed; outputs in {}/",
            out_dir.display()
        );
    } else {
        eprintln!("\nFailed or skipped: {failures:?}");
        std::process::exit(1);
    }
}
