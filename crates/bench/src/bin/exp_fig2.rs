//! Figure 2 — Policy metric evolution across the ConnectedComponents
//! workflow.
//!
//! The paper's Figure 2 is a heat map showing, per stage, each policy's
//! metric for every cached RDD: LRU's idle time (higher evicts), LRC's
//! remaining reference count (lower evicts), MRD's reference distance
//! (higher evicts; `inf` for dead data). We regenerate the underlying
//! numbers as a table over the active stages of the CC workload, for the
//! cached RDDs with at least two references.

use refdist_bench::ExpContext;
use refdist_dag::{AppPlan, RddId, RefAnalyzer, StageId};
use refdist_metrics::TextTable;
use refdist_workloads::Workload;
use std::collections::HashMap;

fn main() {
    let mut ctx = ExpContext::main().from_env();
    // A compact CC instance keeps the table readable.
    ctx.params.iterations = Some(4);
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let profile = RefAnalyzer::new(&spec, &plan).profile();

    // The interesting RDDs: cached, referenced at least twice.
    let rdds: Vec<RddId> = profile
        .per_rdd
        .values()
        .filter(|r| r.count() >= 2)
        .map(|r| r.rdd)
        .collect();

    // Total references per RDD (LRC's initial count).
    let totals: HashMap<RddId, usize> = rdds
        .iter()
        .map(|&r| (r, profile.refs(r).unwrap().count()))
        .collect();

    println!(
        "Figure 2: per-stage policy metrics for {} (cached RDDs with >=2 refs)",
        spec.name
    );
    println!(
        "cell = LRU idle / LRC remaining / MRD distance ('-' = not created yet, inf = dead)\n"
    );

    let mut header: Vec<String> = vec!["Stage".into(), "Job".into()];
    header.extend(rdds.iter().map(|r| spec.rdd(*r).name.clone()));
    let mut t = TextTable::new(header);

    for stage in &plan.stages {
        let mut row = vec![stage.id.to_string(), stage.job.to_string()];
        for &r in &rdds {
            let refs = profile.refs(r).unwrap();
            let creation = refs.stages[0];
            if stage.id < creation {
                row.push("-".into());
                continue;
            }
            // LRU: stages since the most recent reference at or before now.
            let last_ref = refs
                .stages
                .iter()
                .rev()
                .find(|&&s| s <= stage.id)
                .copied()
                .unwrap_or(creation);
            let lru = stage.id.0 - last_ref.0;
            // LRC: total minus references consumed so far.
            let consumed = refs.stages.iter().filter(|&&s| s <= stage.id).count();
            let lrc = totals[&r] - consumed;
            // MRD: distance to the next reference strictly after now (a
            // reference *at* the current stage is being consumed now).
            let mrd = match refs.next_ref_at_or_after(StageId(stage.id.0 + 1)) {
                Some(s) => (s.0 - stage.id.0).to_string(),
                None => "inf".into(),
            };
            let referenced_now = refs.stages.contains(&stage.id);
            let mark = if referenced_now { "*" } else { "" };
            row.push(format!("{mark}{lru}/{lrc}/{mrd}"));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("'*' marks a stage that references the RDD.");
    println!(
        "Observations (paper §3.3): LRU punishes reference gaps; LRC strands\n\
         single-reference RDDs behind high-count peers; MRD keeps whichever\n\
         block is referenced next and marks dead data inf for eager eviction."
    );
}
