//! Figure 2 — Policy metric evolution across the ConnectedComponents
//! workflow. See [`refdist_bench::experiments::fig2_text`] for the
//! methodology; this binary only prints it.

use refdist_bench::{experiments, ExpContext};

fn main() {
    let ctx = ExpContext::main().from_env();
    print!("{}", experiments::fig2_text(&ctx));
}
