//! §4.4 — Storage, computation and communication overheads of MRD.
//!
//! The paper claims: the largest MRD_Table held fewer than 300 references
//! and measured in KBs; the per-decision sort is negligible; and monitor
//! synchronization traffic is bounded (one replica per node per change).
//! This experiment measures all three across the suite. The per-operation
//! CPU costs are covered by the criterion benches (`policy_overhead`).

use refdist_bench::{cache_for_fraction, ExpContext};
use refdist_cluster::{SimConfig, Simulation};
use refdist_core::{MrdPolicy, ProfileMode};
use refdist_dag::{AppPlan, RefAnalyzer};
use refdist_metrics::TextTable;
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::main().from_env();
    println!("Overheads (paper §4.4): MRD table size and replication traffic\n");
    let mut t = TextTable::new([
        "Workload",
        "Table refs",
        "Table RDDs",
        "~Table bytes",
        "Broadcasts",
        "Stages",
        "Broadcasts/stage/node",
    ]);
    for &w in Workload::sparkbench() {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let refs = profile.total_references();
        let rdds = profile.per_rdd.len();
        // A reference point is (rdd id, stage id, job id): ~12 bytes.
        let bytes = refs * 12;

        let cache = cache_for_fraction(&spec, &ctx.cluster, 0.4).max(1);
        let cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        let mut mrd = MrdPolicy::full();
        let _ = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut mrd);
        let broadcasts = mrd.sync_messages();
        let stages = plan.active_stage_count() as u64;
        t.row([
            w.short_name().to_string(),
            refs.to_string(),
            rdds.to_string(),
            format!("{bytes} B"),
            broadcasts.to_string(),
            stages.to_string(),
            format!(
                "{:.2}",
                broadcasts as f64 / (stages as f64 * ctx.cluster.nodes as f64)
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper: largest table < 300 references, measured in KBs; our tables are the\n\
         same order. Broadcasts are ~1 per node per stage (a replica refresh per\n\
         stage advance), matching the described sendReferenceDistance traffic."
    );
}
