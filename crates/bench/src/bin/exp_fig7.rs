//! Figure 7 — Effect of cache size on hit ratio and runtime for SVD++ on
//! the LRC cluster, under LRU / LRC / MRD.
//!
//! Paper: smaller caches mean lower hit ratios and longer runtimes for every
//! policy, but MRD dominates at every size; and MRD matches LRU's hit ratio
//! with far less cache (the paper quotes a 68% target ratio reached with
//! 0.33 GB under MRD vs 0.88 GB under LRU — 63% cache savings).

use refdist_bench::{sweep, ExpContext, PolicySpec};
use refdist_core::ProfileMode;
use refdist_metrics::{human_bytes, TextTable};
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::lrc().from_env();
    let fractions = [0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.2];
    let policies = [PolicySpec::Lru, PolicySpec::Lrc, PolicySpec::MrdFull];
    let pts = sweep(
        Workload::SvdPlusPlus,
        &ctx,
        &fractions,
        &policies,
        ProfileMode::Recurring,
    );

    println!("Figure 7: SVD++ hit ratio & runtime vs cache size (LRC cluster)\n");
    let mut t = TextTable::new([
        "Cache/node",
        "LRU hit%",
        "LRC hit%",
        "MRD hit%",
        "LRU JCT(s)",
        "LRC JCT(s)",
        "MRD JCT(s)",
    ]);
    for p in &pts {
        t.row([
            human_bytes(p.cache_bytes),
            format!("{:.1}", p.reports[0].hit_ratio() * 100.0),
            format!("{:.1}", p.reports[1].hit_ratio() * 100.0),
            format!("{:.1}", p.reports[2].hit_ratio() * 100.0),
            format!("{:.1}", p.reports[0].jct_secs()),
            format!("{:.1}", p.reports[1].jct_secs()),
            format!("{:.1}", p.reports[2].jct_secs()),
        ]);
    }
    println!("{}", t.render());

    // Cache-savings analysis: the smallest cache at which each policy
    // reaches a target hit ratio (LRU's ratio at the mid sweep point).
    let target = pts[pts.len() / 2].reports[0].hit_ratio();
    let needed = |idx: usize| {
        pts.iter()
            .find(|p| p.reports[idx].hit_ratio() >= target)
            .map(|p| p.cache_bytes)
    };
    match (needed(0), needed(2)) {
        (Some(lru), Some(mrd)) if lru > 0 => {
            println!(
                "To reach a {:.0}% hit ratio: LRU needs {} per node, MRD needs {} — {:.0}% cache savings (paper: 63% for a 68% target)",
                target * 100.0,
                human_bytes(lru),
                human_bytes(mrd),
                (1.0 - mrd as f64 / lru as f64) * 100.0
            );
        }
        _ => println!("target hit ratio {target:.2} not reached in sweep"),
    }
}
