//! Task-scheduler scaling benchmark (ISSUE 4): measures end-to-end
//! simulation wall time under the two interchangeable schedulers as the
//! cluster grows, and writes each side to a machine-readable file:
//!
//! * `BENCH_sched_linear.json` — `linear`: the original per-task linear
//!   scans (`SimConfig::linear_sched`), including the full nodes×cores scan
//!   per task that delay scheduling performs.
//! * `BENCH_pr10.json` — `indexed`: the incrementally maintained
//!   [`SlotIndex`](refdist_cluster) ordered-set scheduler (the default).
//!
//! The workload is a wide iterative app — 8 partitions per node, so every
//! stage runs multiple task waves per node — with delay scheduling on and a
//! straggler injected, the regime where the linear global scan dominates
//! large clusters. Reports from both schedulers are asserted byte-identical
//! before any timing is recorded.
//!
//! `BENCH_pr10.json` additionally re-measures the `bench_cache` macro
//! protocol (`cc_sweep` on dense state, fault-free and chaotic) and the
//! `serve` suite (multi-tenant streams under fair-share scheduling and
//! equal-share quotas) so `ci.sh`'s regression guard can join them against
//! the checked-in `BENCH_pr9.json` from the same machine — the streaming
//! serve driver threads through the engine's admission/retirement hooks,
//! and this is the check that neither costs anything on the macro paths.
//!
//! A `serve_resilience` suite sweeps churn rate (off / mild / harsh MTBF)
//! against the admission policy (queue vs shed) over 1024-app resilient
//! streams: app-level retry with backoff, a bounded admission gate, and a
//! per-submission deadline. The fault-free cells price the resilience
//! control plane itself; the churned cells assert nonzero app retries (and
//! sheds, under the shedding gate) and record deterministic retry/shed/SLO
//! counts alongside wall time, so the guard pins behaviour as well as cost.
//!
//! An `admission` suite times the admission-planning path alone — build or
//! intern the template's local-space plan/profile, rebase to the
//! submission's offset, wrap the profiler — cold vs template-interned over
//! 1/4/16 distinct templates, and asserts the interned path amortizes to at
//! least 3x on the full run.
//!
//! A `serve_stream` suite measures the streaming serve driver itself:
//! Poisson app streams at several lengths and arrival rates, run both
//! through the lazy-admission/drain-then-retire streaming path and the
//! build-everything-upfront reference (asserted byte-identical first).
//! Each cell also records the slot arena's high-water mark (`peak_slots`),
//! so the regression guard gates O(active) memory alongside wall time.
//!
//! A `sim_throughput` suite times the *fully stacked* engine — dense
//! slot-indexed state + indexed scheduler + calendar event queue — against
//! the full reference configuration (`SimConfig::reference_state`: hash
//! state + linear scans + binary heap) on the same wide app under cache
//! pressure, with speculation exercising the event queue. Reports are
//! asserted byte-identical before timing. Outside `REFDIST_QUICK`, a
//! 1024-node mega row pushes ~a million tasks through the engine alone (the
//! reference path at that scale is minutes, not seconds).
//!
//! `REFDIST_QUICK=1` shrinks cluster sizes and repetitions for smoke runs
//! (the output files are still written).

use refdist_bench::{cache_for_fraction, ExpContext, PolicySpec};
use refdist_cluster::{
    AdmissionPolicy, ArrivalProcess, ClusterConfig, QuotaKind, ResilienceConfig, RunReport,
    ServeConfig, ServeReport, ServeSched, ServeSim, SimConfig, Simulation,
};
use refdist_core::ProfileMode;
use refdist_dag::{AppBuilder, AppPlan, AppSpec, StorageLevel};
use refdist_workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;

struct Record {
    suite: &'static str,
    bench: String,
    policy: String,
    blocks: usize,
    protocol: &'static str,
    metric: &'static str,
    value: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\"suite\":\"{}\",\"bench\":\"{}\",\"policy\":\"{}\",\"blocks\":{},\"protocol\":\"{}\",\"{}\":{:.2}}}",
            self.suite, self.bench, self.policy, self.blocks, self.protocol, self.metric, self.value
        )
    }
}

fn quick() -> bool {
    std::env::var("REFDIST_QUICK").is_ok_and(|v| v != "0")
}

/// A wide iterative app: 8 partitions per node, one cached dataset reused by
/// every job, so each stage schedules several task waves per node.
fn sched_app(nodes: u32) -> AppSpec {
    sched_app_jobs(nodes, 8)
}

fn sched_app_jobs(nodes: u32, jobs: usize) -> AppSpec {
    let parts = nodes * 8;
    let block = 256 * 1024;
    let mut b = AppBuilder::new("sched-bench");
    let input = b.input("in", parts, block, 2_000);
    let data = b.narrow("data", input, block, 5_000);
    b.persist(data, StorageLevel::MemoryAndDisk);
    for i in 0..jobs {
        let s = b.shuffle(format!("agg{i}"), &[data], parts, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

fn sched_cfg(nodes: u32, linear: bool) -> SimConfig {
    // A cache that holds the whole dataset keeps eviction churn out of the
    // measurement; the per-task costs left are scheduling and cache hits.
    let mut cfg = SimConfig::new(ClusterConfig::tiny(nodes, 1 << 40));
    cfg.cluster.cores_per_node = 4;
    // Delay scheduling is what makes the linear scheduler scan every slot in
    // the cluster per task; the straggler guarantees migrations happen.
    cfg.delay_scheduling_us = Some(5_000);
    cfg.faults.slow_node(0, 4.0);
    cfg.linear_sched = linear;
    cfg
}

/// Best-of-reps wall ms for one scheduler, plus the report for equivalence
/// checking (identical across reps — the simulation is deterministic).
fn time_sched(spec: &AppSpec, plan: &AppPlan, nodes: u32, linear: bool) -> (f64, RunReport) {
    // Best-of-15: contention on the recording machine comes in bursts of
    // seconds, so spreading more ms-scale reps across a longer window is
    // what makes the minimum a stable estimate of the quiet-machine time.
    let reps = if quick() { 1 } else { 15 };
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let cfg = sched_cfg(nodes, linear);
        let sim = Simulation::new(spec, plan, ProfileMode::Recurring, cfg);
        let mut lru = refdist_policies::PolicyKind::Lru.build();
        let start = Instant::now();
        let r = sim.run(&mut *lru);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (best_ms, report.expect("at least one rep"))
}

/// Full-stack throughput configuration: cache pressure (half the cached
/// footprint fits), delay scheduling, a straggler, and speculative
/// execution — so per-task state transitions, slot selection, eviction and
/// the per-stage completion-event queue are all on the measured path.
/// `reference` flips every subsystem to its reference implementation at
/// once: hash-backed block state, linear slot scans, binary-heap events.
fn throughput_cfg(spec: &AppSpec, nodes: u32, reference: bool) -> SimConfig {
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let mut cfg = SimConfig::new(ClusterConfig::tiny(
        nodes,
        (footprint / u64::from(nodes) / 2).max(1),
    ));
    cfg.cluster.cores_per_node = 4;
    cfg.delay_scheduling_us = Some(5_000);
    cfg.faults.slow_node(0, 4.0);
    cfg.faults.speculation_quantile = 0.75;
    cfg.reference_state = reference;
    cfg
}

/// Best-of-reps wall ms for one full-stack configuration.
fn time_throughput(
    spec: &AppSpec,
    plan: &AppPlan,
    nodes: u32,
    reference: bool,
    reps: usize,
) -> (f64, RunReport) {
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let cfg = throughput_cfg(spec, nodes, reference);
        let sim = Simulation::new(spec, plan, ProfileMode::Recurring, cfg);
        let mut lru = refdist_policies::PolicyKind::Lru.build();
        let start = Instant::now();
        let r = sim.run(&mut *lru);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (best_ms, report.expect("at least one rep"))
}

/// The `bench_cache` macro protocol on dense state, re-measured so
/// `BENCH_pr7.json` joins against `BENCH_pr6.json` from this machine.
fn time_macro(policy: PolicySpec, faults: refdist_cluster::FaultPlan) -> f64 {
    let mut ctx = ExpContext::main().quick();
    ctx.faults = faults;
    if quick() {
        ctx.params.partitions = 32;
        ctx.params.scale = 0.1;
    } else {
        ctx.params.partitions = 256;
        ctx.params.scale = 1.0;
    }
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.2).max(1);
    // Best-of-20: the macro rows take ~5 ms each and feed the 10% CI
    // regression gate, so precision is worth more than bench runtime here
    // (see `time_sched` on why more reps beat more runs).
    let reps = if quick() { 1 } else { 20 };
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        cfg.faults = ctx.faults.clone();
        let mut p = policy.build(None);
        let start = Instant::now();
        let report = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut *p);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(report);
    }
    best_ms
}

/// Multi-tenant serve baseline: `tenants` Poisson-arriving copies of the
/// macro workload share one cluster under fair-share scheduling and
/// equal-share quotas. Best-of-reps wall ms for the whole stream; the
/// `ServeSim` (plans, remapped profiles, arena) is built once and reused,
/// mirroring how the sweep engine amortizes per-workload artifacts.
fn time_serve(policy: PolicySpec, tenants: u32) -> f64 {
    let mut ctx = ExpContext::main().quick();
    if quick() {
        ctx.params.partitions = 32;
        ctx.params.scale = 0.1;
    } else {
        ctx.params.partitions = 128;
        ctx.params.scale = 0.5;
    }
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.2).max(1);
    let subs: Vec<(&AppSpec, u32)> = (0..tenants).map(|t| (&spec, t)).collect();
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim: SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed),
            arrivals: ArrivalProcess::Poisson {
                mean_gap_us: 500_000,
            },
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            // The legacy serve suite keeps measuring the upfront path so
            // its numbers stay comparable across bench baselines; the
            // serve_stream suite covers streaming.
            upfront: true,
            intern: true,
            resilience: Default::default(),
        },
    );
    let reps = if quick() { 1 } else { 20 };
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let policies = (0..tenants).map(|_| policy.build(None)).collect();
        let start = Instant::now();
        let report = serve.run(policies);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(report);
    }
    best_ms
}

/// A small two-job iterative app for long streams: cheap enough per
/// submission that four-digit streams are dominated by serve-driver
/// overhead (admission, retirement, arena recycling), not task simulation.
fn stream_app() -> AppSpec {
    let block = 64 * 1024;
    let mut b = AppBuilder::new("stream-app");
    let input = b.input("in", 4, block, 2_000);
    let data = b.narrow("data", input, block, 5_000);
    b.persist(data, StorageLevel::MemoryAndDisk);
    for i in 0..2 {
        let s = b.shuffle(format!("agg{i}"), &[data], 4, block / 8, 500);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

/// `k` structurally distinct variants of the stream app (partition count and
/// job count both vary), for admission benches over heterogeneous mixes.
fn admission_specs(k: usize) -> Vec<AppSpec> {
    (0..k)
        .map(|v| {
            let block = 64 * 1024;
            let parts = 4 + (v as u32 % 4);
            let jobs = 2 + v / 4;
            let mut b = AppBuilder::new(format!("adm-{v}"));
            let input = b.input("in", parts, block, 2_000);
            let data = b.narrow("data", input, block, 5_000);
            b.persist(data, StorageLevel::MemoryAndDisk);
            for i in 0..jobs {
                let s = b.shuffle(format!("agg{i}"), &[data], parts, block / 8, 500);
                b.action(format!("job{i}"), s);
            }
            b.build()
        })
        .collect()
}

/// Best-of-reps wall ms for one serve-stream cell, end to end: a fresh
/// `ServeSim` per rep, so each side pays its own planning model inside the
/// timed region — lazy per-admission planning for streaming, the combined
/// whole-stream build for upfront. That asymmetry is the measurement.
fn time_serve_stream(
    spec: &AppSpec,
    apps: u32,
    mean_gap_us: u64,
    upfront: bool,
) -> (f64, ServeReport) {
    let tenants = 4;
    let subs: Vec<(&AppSpec, u32)> = (0..apps).map(|i| (spec, i % tenants)).collect();
    let reps = if quick() { 1 } else { 5 };
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let mut sim = SimConfig::new(ClusterConfig::tiny(2, 512 * 1024));
        sim.seed = 42;
        sim.compute_jitter = 0.0;
        sim.exec_mem_fraction = 0.0;
        let policies = (0..apps)
            .map(|_| refdist_policies::PolicyKind::Lru.build())
            .collect();
        let start = Instant::now();
        let serve = ServeSim::new(
            &subs,
            ServeConfig {
                sim,
                arrivals: ArrivalProcess::Poisson { mean_gap_us },
                sched: ServeSched::FairShare,
                quota: QuotaKind::EqualShare,
                upfront,
                intern: true,
                resilience: Default::default(),
            },
        );
        let r = serve.run(policies);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (best_ms, report.expect("at least one rep"))
}

/// Best-of-reps wall ms for one resilient serve cell: the stream-app stream
/// under a non-passive [`ResilienceConfig`] (bounded admission, app-level
/// retry, a deadline), optionally with wall-clock node churn plus the
/// retry-exhausting task-fault storm from the serve x chaos tests. Uses
/// `run_with` — the retry path needs a fresh policy per admission attempt.
/// `mtbf_us == None` is the fault-free control: it prices the resilience
/// control plane itself (admission gate, deadline accounting) with zero
/// faults on the stream.
fn time_serve_resilience(
    spec: &AppSpec,
    apps: u32,
    mtbf_us: Option<u64>,
    admission: AdmissionPolicy,
) -> (f64, ServeReport) {
    let tenants = 4;
    let subs: Vec<(&AppSpec, u32)> = (0..apps).map(|i| (spec, i % tenants)).collect();
    let reps = if quick() { 1 } else { 5 };
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let mut sim = SimConfig::new(ClusterConfig::tiny(2, 512 * 1024));
        sim.seed = 42;
        sim.compute_jitter = 0.0;
        sim.exec_mem_fraction = 0.0;
        if let Some(mtbf) = mtbf_us {
            // Task faults with a tight attempt budget are what hand the
            // app-level retry path real work; churn drives recovery churn
            // (cold rejoins, migrations) on top.
            sim.faults.task_failure_p = 0.02;
            sim.faults.max_task_attempts = 2;
            sim.faults.node_churn(mtbf, mtbf / 4);
        }
        let start = Instant::now();
        let serve = ServeSim::new(
            &subs,
            ServeConfig {
                sim,
                arrivals: ArrivalProcess::Poisson { mean_gap_us: 40_000 },
                sched: ServeSched::FairShare,
                quota: QuotaKind::EqualShare,
                upfront: false,
                intern: true,
                resilience: ResilienceConfig {
                    max_app_attempts: 3,
                    retry_backoff_us: 10_000,
                    max_retry_backoff_us: 80_000,
                    admission,
                    max_active_apps: Some(8),
                    queue_cap: Some(16),
                    deadline_us: Some(2_000_000),
                },
            },
        );
        let r = serve.run_with(|_| refdist_policies::PolicyKind::Lru.build());
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (best_ms, report.expect("at least one rep"))
}

/// Best-of-reps wall ms for the admission-planning path alone over a
/// submission stream cycling through `specs`: build (or intern) the
/// local-space plan/profile, rebase both to the submission's offset, and
/// wrap the profiler — exactly what the streaming serve driver does at each
/// arrival event, minus the simulation itself.
fn time_admission(specs: &[AppSpec], apps: u32, interned: bool) -> f64 {
    use refdist_core::AppProfiler;
    use refdist_dag::{remap_plan, remap_profile, PlannedTemplate, TemplateCache};
    use std::sync::Arc;
    let reps = if quick() { 3 } else { 15 };
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut cache = TemplateCache::new();
        let start = Instant::now();
        let mut off = 0u32;
        for i in 0..apps {
            let spec = &specs[i as usize % specs.len()];
            let tpl = if interned {
                cache.intern(spec)
            } else {
                Arc::new(PlannedTemplate::build(spec))
            };
            let plan = remap_plan(&tpl.plan, off);
            let profiler =
                AppProfiler::from_shared(spec.name.clone(), remap_profile(&tpl.profile, off));
            std::hint::black_box((&plan, &profiler));
            off += spec.rdds.len() as u32;
        }
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best_ms
}

fn main() {
    let mut linear_records: Vec<Record> = Vec::new();
    let mut indexed_records: Vec<Record> = Vec::new();

    let node_counts: &[u32] = if quick() { &[8, 32] } else { &[8, 32, 128, 256] };

    println!("== sched: wide app, delay scheduling on (ms, lower is better) ==");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>9}",
        "nodes", "tasks", "linear", "indexed", "speedup"
    );
    for &nodes in node_counts {
        let spec = sched_app(nodes);
        let plan = AppPlan::build(&spec);
        let (linear_ms, linear_report) = time_sched(&spec, &plan, nodes, true);
        let (indexed_ms, indexed_report) = time_sched(&spec, &plan, nodes, false);
        assert_eq!(
            format!("{linear_report:?}"),
            format!("{indexed_report:?}"),
            "schedulers disagree at {nodes} nodes"
        );
        assert!(
            linear_report.sched.remote_placements > 0,
            "no migrations at {nodes} nodes — the global-scan path went unmeasured"
        );
        println!(
            "{:<8} {:>8} {:>9.1} ms {:>9.1} ms {:>8.2}x",
            nodes,
            linear_report.tasks,
            linear_ms,
            indexed_ms,
            linear_ms / indexed_ms
        );
        for (out, protocol, value) in [
            (&mut linear_records, "linear", linear_ms),
            (&mut indexed_records, "indexed", indexed_ms),
        ] {
            out.push(Record {
                suite: "sched",
                bench: "task_placement".into(),
                policy: "LRU".into(),
                blocks: nodes as usize,
                protocol,
                metric: "ms_total",
                value,
            });
        }
    }

    println!();
    println!("== sim_throughput: full reference stack vs full engine (ms) ==");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>9}",
        "nodes", "tasks", "reference", "engine", "speedup"
    );
    let tp_nodes: &[u32] = if quick() { &[8] } else { &[64, 128] };
    for &nodes in tp_nodes {
        let spec = sched_app(nodes);
        let plan = AppPlan::build(&spec);
        let reps = if quick() { 1 } else { 8 };
        let (ref_ms, ref_report) = time_throughput(&spec, &plan, nodes, true, reps);
        let (eng_ms, eng_report) = time_throughput(&spec, &plan, nodes, false, reps);
        assert_eq!(
            format!("{ref_report:?}"),
            format!("{eng_report:?}"),
            "reference and engine stacks disagree at {nodes} nodes"
        );
        println!(
            "{:<8} {:>8} {:>9.1} ms {:>9.1} ms {:>8.2}x",
            nodes,
            eng_report.tasks,
            ref_ms,
            eng_ms,
            ref_ms / eng_ms
        );
        // Distinct bench names: the regression guard joins on
        // (suite, bench, policy, blocks) and must track each stack apart.
        for (bench, value) in [("wide_app_ref", ref_ms), ("wide_app", eng_ms)] {
            indexed_records.push(Record {
                suite: "sim_throughput",
                bench: bench.into(),
                policy: "LRU".into(),
                blocks: nodes as usize,
                protocol: if bench == "wide_app" { "engine" } else { "reference" },
                metric: "ms_total",
                value,
            });
        }
    }
    if !quick() {
        // Mega smoke: ~a million tasks through the engine alone. The point
        // is that the calendar queue and dense task records keep per-task
        // cost flat at a scale where the reference stack is O(minutes).
        let nodes = 1024;
        let spec = sched_app_jobs(nodes, 60);
        let plan = AppPlan::build(&spec);
        let (eng_ms, eng_report) = time_throughput(&spec, &plan, nodes, false, 1);
        println!(
            "{:<8} {:>8} {:>12} {:>9.1} ms ({:.2} us/task)",
            nodes,
            eng_report.tasks,
            "(engine only)",
            eng_ms,
            eng_ms * 1e3 / eng_report.tasks as f64
        );
        indexed_records.push(Record {
            suite: "sim_throughput",
            bench: "mega".into(),
            policy: "LRU".into(),
            blocks: nodes as usize,
            protocol: "engine",
            metric: "ms_total",
            value: eng_ms,
        });
    }

    println!();
    println!("== macro: ConnectedComponents @ 20% cache, dense (ms) ==");
    for policy in [PolicySpec::Lru, PolicySpec::MrdFull] {
        let ms = time_macro(policy, refdist_cluster::FaultPlan::default());
        println!("{:<10} {:>9.0} ms", policy.name(), ms);
        indexed_records.push(Record {
            suite: "macro",
            bench: "cc_sweep".into(),
            policy: policy.name().into(),
            blocks: 0,
            protocol: "indexed",
            metric: "ms_total",
            value: ms,
        });
    }

    println!();
    println!("== macro: same run under FaultPlan::chaos(0.05) (ms) ==");
    {
        let ms = time_macro(PolicySpec::Lru, refdist_cluster::FaultPlan::chaos(0.05));
        println!("{:<10} {:>9.0} ms", "LRU", ms);
        // Distinct bench name: bench_diff joins on (suite, bench, policy,
        // blocks), and this run must not shadow the fault-free record.
        indexed_records.push(Record {
            suite: "macro",
            bench: "cc_sweep_chaos".into(),
            policy: "LRU".into(),
            blocks: 0,
            protocol: "chaos",
            metric: "ms_total",
            value: ms,
        });
    }

    println!();
    println!("== serve: multi-tenant CC streams, fair-share + equal-share quota (ms) ==");
    for (policy, tenants) in [
        (PolicySpec::Lru, 3u32),
        (PolicySpec::MrdFull, 3),
        (PolicySpec::Lru, 6),
    ] {
        let ms = time_serve(policy, tenants);
        println!("{:<10} x{:<3} {:>9.0} ms", policy.name(), tenants, ms);
        // First baselined in BENCH_pr6.json; from this PR on the guard joins
        // these rows, covering the EventQueue-driven serve selection loop.
        indexed_records.push(Record {
            suite: "serve",
            bench: "cc_stream".into(),
            policy: policy.name().into(),
            blocks: tenants as usize,
            protocol: "fair-share",
            metric: "ms_total",
            value: ms,
        });
    }

    println!();
    println!("== serve_stream: Poisson app streams, streaming vs upfront (ms) ==");
    println!(
        "{:<6} {:>7} {:>11} {:>11} {:>7} {:>7} {:>7} {:>10}",
        "apps", "gap ms", "upfront", "streaming", "ratio", "arena", "active", "us/sub"
    );
    let stream_spec = stream_app();
    let stream_cells: &[(u32, u64, &str, &str, &str)] = if quick() {
        &[(64, 20_000, "stream_gap20", "upfront_gap20", "arena_gap20")]
    } else {
        // Mean gaps sit at and above the two-node cluster's service rate:
        // 40 ms is near-critical load (about ten submissions live at once),
        // 80 ms is moderate. Gaps *below* the service rate would make the
        // open queue unstable — the backlog, and with it the arena, would
        // rightly grow with stream length and measure queueing, not serving.
        &[
            (256, 80_000, "stream_gap80", "upfront_gap80", "arena_gap80"),
            (1024, 80_000, "stream_gap80", "upfront_gap80", "arena_gap80"),
            (1024, 40_000, "stream_gap40", "upfront_gap40", "arena_gap40"),
        ]
    };
    for &(apps, gap_us, stream_bench, upfront_bench, arena_bench) in stream_cells {
        let (up_ms, up) = time_serve_stream(&stream_spec, apps, gap_us, true);
        let (st_ms, st) = time_serve_stream(&stream_spec, apps, gap_us, false);
        assert_eq!(
            format!("{:?}", up.reports),
            format!("{:?}", st.reports),
            "streaming and upfront disagree at {apps} apps / {gap_us} us gap"
        );
        assert_eq!(up.summary(), st.summary());
        // The O(active) claim, checked where it is measured: the streaming
        // arena's high-water mark tracks peak concurrency while the
        // upfront arena holds the whole stream. Short quick-mode streams
        // never get far ahead of their own concurrency, so the strict
        // bound only applies at real stream lengths.
        let bound = if apps >= 256 {
            up.peak_arena_slots / 4
        } else {
            up.peak_arena_slots
        };
        assert!(
            st.peak_arena_slots < bound,
            "streaming arena {} slots vs upfront {} at {apps} apps",
            st.peak_arena_slots,
            up.peak_arena_slots
        );
        println!(
            "{:<6} {:>7} {:>8.1} ms {:>8.1} ms {:>6.2}x {:>7} {:>7} {:>10.1}",
            apps,
            gap_us / 1_000,
            up_ms,
            st_ms,
            up_ms / st_ms,
            st.peak_arena_slots,
            st.peak_active_apps,
            st_ms * 1e3 / f64::from(apps)
        );
        // Streaming and upfront get distinct bench names: the regression
        // guard joins on (suite, bench, policy, blocks) and must track the
        // two drivers apart; the arena row gates space, not time.
        for (bench, metric, value) in [
            (stream_bench, "ms_total", st_ms),
            (upfront_bench, "ms_total", up_ms),
            (arena_bench, "peak_slots", st.peak_arena_slots as f64),
        ] {
            indexed_records.push(Record {
                suite: "serve_stream",
                bench: bench.into(),
                policy: "LRU".into(),
                blocks: apps as usize,
                protocol: if bench == upfront_bench { "upfront" } else { "streaming" },
                metric,
                value,
            });
        }
    }

    println!();
    println!("== serve_resilience: churn rate x admission policy, resilient streams (ms) ==");
    println!(
        "{:<12} {:>10} {:>6} {:>11} {:>8} {:>6} {:>6} {:>10}",
        "cell", "mtbf ms", "apps", "wall", "retries", "shed", "degr", "slo"
    );
    let resil_apps: u32 = if quick() { 64 } else { 1024 };
    let resil_cells: &[(&str, Option<u64>, AdmissionPolicy)] = &[
        ("ff_queue", None, AdmissionPolicy::Queue),
        ("ff_shed", None, AdmissionPolicy::Shed),
        ("mild_queue", Some(800_000), AdmissionPolicy::Queue),
        ("mild_shed", Some(800_000), AdmissionPolicy::Shed),
        ("harsh_queue", Some(400_000), AdmissionPolicy::Queue),
        ("harsh_shed", Some(400_000), AdmissionPolicy::Shed),
    ];
    for &(bench, mtbf_us, admission) in resil_cells {
        let (ms, report) = time_serve_resilience(&stream_spec, resil_apps, mtbf_us, admission);
        let res = report
            .resilience
            .as_ref()
            .expect("a non-passive config always reports resilience");
        // Per-tenant SLO attainment: shed submissions count as misses, so
        // met + missed covers the whole stream when a deadline is set.
        let tenants = 4usize;
        let mut met = vec![0u64; tenants];
        let mut total = vec![0u64; tenants];
        for i in 0..report.reports.len() {
            let t = report.tenants[i] as usize;
            if let Some(ok) = res.met_deadline(i, report.arrivals[i], report.completions[i]) {
                total[t] += 1;
                if ok {
                    met[t] += 1;
                }
            }
        }
        let slo_met: u64 = met.iter().sum();
        let slo_total: u64 = total.iter().sum();
        println!(
            "{:<12} {:>10} {:>6} {:>8.1} ms {:>8} {:>6} {:>6} {:>6}/{}",
            bench,
            mtbf_us.map_or("-".into(), |m| (m / 1_000).to_string()),
            resil_apps,
            ms,
            res.total_retries(),
            res.shed_count(),
            res.degraded_count(),
            slo_met,
            slo_total
        );
        // The churned cells must exercise the machinery they price: the
        // fault storm has to force app-level retries, and under a shedding
        // gate the recovery backlog has to push arrivals past the cap.
        // Quick mode's short streams stay unasserted.
        if !quick() && mtbf_us.is_some() {
            assert!(
                res.total_retries() > 0,
                "{bench}: churned stream saw no app-level retries"
            );
            if admission == AdmissionPolicy::Shed {
                assert!(
                    res.shed_count() > 0,
                    "{bench}: churned shedding stream shed nothing"
                );
            }
        }
        indexed_records.push(Record {
            suite: "serve_resilience",
            bench: bench.into(),
            policy: "LRU".into(),
            blocks: resil_apps as usize,
            protocol: if mtbf_us.is_some() { "churn" } else { "fault-free" },
            metric: "ms_total",
            value: ms,
        });
        // Deterministic resilience accounting (fixed seed, deterministic
        // engine): recorded as machine-independent count rows so the guard
        // also pins the fault/retry/SLO behaviour, not just the wall time.
        if mtbf_us.is_some() {
            for (suffix, value) in [
                ("retries", res.total_retries() as f64),
                ("shed", res.shed_count() as f64),
                ("slo_met", slo_met as f64),
            ] {
                indexed_records.push(Record {
                    suite: "serve_resilience",
                    bench: format!("{bench}_{suffix}"),
                    policy: "LRU".into(),
                    blocks: resil_apps as usize,
                    protocol: "churn",
                    metric: "count",
                    value,
                });
            }
        }
    }

    println!();
    println!("== admission: cold replan vs template-interned (us/submission) ==");
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>9}",
        "templates", "apps", "cold", "interned", "speedup"
    );
    let adm_apps: u32 = if quick() { 256 } else { 1024 };
    for &k in &[1usize, 4, 16] {
        let specs = admission_specs(k);
        let cold_ms = time_admission(&specs, adm_apps, false);
        let hot_ms = time_admission(&specs, adm_apps, true);
        let speedup = cold_ms / hot_ms;
        println!(
            "{:<10} {:>6} {:>9.2} us {:>9.2} us {:>8.2}x",
            k,
            adm_apps,
            cold_ms * 1e3 / f64::from(adm_apps),
            hot_ms * 1e3 / f64::from(adm_apps),
            speedup
        );
        // The acceptance bar: on repeated templates, interned admission must
        // amortize to at least 3x over replanning each submission. Quick
        // mode's short stream and few reps make the ratio noisy, so the bar
        // only gates the recorded full run.
        if !quick() {
            assert!(
                speedup >= 3.0,
                "interned admission only {speedup:.2}x over cold at {k} templates"
            );
        }
        let bench = match k {
            1 => "tpl1",
            4 => "tpl4",
            _ => "tpl16",
        };
        for (protocol, value) in [("cold", cold_ms), ("interned", hot_ms)] {
            indexed_records.push(Record {
                suite: "admission",
                bench: bench.into(),
                policy: "LRU".into(),
                blocks: adm_apps as usize,
                protocol,
                metric: "us_per_sub",
                value: value * 1e3 / f64::from(adm_apps),
            });
        }
    }

    for (path, records) in [
        ("BENCH_sched_linear.json", &linear_records),
        ("BENCH_pr10.json", &indexed_records),
    ] {
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            let sep = if i + 1 == records.len() { "\n" } else { ",\n" };
            let _ = write!(out, "{}{}", r.to_json(), sep);
        }
        out.push_str("]\n");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path} ({} records)", records.len());
    }
}
