//! Task-scheduler scaling benchmark (ISSUE 4): measures end-to-end
//! simulation wall time under the two interchangeable schedulers as the
//! cluster grows, and writes each side to a machine-readable file:
//!
//! * `BENCH_sched_linear.json` — `linear`: the original per-task linear
//!   scans (`SimConfig::linear_sched`), including the full nodes×cores scan
//!   per task that delay scheduling performs.
//! * `BENCH_pr7.json` — `indexed`: the incrementally maintained
//!   [`SlotIndex`](refdist_cluster) ordered-set scheduler (the default).
//!
//! The workload is a wide iterative app — 8 partitions per node, so every
//! stage runs multiple task waves per node — with delay scheduling on and a
//! straggler injected, the regime where the linear global scan dominates
//! large clusters. Reports from both schedulers are asserted byte-identical
//! before any timing is recorded.
//!
//! `BENCH_pr7.json` additionally re-measures the `bench_cache` macro
//! protocol (`cc_sweep` on dense state, fault-free and chaotic) and the
//! `serve` suite (multi-tenant streams under fair-share scheduling and
//! equal-share quotas) so `ci.sh`'s regression guard can join them against
//! the checked-in `BENCH_pr6.json` from the same machine — the calendar
//! event queue and the struct-of-arrays task records thread through the
//! task hot loop and the serve driver, and this is the check that neither
//! costs anything on the macro paths.
//!
//! A `sim_throughput` suite times the *fully stacked* engine — dense
//! slot-indexed state + indexed scheduler + calendar event queue — against
//! the full reference configuration (`SimConfig::reference_state`: hash
//! state + linear scans + binary heap) on the same wide app under cache
//! pressure, with speculation exercising the event queue. Reports are
//! asserted byte-identical before timing. Outside `REFDIST_QUICK`, a
//! 1024-node mega row pushes ~a million tasks through the engine alone (the
//! reference path at that scale is minutes, not seconds).
//!
//! `REFDIST_QUICK=1` shrinks cluster sizes and repetitions for smoke runs
//! (the output files are still written).

use refdist_bench::{cache_for_fraction, ExpContext, PolicySpec};
use refdist_cluster::{
    ArrivalProcess, ClusterConfig, QuotaKind, RunReport, ServeConfig, ServeSched, ServeSim,
    SimConfig, Simulation,
};
use refdist_core::ProfileMode;
use refdist_dag::{AppBuilder, AppPlan, AppSpec, StorageLevel};
use refdist_workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;

struct Record {
    suite: &'static str,
    bench: &'static str,
    policy: String,
    blocks: usize,
    protocol: &'static str,
    metric: &'static str,
    value: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\"suite\":\"{}\",\"bench\":\"{}\",\"policy\":\"{}\",\"blocks\":{},\"protocol\":\"{}\",\"{}\":{:.2}}}",
            self.suite, self.bench, self.policy, self.blocks, self.protocol, self.metric, self.value
        )
    }
}

fn quick() -> bool {
    std::env::var("REFDIST_QUICK").is_ok_and(|v| v != "0")
}

/// A wide iterative app: 8 partitions per node, one cached dataset reused by
/// every job, so each stage schedules several task waves per node.
fn sched_app(nodes: u32) -> AppSpec {
    sched_app_jobs(nodes, 8)
}

fn sched_app_jobs(nodes: u32, jobs: usize) -> AppSpec {
    let parts = nodes * 8;
    let block = 256 * 1024;
    let mut b = AppBuilder::new("sched-bench");
    let input = b.input("in", parts, block, 2_000);
    let data = b.narrow("data", input, block, 5_000);
    b.persist(data, StorageLevel::MemoryAndDisk);
    for i in 0..jobs {
        let s = b.shuffle(format!("agg{i}"), &[data], parts, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

fn sched_cfg(nodes: u32, linear: bool) -> SimConfig {
    // A cache that holds the whole dataset keeps eviction churn out of the
    // measurement; the per-task costs left are scheduling and cache hits.
    let mut cfg = SimConfig::new(ClusterConfig::tiny(nodes, 1 << 40));
    cfg.cluster.cores_per_node = 4;
    // Delay scheduling is what makes the linear scheduler scan every slot in
    // the cluster per task; the straggler guarantees migrations happen.
    cfg.delay_scheduling_us = Some(5_000);
    cfg.faults.slow_node(0, 4.0);
    cfg.linear_sched = linear;
    cfg
}

/// Best-of-reps wall ms for one scheduler, plus the report for equivalence
/// checking (identical across reps — the simulation is deterministic).
fn time_sched(spec: &AppSpec, plan: &AppPlan, nodes: u32, linear: bool) -> (f64, RunReport) {
    let reps = if quick() { 1 } else { 5 };
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let cfg = sched_cfg(nodes, linear);
        let sim = Simulation::new(spec, plan, ProfileMode::Recurring, cfg);
        let mut lru = refdist_policies::PolicyKind::Lru.build();
        let start = Instant::now();
        let r = sim.run(&mut *lru);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (best_ms, report.expect("at least one rep"))
}

/// Full-stack throughput configuration: cache pressure (half the cached
/// footprint fits), delay scheduling, a straggler, and speculative
/// execution — so per-task state transitions, slot selection, eviction and
/// the per-stage completion-event queue are all on the measured path.
/// `reference` flips every subsystem to its reference implementation at
/// once: hash-backed block state, linear slot scans, binary-heap events.
fn throughput_cfg(spec: &AppSpec, nodes: u32, reference: bool) -> SimConfig {
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let mut cfg = SimConfig::new(ClusterConfig::tiny(
        nodes,
        (footprint / u64::from(nodes) / 2).max(1),
    ));
    cfg.cluster.cores_per_node = 4;
    cfg.delay_scheduling_us = Some(5_000);
    cfg.faults.slow_node(0, 4.0);
    cfg.faults.speculation_quantile = 0.75;
    cfg.reference_state = reference;
    cfg
}

/// Best-of-reps wall ms for one full-stack configuration.
fn time_throughput(
    spec: &AppSpec,
    plan: &AppPlan,
    nodes: u32,
    reference: bool,
    reps: usize,
) -> (f64, RunReport) {
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let cfg = throughput_cfg(spec, nodes, reference);
        let sim = Simulation::new(spec, plan, ProfileMode::Recurring, cfg);
        let mut lru = refdist_policies::PolicyKind::Lru.build();
        let start = Instant::now();
        let r = sim.run(&mut *lru);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    (best_ms, report.expect("at least one rep"))
}

/// The `bench_cache` macro protocol on dense state, re-measured so
/// `BENCH_pr7.json` joins against `BENCH_pr6.json` from this machine.
fn time_macro(policy: PolicySpec, faults: refdist_cluster::FaultPlan) -> f64 {
    let mut ctx = ExpContext::main().quick();
    ctx.faults = faults;
    if quick() {
        ctx.params.partitions = 32;
        ctx.params.scale = 0.1;
    } else {
        ctx.params.partitions = 256;
        ctx.params.scale = 1.0;
    }
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.2).max(1);
    // Best-of-10: the macro rows take ~5 ms each and feed the 10% CI
    // regression gate, so precision is worth more than bench runtime here.
    let reps = if quick() { 1 } else { 10 };
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        cfg.faults = ctx.faults.clone();
        let mut p = policy.build(None);
        let start = Instant::now();
        let report = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut *p);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(report);
    }
    best_ms
}

/// Multi-tenant serve baseline: `tenants` Poisson-arriving copies of the
/// macro workload share one cluster under fair-share scheduling and
/// equal-share quotas. Best-of-reps wall ms for the whole stream; the
/// `ServeSim` (plans, remapped profiles, arena) is built once and reused,
/// mirroring how the sweep engine amortizes per-workload artifacts.
fn time_serve(policy: PolicySpec, tenants: u32) -> f64 {
    let mut ctx = ExpContext::main().quick();
    if quick() {
        ctx.params.partitions = 32;
        ctx.params.scale = 0.1;
    } else {
        ctx.params.partitions = 128;
        ctx.params.scale = 0.5;
    }
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.2).max(1);
    let subs: Vec<(&AppSpec, u32)> = (0..tenants).map(|t| (&spec, t)).collect();
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim: SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed),
            arrivals: ArrivalProcess::Poisson {
                mean_gap_us: 500_000,
            },
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
        },
    );
    let reps = if quick() { 1 } else { 10 };
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let policies = (0..tenants).map(|_| policy.build(None)).collect();
        let start = Instant::now();
        let report = serve.run(policies);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(report);
    }
    best_ms
}

fn main() {
    let mut linear_records: Vec<Record> = Vec::new();
    let mut indexed_records: Vec<Record> = Vec::new();

    let node_counts: &[u32] = if quick() { &[8, 32] } else { &[8, 32, 128, 256] };

    println!("== sched: wide app, delay scheduling on (ms, lower is better) ==");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>9}",
        "nodes", "tasks", "linear", "indexed", "speedup"
    );
    for &nodes in node_counts {
        let spec = sched_app(nodes);
        let plan = AppPlan::build(&spec);
        let (linear_ms, linear_report) = time_sched(&spec, &plan, nodes, true);
        let (indexed_ms, indexed_report) = time_sched(&spec, &plan, nodes, false);
        assert_eq!(
            format!("{linear_report:?}"),
            format!("{indexed_report:?}"),
            "schedulers disagree at {nodes} nodes"
        );
        assert!(
            linear_report.sched.remote_placements > 0,
            "no migrations at {nodes} nodes — the global-scan path went unmeasured"
        );
        println!(
            "{:<8} {:>8} {:>9.1} ms {:>9.1} ms {:>8.2}x",
            nodes,
            linear_report.tasks,
            linear_ms,
            indexed_ms,
            linear_ms / indexed_ms
        );
        for (out, protocol, value) in [
            (&mut linear_records, "linear", linear_ms),
            (&mut indexed_records, "indexed", indexed_ms),
        ] {
            out.push(Record {
                suite: "sched",
                bench: "task_placement",
                policy: "LRU".into(),
                blocks: nodes as usize,
                protocol,
                metric: "ms_total",
                value,
            });
        }
    }

    println!();
    println!("== sim_throughput: full reference stack vs full engine (ms) ==");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>9}",
        "nodes", "tasks", "reference", "engine", "speedup"
    );
    let tp_nodes: &[u32] = if quick() { &[8] } else { &[64, 128] };
    for &nodes in tp_nodes {
        let spec = sched_app(nodes);
        let plan = AppPlan::build(&spec);
        let reps = if quick() { 1 } else { 3 };
        let (ref_ms, ref_report) = time_throughput(&spec, &plan, nodes, true, reps);
        let (eng_ms, eng_report) = time_throughput(&spec, &plan, nodes, false, reps);
        assert_eq!(
            format!("{ref_report:?}"),
            format!("{eng_report:?}"),
            "reference and engine stacks disagree at {nodes} nodes"
        );
        println!(
            "{:<8} {:>8} {:>9.1} ms {:>9.1} ms {:>8.2}x",
            nodes,
            eng_report.tasks,
            ref_ms,
            eng_ms,
            ref_ms / eng_ms
        );
        // Distinct bench names: the regression guard joins on
        // (suite, bench, policy, blocks) and must track each stack apart.
        for (bench, value) in [("wide_app_ref", ref_ms), ("wide_app", eng_ms)] {
            indexed_records.push(Record {
                suite: "sim_throughput",
                bench,
                policy: "LRU".into(),
                blocks: nodes as usize,
                protocol: if bench == "wide_app" { "engine" } else { "reference" },
                metric: "ms_total",
                value,
            });
        }
    }
    if !quick() {
        // Mega smoke: ~a million tasks through the engine alone. The point
        // is that the calendar queue and dense task records keep per-task
        // cost flat at a scale where the reference stack is O(minutes).
        let nodes = 1024;
        let spec = sched_app_jobs(nodes, 60);
        let plan = AppPlan::build(&spec);
        let (eng_ms, eng_report) = time_throughput(&spec, &plan, nodes, false, 1);
        println!(
            "{:<8} {:>8} {:>12} {:>9.1} ms ({:.2} us/task)",
            nodes,
            eng_report.tasks,
            "(engine only)",
            eng_ms,
            eng_ms * 1e3 / eng_report.tasks as f64
        );
        indexed_records.push(Record {
            suite: "sim_throughput",
            bench: "mega",
            policy: "LRU".into(),
            blocks: nodes as usize,
            protocol: "engine",
            metric: "ms_total",
            value: eng_ms,
        });
    }

    println!();
    println!("== macro: ConnectedComponents @ 20% cache, dense (ms) ==");
    for policy in [PolicySpec::Lru, PolicySpec::MrdFull] {
        let ms = time_macro(policy, refdist_cluster::FaultPlan::default());
        println!("{:<10} {:>9.0} ms", policy.name(), ms);
        indexed_records.push(Record {
            suite: "macro",
            bench: "cc_sweep",
            policy: policy.name().into(),
            blocks: 0,
            protocol: "indexed",
            metric: "ms_total",
            value: ms,
        });
    }

    println!();
    println!("== macro: same run under FaultPlan::chaos(0.05) (ms) ==");
    {
        let ms = time_macro(PolicySpec::Lru, refdist_cluster::FaultPlan::chaos(0.05));
        println!("{:<10} {:>9.0} ms", "LRU", ms);
        // Distinct bench name: bench_diff joins on (suite, bench, policy,
        // blocks), and this run must not shadow the fault-free record.
        indexed_records.push(Record {
            suite: "macro",
            bench: "cc_sweep_chaos",
            policy: "LRU".into(),
            blocks: 0,
            protocol: "chaos",
            metric: "ms_total",
            value: ms,
        });
    }

    println!();
    println!("== serve: multi-tenant CC streams, fair-share + equal-share quota (ms) ==");
    for (policy, tenants) in [
        (PolicySpec::Lru, 3u32),
        (PolicySpec::MrdFull, 3),
        (PolicySpec::Lru, 6),
    ] {
        let ms = time_serve(policy, tenants);
        println!("{:<10} x{:<3} {:>9.0} ms", policy.name(), tenants, ms);
        // First baselined in BENCH_pr6.json; from this PR on the guard joins
        // these rows, covering the EventQueue-driven serve selection loop.
        indexed_records.push(Record {
            suite: "serve",
            bench: "cc_stream",
            policy: policy.name().into(),
            blocks: tenants as usize,
            protocol: "fair-share",
            metric: "ms_total",
            value: ms,
        });
    }

    for (path, records) in [
        ("BENCH_sched_linear.json", &linear_records),
        ("BENCH_pr7.json", &indexed_records),
    ] {
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            let sep = if i + 1 == records.len() { "\n" } else { ",\n" };
            let _ = write!(out, "{}{}", r.to_json(), sep);
        }
        out.push_str("]\n");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path} ({} records)", records.len());
    }
}
