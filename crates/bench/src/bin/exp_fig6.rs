//! Figure 6 — Comparison to the MemTune policy on the MemTune cluster
//! (6 nodes, 8 vCPU, 1 Gbps — System G equivalents).
//!
//! Paper: MRD beats MemTune by up to 68% (PageRank) and ~33% on average;
//! LogisticRegression is the one workload with a slight MRD disadvantage
//! (low reference distances leave MRD nothing to exploit).

use refdist_bench::{par_map, sweep, ExpContext, PolicySpec, SWEEP_FRACTIONS};
use refdist_core::ProfileMode;
use refdist_metrics::{Summary, TextTable};
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::memtune().from_env();
    let workloads = [
        Workload::PageRank,
        Workload::LogisticRegression,
        Workload::KMeans,
        Workload::TriangleCount,
        Workload::ConnectedComponents,
        Workload::SvdPlusPlus,
    ];
    let policies = [PolicySpec::Lru, PolicySpec::MemTune, PolicySpec::MrdFull];

    let rows = par_map(&workloads, |w| {
        let pts = sweep(w, &ctx, SWEEP_FRACTIONS, &policies, ProfileMode::Recurring);
        let mut best_mt = f64::INFINITY;
        let mut best_mrd = f64::INFINITY;
        for p in &pts {
            let lru = &p.reports[0];
            best_mt = best_mt.min(p.reports[1].normalized_jct(lru));
            best_mrd = best_mrd.min(p.reports[2].normalized_jct(lru));
        }
        (w, best_mt, best_mrd)
    });

    println!("Figure 6: MRD vs MemTune (normalized JCT vs LRU, MemTune cluster)\n");
    let mut t = TextTable::new(["Workload", "MemTune", "MRD", "MRD vs MemTune improvement"]);
    let mut improvements = vec![];
    for (w, mt, mrd) in &rows {
        let imp = 1.0 - mrd / mt;
        improvements.push(imp);
        t.row([
            w.short_name().to_string(),
            format!("{mt:.2}"),
            format!("{mrd:.2}"),
            format!("{:.0}%", imp * 100.0),
        ]);
    }
    println!("{}", t.render());
    let s = Summary::of(&improvements).unwrap();
    println!(
        "MRD improves on MemTune by up to {:.0}% and {:.0}% on average (paper: up to 68%, avg 33%)",
        s.max * 100.0,
        s.mean * 100.0
    );
}
