//! Figure 4 — Best performance of MRD against LRU on the Main cluster.
//!
//! For every SparkBench workload: sweep cache sizes, and report the best
//! (lowest) JCT of each MRD mode normalized against LRU at the same cache
//! size — exactly the paper's methodology ("executed each workload with
//! several cache sizes ... best overall performance gain for each
//! workload-cache combination"). Also reports the cache hit ratios of LRU
//! and full MRD at full MRD's best point.
//!
//! Paper headline: eviction-only 62% of LRU's JCT on average, prefetch-only
//! 67%, full MRD 53% (as low as 20% for SCC, as high as 88% for DT).

use refdist_bench::{par_map, sweep, ExpContext, PolicySpec, SWEEP_FRACTIONS};
use refdist_core::ProfileMode;
use refdist_metrics::{geomean, BarChart, Summary, TextTable};
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::main().from_env();
    let policies = [
        PolicySpec::Lru,
        PolicySpec::MrdEvict,
        PolicySpec::MrdPrefetch,
        PolicySpec::MrdFull,
    ];

    let rows = par_map(Workload::sparkbench(), |w| {
        let pts = sweep(w, &ctx, SWEEP_FRACTIONS, &policies, ProfileMode::Recurring);
        // Best normalized JCT per MRD mode (against LRU at the same point).
        let mut best = [f64::INFINITY; 3];
        let mut best_hits = (1.0, 1.0); // (lru, full mrd) at full MRD's best
        for p in &pts {
            let lru = &p.reports[0];
            for (k, r) in p.reports[1..].iter().enumerate() {
                let norm = r.normalized_jct(lru);
                if norm < best[k] {
                    best[k] = norm;
                    if k == 2 {
                        best_hits = (lru.hit_ratio(), r.hit_ratio());
                    }
                }
            }
        }
        (w, best, best_hits)
    });

    println!("Figure 4: Normalized JCT vs LRU (best cache point per mode)\n");
    let mut t = TextTable::new([
        "Workload",
        "Evict-only",
        "Prefetch-only",
        "Full MRD",
        "LRU hit%",
        "MRD hit%",
        "JobType",
    ]);
    let (mut e, mut p, mut f) = (vec![], vec![], vec![]);
    for (w, best, hits) in &rows {
        e.push(best[0]);
        p.push(best[1]);
        f.push(best[2]);
        t.row([
            w.short_name().to_string(),
            format!("{:.2}", best[0]),
            format!("{:.2}", best[1]),
            format!("{:.2}", best[2]),
            format!("{:.1}", hits.0 * 100.0),
            format!("{:.1}", hits.1 * 100.0),
            w.job_type().to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut chart = BarChart::new("Full MRD normalized JCT (shorter is better, 1.0 = LRU)")
        .width(40)
        .scale_to(1.0);
    for (w, best, _) in &rows {
        chart.row(w.short_name(), best[2]);
    }
    println!("{}", chart.render());

    let mean = |v: &[f64]| Summary::of(v).map(|s| s.mean).unwrap_or(1.0);
    println!(
        "Average normalized JCT: evict-only {:.2} (paper 0.62), prefetch-only {:.2} (paper 0.67), full {:.2} (paper 0.53)",
        mean(&e),
        mean(&p),
        mean(&f)
    );
    println!(
        "Geomean normalized JCT: evict-only {:.2}, prefetch-only {:.2}, full {:.2}",
        geomean(&e).unwrap_or(1.0),
        geomean(&p).unwrap_or(1.0),
        geomean(&f).unwrap_or(1.0)
    );
    let best_full = rows
        .iter()
        .min_by(|a, b| a.1[2].total_cmp(&b.1[2]))
        .unwrap();
    let worst_full = rows
        .iter()
        .max_by(|a, b| a.1[2].total_cmp(&b.1[2]))
        .unwrap();
    println!(
        "Full MRD: best {} at {:.2} (paper: SCC at 0.20), weakest {} at {:.2} (paper: DT at 0.88)",
        best_full.0.short_name(),
        best_full.1[2],
        worst_full.0.short_name(),
        worst_full.1[2]
    );
}
