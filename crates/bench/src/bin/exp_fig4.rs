//! Figure 4 — Best performance of MRD against LRU on the Main cluster.
//!
//! The full (workload × MRD-mode × cache-size) grid runs on the parallel
//! sweep engine; see [`refdist_bench::experiments::fig4_text`] for the
//! methodology. Progress goes to stderr; stdout is deterministic.
//!
//! Paper headline: eviction-only 62% of LRU's JCT on average, prefetch-only
//! 67%, full MRD 53% (as low as 20% for SCC, as high as 88% for DT).

use refdist_bench::{experiments, ExpContext, SweepOptions};

fn main() {
    let ctx = ExpContext::main().from_env();
    let opts = SweepOptions::default().progress(true);
    print!("{}", experiments::fig4_text(&ctx, &opts));
}
