//! Table 3 — SparkBench workload characteristics.
//!
//! Jobs / stages / active stages / RDDs / references per RDD / references
//! per stage, plus data sizes, for the 14 SparkBench workloads, with the
//! paper's values in parentheses.

use refdist_bench::{par_map, ExpContext};
use refdist_dag::{AppPlan, RefAnalyzer};
use refdist_metrics::{human_bytes, TextTable};
use refdist_workloads::Workload;

/// Paper Table 3: (jobs, stages, active, rdds, refs/rdd, refs/stage).
fn paper(w: Workload) -> (u32, u32, u32, u32, f64, f64) {
    use Workload::*;
    match w {
        KMeans => (17, 20, 20, 37, 5.57, 1.95),
        LinearRegression => (6, 9, 9, 24, 5.00, 0.56),
        LogisticRegression => (7, 10, 10, 25, 6.00, 0.60),
        Svm => (10, 28, 17, 40, 3.50, 0.41),
        DecisionTree => (10, 16, 16, 29, 4.00, 0.25),
        MatrixFactorization => (8, 64, 22, 103, 3.11, 1.27),
        PageRank => (7, 69, 21, 95, 2.27, 2.38),
        TriangleCount => (2, 11, 11, 74, 0.80, 0.73),
        ShortestPaths => (3, 8, 7, 34, 1.33, 1.14),
        LabelPropagation => (23, 858, 87, 377, 4.09, 3.06),
        SvdPlusPlus => (14, 103, 27, 105, 3.32, 2.33),
        ConnectedComponents => (6, 50, 19, 85, 2.87, 2.26),
        StronglyConnectedComponents => (26, 839, 93, 560, 4.22, 3.54),
        PregelOperation => (17, 467, 65, 283, 3.55, 3.25),
        _ => (0, 0, 0, 0, 0.0, 0.0),
    }
}

fn main() {
    let ctx = ExpContext::main().from_env();
    let rows = par_map(Workload::sparkbench(), |w| {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let analyzer = RefAnalyzer::new(&spec, &plan);
        let profile = analyzer.profile();
        (w, analyzer.characteristics(&profile))
    });

    println!("Table 3: SparkBench workload characteristics (measured, paper in parentheses)\n");
    let mut t = TextTable::new([
        "Workload",
        "Category",
        "Input",
        "StageInputs",
        "Shuffle",
        "Jobs",
        "Stages",
        "Active",
        "RDDs",
        "Refs/RDD",
        "Refs/Stage",
        "JobType",
    ]);
    for (w, c) in &rows {
        let (pj, ps, pa, pr, prr, prs) = paper(*w);
        t.row([
            w.short_name().to_string(),
            w.category().to_string(),
            human_bytes(c.input_bytes),
            human_bytes(c.stage_input_bytes),
            human_bytes(c.shuffle_bytes),
            format!("{} ({pj})", c.jobs),
            format!("{} ({ps})", c.stages),
            format!("{} ({pa})", c.active_stages),
            format!("{} ({pr})", c.rdds),
            format!("{:.2} ({prr:.2})", c.refs_per_rdd),
            format!("{:.2} ({prs:.2})", c.refs_per_stage),
            w.job_type().to_string(),
        ]);
    }
    println!("{}", t.render());
}
