//! Extension — ablations of the design choices DESIGN.md §4b calls out:
//!
//! 1. distance tie-breaking (MRU vs LRU among equal distances);
//! 2. prefetch horizon (how far ahead prefetching may reach);
//! 3. execution-memory churn fraction (the unified memory model);
//! 4. the adaptive prefetch threshold (the paper's future-work item)
//!    against the fixed 25% threshold;
//! 5. vertex storage level: MEMORY_AND_DISK (SparkBench default) vs
//!    MEMORY_ONLY (GraphX default — misses recompute instead of re-read).
//!
//! All ablations run full MRD on a fixed, constrained cache and report JCT
//! normalized against LRU at the same point. Independent configurations run
//! on the worker pool; see [`refdist_bench::experiments::ablations_text`].

use refdist_bench::{experiments, ExpContext};

fn main() {
    let ctx = ExpContext::main().from_env();
    print!("{}", experiments::ablations_text(&ctx, 0));
}
