//! Extension — ablations of the design choices DESIGN.md §4b calls out:
//!
//! 1. distance tie-breaking (MRU vs LRU among equal distances);
//! 2. prefetch horizon (how far ahead prefetching may reach);
//! 3. execution-memory churn fraction (the unified memory model);
//! 4. the adaptive prefetch threshold (the paper's future-work item)
//!    against the fixed 25% threshold;
//! 5. vertex storage level: MEMORY_AND_DISK (SparkBench default) vs
//!    MEMORY_ONLY (GraphX default — misses recompute instead of re-read).
//!
//! All ablations run full MRD on a fixed, constrained cache and report JCT
//! normalized against LRU at the same point.

use refdist_bench::{cache_for_fraction, run_one, ExpContext, PolicySpec};
use refdist_cluster::{RunReport, SimConfig, Simulation};
use refdist_core::{MrdConfig, MrdPolicy, ProfileMode, TieBreak};
use refdist_dag::{AppPlan, AppSpec, StorageLevel};
use refdist_metrics::TextTable;
use refdist_workloads::Workload;

const FRACTION: f64 = 0.4;

fn run_mrd(
    spec: &AppSpec,
    plan: &AppPlan,
    ctx: &ExpContext,
    cfg: SimConfig,
    mrd: MrdConfig,
) -> RunReport {
    let _ = ctx;
    let mut p = MrdPolicy::new(mrd);
    Simulation::new(spec, plan, ProfileMode::Recurring, cfg).run(&mut p)
}

fn main() {
    let ctx = ExpContext::main().from_env();
    let workloads = [
        Workload::KMeans,
        Workload::DecisionTree,
        Workload::ConnectedComponents,
        Workload::StronglyConnectedComponents,
    ];

    // --- 1. Tie-breaking -------------------------------------------------
    println!("Ablation 1: distance tie-breaking (full MRD, normalized JCT vs LRU)\n");
    let mut t = TextTable::new(["Workload", "MRU tiebreak", "LRU tiebreak"]);
    for &w in &workloads {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let cache = cache_for_fraction(&spec, &ctx.cluster, FRACTION).max(1);
        let cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        let lru = run_one(
            &spec,
            &plan,
            &ctx,
            cache,
            PolicySpec::Lru,
            ProfileMode::Recurring,
        );
        let mru = run_mrd(&spec, &plan, &ctx, cfg.clone(), MrdConfig::default());
        let lru_tie = run_mrd(
            &spec,
            &plan,
            &ctx,
            cfg,
            MrdConfig {
                tie_break: TieBreak::Lru,
                ..Default::default()
            },
        );
        t.row([
            w.short_name().to_string(),
            format!("{:.2}", mru.normalized_jct(&lru)),
            format!("{:.2}", lru_tie.normalized_jct(&lru)),
        ]);
    }
    println!("{}", t.render());
    println!("An LRU tiebreak thrashes intra-stage scans (KM/DT); MRU is Belady-consistent.\n");

    // --- 2. Prefetch horizon ---------------------------------------------
    println!("Ablation 2: prefetch horizon (full MRD on SCC, normalized JCT vs LRU)\n");
    let spec = Workload::StronglyConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.25).max(1);
    let lru = run_one(
        &spec,
        &plan,
        &ctx,
        cache,
        PolicySpec::Lru,
        ProfileMode::Recurring,
    );
    let mut t = TextTable::new([
        "Horizon",
        "Normalized JCT",
        "Prefetches",
        "Prefetch hits",
        "Wasted",
    ]);
    for horizon in [1u32, 3, 6, 12, 0 /* unlimited */] {
        let cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        let r = run_mrd(
            &spec,
            &plan,
            &ctx,
            cfg,
            MrdConfig {
                prefetch_horizon: horizon,
                ..Default::default()
            },
        );
        t.row([
            if horizon == 0 {
                "unlimited".into()
            } else {
                horizon.to_string()
            },
            format!("{:.2}", r.normalized_jct(&lru)),
            r.stats.prefetches.to_string(),
            r.stats.prefetch_hits.to_string(),
            r.stats.wasted_prefetches.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Far horizons waste transfers on blocks the next reservation evicts.\n");

    // --- 3. Execution-memory fraction --------------------------------------
    println!("Ablation 3: execution-memory churn (full MRD on CC, normalized JCT vs LRU at same fraction)\n");
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.5).max(1);
    let mut t = TextTable::new(["exec fraction", "LRU JCT(s)", "MRD JCT(s)", "Normalized"]);
    for frac in [0.0f64, 0.15, 0.3, 0.5] {
        let mut cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        cfg.exec_mem_fraction = frac;
        let mut lru_p = PolicySpec::Lru.build(None);
        let lru =
            Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone()).run(&mut *lru_p);
        let mrd = run_mrd(&spec, &plan, &ctx, cfg, MrdConfig::default());
        t.row([
            format!("{frac:.2}"),
            format!("{:.1}", lru.jct_secs()),
            format!("{:.1}", mrd.jct_secs()),
            format!("{:.2}", mrd.normalized_jct(&lru)),
        ]);
    }
    println!("{}", t.render());
    println!("More churn hurts both policies but widens MRD's edge: its victims matter more.\n");

    // --- 4. Prefetch threshold: fixed sweep vs adaptive --------------------
    // Under the default per-stage cap and horizon the force-prefetch path
    // rarely fires, so the threshold is exercised with the prefetcher
    // uncapped and the horizon unlimited (the paper's Algorithm 1 has
    // neither bound) on SCC.
    println!("Ablation 4: prefetch threshold — fixed sweep vs adaptive (paper future work)\n");
    // The threshold only binds when a block is a sizeable fraction of the
    // cache (otherwise \"fits in free\" decides everything); coarse
    // partitioning makes blocks big enough to exercise the forced path.
    let mut coarse = ctx.params;
    coarse.partitions = 24;
    let spec = Workload::StronglyConnectedComponents.build(&coarse);
    let plan = AppPlan::build(&spec);
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.12).max(1);
    let mut t = TextTable::new(["Threshold", "JCT(s)", "Prefetches", "Wasted"]);
    let mut base = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
    base.max_prefetch_per_node = usize::MAX;
    for thr in [0.05f64, 0.25, 0.6] {
        let mut cfg = base.clone();
        cfg.prefetch_threshold = thr;
        let r = run_mrd(
            &spec,
            &plan,
            &ctx,
            cfg,
            MrdConfig {
                prefetch_horizon: 0,
                ..Default::default()
            },
        );
        t.row([
            format!("fixed {thr:.2}"),
            format!("{:.1}", r.jct_secs()),
            r.stats.prefetches.to_string(),
            r.stats.wasted_prefetches.to_string(),
        ]);
    }
    for start in [0.05f64, 0.25] {
        let mut cfg = base.clone();
        cfg.adaptive_threshold = true;
        cfg.prefetch_threshold = start;
        let r = run_mrd(
            &spec,
            &plan,
            &ctx,
            cfg,
            MrdConfig {
                prefetch_horizon: 0,
                ..Default::default()
            },
        );
        t.row([
            format!("adaptive (from {start:.2})"),
            format!("{:.1}", r.jct_secs()),
            r.stats.prefetches.to_string(),
            r.stats.wasted_prefetches.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Lower thresholds force far more wasteful prefetch-evictions; the adaptive rule\nrecovers even from a bad initial setting — the paper's future-work item.\n"
    );

    // --- 5. Vertex storage level -------------------------------------------
    println!("Ablation 5: MEMORY_AND_DISK vs MEMORY_ONLY cached data (CC, full MRD vs LRU)\n");
    let mut t = TextTable::new([
        "Storage",
        "LRU JCT(s)",
        "MRD JCT(s)",
        "Normalized",
        "LRU recomputes",
    ]);
    for memory_only in [false, true] {
        let mut spec = Workload::ConnectedComponents.build(&ctx.params);
        if memory_only {
            for r in &mut spec.rdds {
                if r.storage.is_cached() {
                    r.storage = StorageLevel::MemoryOnly;
                }
            }
        }
        let plan = AppPlan::build(&spec);
        let cache = cache_for_fraction(&spec, &ctx.cluster, 0.4).max(1);
        let cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        let mut lru_p = PolicySpec::Lru.build(None);
        let lru =
            Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone()).run(&mut *lru_p);
        let mrd = run_mrd(&spec, &plan, &ctx, cfg, MrdConfig::default());
        t.row([
            if memory_only {
                "MEMORY_ONLY"
            } else {
                "MEMORY_AND_DISK"
            }
            .to_string(),
            format!("{:.1}", lru.jct_secs()),
            format!("{:.1}", mrd.jct_secs()),
            format!("{:.2}", mrd.normalized_jct(&lru)),
            lru.stats.recomputes.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Under MEMORY_ONLY every bad eviction becomes a recompute cascade —\nthe regime where eviction policy matters most (and prefetch least).");
}
