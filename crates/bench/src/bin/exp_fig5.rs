//! Figure 5 — Comparison to the LRC policy on the LRC cluster
//! (20 × m4.large equivalents), on the parallel sweep engine.
//!
//! Paper: MRD beats LRC by up to 45% (ConnectedComponents) and by ~30% on
//! average, because reference *distance* predicts imminence where reference
//! *count* strands far-future-referenced blocks in the cache.

use refdist_bench::{experiments, ExpContext, SweepOptions};

fn main() {
    let ctx = ExpContext::lrc().from_env();
    let opts = SweepOptions::default().progress(true);
    print!("{}", experiments::fig5_text(&ctx, &opts));
}
