//! Figure 5 — Comparison to the LRC policy on the LRC cluster
//! (20 × m4.large equivalents).
//!
//! Paper: MRD beats LRC by up to 45% (ConnectedComponents) and by ~30% on
//! average, because reference *distance* predicts imminence where reference
//! *count* strands far-future-referenced blocks in the cache.

use refdist_bench::{par_map, sweep, ExpContext, PolicySpec, SWEEP_FRACTIONS};
use refdist_core::ProfileMode;
use refdist_metrics::{Summary, TextTable};
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::lrc().from_env();
    let workloads = [
        Workload::ConnectedComponents,
        Workload::PageRank,
        Workload::SvdPlusPlus,
        Workload::KMeans,
        Workload::StronglyConnectedComponents,
        Workload::LabelPropagation,
    ];
    let policies = [PolicySpec::Lru, PolicySpec::Lrc, PolicySpec::MrdFull];

    let rows = par_map(&workloads, |w| {
        let pts = sweep(w, &ctx, SWEEP_FRACTIONS, &policies, ProfileMode::Recurring);
        // Paper methodology: best value per policy across cache sizes.
        let mut best_lrc = f64::INFINITY;
        let mut best_mrd = f64::INFINITY;
        for p in &pts {
            let lru = &p.reports[0];
            best_lrc = best_lrc.min(p.reports[1].normalized_jct(lru));
            best_mrd = best_mrd.min(p.reports[2].normalized_jct(lru));
        }
        (w, best_lrc, best_mrd)
    });

    println!("Figure 5: MRD vs LRC (normalized JCT vs LRU, LRC cluster)\n");
    let mut t = TextTable::new(["Workload", "LRC", "MRD", "MRD vs LRC improvement"]);
    let mut improvements = vec![];
    for (w, lrc, mrd) in &rows {
        let imp = 1.0 - mrd / lrc;
        improvements.push(imp);
        t.row([
            w.short_name().to_string(),
            format!("{lrc:.2}"),
            format!("{mrd:.2}"),
            format!("{:.0}%", imp * 100.0),
        ]);
    }
    println!("{}", t.render());
    let s = Summary::of(&improvements).unwrap();
    println!(
        "MRD improves on LRC by up to {:.0}% and {:.0}% on average (paper: up to 45%, avg 30%)",
        s.max * 100.0,
        s.mean * 100.0
    );
}
