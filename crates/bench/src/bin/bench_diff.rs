//! Prints baseline-vs-current deltas for the cache hot-path benchmarks.
//!
//!     bench_diff [--check] [--max-regress PCT] [BASELINE] [CURRENT]
//!
//! Defaults to `BENCH_baseline.json` vs `BENCH_pr2.json` in the working
//! directory. Records are joined on (suite, bench, policy, blocks); the
//! protocol field is informational (e.g. baseline records are the naive
//! scan, current records the indexed or dense path).
//!
//! Without `--check`, exits non-zero only when a file is missing or
//! unparseable — never on timing, so informational diffs stay robust to
//! noisy machines. With `--check`, any joined metric whose current value is
//! more than `PCT` percent above the baseline (default 10) is printed as a
//! regression and the exit code is non-zero — the CI bench-regression guard
//! (`ci.sh` compares the two newest `BENCH_pr*.json` this way; set
//! `REFDIST_SKIP_BENCH_GUARD=1` to opt out).

use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
struct Record {
    suite: String,
    bench: String,
    policy: String,
    blocks: u64,
    protocol: String,
    metric: String,
    value: f64,
}

/// Pull `"key":"value"` out of a flat one-line JSON object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pull `"key":number` out of a flat one-line JSON object.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut records = Vec::new();
    for line in text.lines() {
        if !line.contains("\"suite\"") {
            continue;
        }
        let (metric, value) = if let Some(v) = num_field(line, "ns_per_evict") {
            ("ns_per_evict".to_string(), v)
        } else if let Some(v) = num_field(line, "ms_total") {
            ("ms_total".to_string(), v)
        } else if let Some(v) = num_field(line, "peak_slots") {
            // Slot-arena high-water mark of a streaming serve cell — a
            // space metric, gated like a timing: growth is a regression.
            ("peak_slots".to_string(), v)
        } else if let Some(v) = num_field(line, "us_per_sub") {
            ("us_per_sub".to_string(), v)
        } else if let Some(v) = num_field(line, "count") {
            // Deterministic behaviour counts (retries, sheds, SLO hits from
            // a fixed-seed stream) — machine-independent, so any drift is a
            // behaviour change, not noise.
            ("count".to_string(), v)
        } else {
            return Err(format!("{path}: record without a metric: {line}"));
        };
        records.push(Record {
            suite: str_field(line, "suite").ok_or_else(|| format!("{path}: no suite: {line}"))?,
            bench: str_field(line, "bench").ok_or_else(|| format!("{path}: no bench: {line}"))?,
            policy: str_field(line, "policy").ok_or_else(|| format!("{path}: no policy: {line}"))?,
            blocks: num_field(line, "blocks").unwrap_or(0.0) as u64,
            protocol: str_field(line, "protocol").unwrap_or_default(),
            metric,
            value,
        });
    }
    if records.is_empty() {
        return Err(format!("{path}: no records found"));
    }
    Ok(records)
}

fn main() -> ExitCode {
    let mut check = false;
    let mut max_regress = 10.0f64;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--max-regress" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("bench_diff: --max-regress needs a numeric percentage");
                    return ExitCode::FAILURE;
                };
                max_regress = v;
            }
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let base_path = positional
        .next()
        .unwrap_or_else(|| "BENCH_baseline.json".into());
    let cur_path = positional.next().unwrap_or_else(|| "BENCH_pr2.json".into());
    let (base, cur) = match (parse(&base_path), parse(&cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_diff: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<7} {:<12} {:<10} {:>8} {:>14} {:>14} {:>9}",
        "suite", "bench", "policy", "blocks", base_path, cur_path, "speedup"
    );
    let mut unmatched = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for b in &base {
        // Protocol is part of the identity: admission records the cold and
        // interned paths under the same bench name, distinguished only here.
        let Some(c) = cur.iter().find(|c| {
            (&c.suite, &c.bench, &c.policy, c.blocks, &c.protocol)
                == (&b.suite, &b.bench, &b.policy, b.blocks, &b.protocol)
        }) else {
            unmatched += 1;
            continue;
        };
        let unit = match b.metric.as_str() {
            "ns_per_evict" => "ns",
            "peak_slots" => "sl",
            "us_per_sub" => "us",
            "count" => "n",
            _ => "ms",
        };
        println!(
            "{:<7} {:<12} {:<10} {:>8} {:>11.1} {:>2} {:>11.1} {:>2} {:>8.2}x",
            b.suite,
            b.bench,
            b.policy,
            b.blocks,
            b.value,
            unit,
            c.value,
            unit,
            b.value / c.value
        );
        if check && b.value > 0.0 && c.value > b.value * (1.0 + max_regress / 100.0) {
            regressions.push(format!(
                "{}/{}/{}/blocks={}: {:.1} {unit} -> {:.1} {unit} (+{:.1}%, limit {max_regress}%)",
                b.suite,
                b.bench,
                b.policy,
                b.blocks,
                b.value,
                c.value,
                (c.value / b.value - 1.0) * 100.0,
            ));
        }
    }
    if unmatched > 0 {
        println!("({unmatched} baseline records had no counterpart in {cur_path})");
    }
    if check && !regressions.is_empty() {
        eprintln!(
            "bench_diff: {} metric(s) regressed more than {max_regress}% vs {base_path}:",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
