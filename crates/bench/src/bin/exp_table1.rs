//! Table 1 — Reference-distance characteristics of benchmark workloads.
//!
//! For all 14 SparkBench and 6 HiBench workloads: average/maximum job and
//! stage distances measured on our synthetic DAGs, side by side with the
//! paper's published values. DAG analysis runs on the worker pool.

use refdist_bench::{experiments, ExpContext};

fn main() {
    let ctx = ExpContext::main().from_env();
    print!("{}", experiments::table1_text(&ctx, 0));
}
