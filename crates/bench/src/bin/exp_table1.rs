//! Table 1 — Reference-distance characteristics of benchmark workloads.
//!
//! For all 14 SparkBench and 6 HiBench workloads: average/maximum job and
//! stage distances measured on our synthetic DAGs, side by side with the
//! paper's published values.

use refdist_bench::{par_map, ExpContext};
use refdist_dag::{AppPlan, RefAnalyzer};
use refdist_metrics::TextTable;
use refdist_workloads::Workload;

/// Paper Table 1 values: (avg job, max job, avg stage, max stage).
fn paper(w: Workload) -> (f64, u32, f64, u32) {
    use Workload::*;
    match w {
        KMeans => (5.15, 16, 5.34, 19),
        LinearRegression => (1.24, 5, 1.76, 8),
        LogisticRegression => (1.53, 6, 2.00, 9),
        Svm => (1.48, 6, 1.96, 10),
        DecisionTree => (2.71, 9, 4.38, 15),
        MatrixFactorization => (1.56, 7, 3.31, 18),
        PageRank => (1.74, 5, 6.08, 19),
        TriangleCount => (0.07, 1, 1.23, 6),
        ShortestPaths => (0.19, 1, 1.19, 4),
        LabelPropagation => (7.19, 22, 28.37, 85),
        SvdPlusPlus => (3.51, 11, 6.82, 23),
        ConnectedComponents => (1.30, 4, 5.31, 16),
        StronglyConnectedComponents => (7.77, 24, 29.96, 90),
        PregelOperation => (1.28, 4, 5.45, 16),
        HiSort => (0.00, 0, 0.00, 0),
        HiWordCount => (0.00, 0, 0.00, 0),
        HiTeraSort => (0.22, 1, 0.22, 1),
        HiPageRank => (0.00, 0, 0.09, 2),
        HiBayes => (2.09, 7, 3.23, 9),
        HiKMeans => (6.08, 19, 6.60, 25),
    }
}

fn main() {
    let ctx = ExpContext::main().from_env();
    let all: Vec<Workload> = Workload::sparkbench()
        .iter()
        .chain(Workload::hibench())
        .copied()
        .collect();

    let rows = par_map(&all, |w| {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        (w, RefAnalyzer::distance_stats(&profile))
    });

    println!("Table 1: Reference distance characteristics (measured vs paper)\n");
    let mut t = TextTable::new([
        "Workload",
        "AvgJob",
        "AvgJob(paper)",
        "MaxJob",
        "MaxJob(paper)",
        "AvgStage",
        "AvgStage(paper)",
        "MaxStage",
        "MaxStage(paper)",
    ]);
    let mut suite_break_done = false;
    for (w, d) in &rows {
        if !suite_break_done && Workload::hibench().contains(w) {
            t.row(["-- HiBench --", "", "", "", "", "", "", "", ""]);
            suite_break_done = true;
        }
        let (pj, pmj, ps, pms) = paper(*w);
        t.row([
            w.short_name().to_string(),
            format!("{:.2}", d.avg_job),
            format!("{pj:.2}"),
            d.max_job.to_string(),
            pmj.to_string(),
            format!("{:.2}", d.avg_stage),
            format!("{ps:.2}"),
            d.max_stage.to_string(),
            pms.to_string(),
        ]);
    }
    println!("{}", t.render());
}
