//! Cache hot-path benchmark (ISSUEs 2 and 3): measures the eviction /
//! simulation hot path under three protocols and writes each side to a
//! machine-readable file:
//!
//! * `BENCH_baseline.json` — `naive`: the pre-index re-scan protocol
//!   (`NaiveScan`) on hash-backed engine state (the original cost profile).
//! * `BENCH_pr2.json` — `indexed`: the ordered-index `select_victims` path,
//!   still on hash-backed engine state (`SimConfig::reference_state`).
//! * `BENCH_pr3.json` — `dense`: the indexed path on dense slot-addressed
//!   per-block state (the configuration the runtime uses now).
//!
//! All three files come from one invocation on one machine, so any pair is
//! comparable. One record per line: micro records report `ns_per_evict` for
//! one churn step (access + insert-under-pressure + one eviction) at a given
//! cache population; macro records report `ms_total` for a complete
//! eviction-heavy simulation. `bench_diff` joins two files and prints
//! speedups (and gates CI regressions with `--check`).
//!
//! `REFDIST_QUICK=1` shrinks populations and measurement windows for smoke
//! runs (the output files are still written).

use refdist_bench::{bench_policies, cache_for_fraction, Churn, ExpContext, NaiveScan, PolicySpec};
use refdist_cluster::{SimConfig, Simulation};
use refdist_core::ProfileMode;
use refdist_dag::AppPlan;
use refdist_policies::CachePolicy;
use refdist_workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;

/// Measurement protocols, in historical order: (name, naive wrapper, dense
/// engine/policy state).
const PROTOCOLS: [(&str, bool, bool); 3] = [
    ("naive", true, false),
    ("indexed", false, false),
    ("dense", false, true),
];

struct Record {
    suite: &'static str,
    bench: String,
    policy: String,
    blocks: usize,
    protocol: &'static str,
    metric: &'static str,
    value: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\"suite\":\"{}\",\"bench\":\"{}\",\"policy\":\"{}\",\"blocks\":{},\"protocol\":\"{}\",\"{}\":{:.2}}}",
            self.suite, self.bench, self.policy, self.blocks, self.protocol, self.metric, self.value
        )
    }
}

fn quick() -> bool {
    std::env::var("REFDIST_QUICK").is_ok_and(|v| v != "0")
}

/// Mean ns per churn step, measured over a time-boxed window after warmup.
fn time_churn(build: fn() -> Box<dyn CachePolicy>, blocks: usize, naive: bool, dense: bool) -> f64 {
    let mut churn = Churn::with_mode(build, blocks, naive, dense);
    let budget_ms: u64 = if quick() { 40 } else { 400 };
    let warmup = (blocks / 8).clamp(32, 2_000);
    for _ in 0..warmup {
        churn.step();
    }
    let mut steps: u64 = 0;
    let start = Instant::now();
    loop {
        for _ in 0..32 {
            std::hint::black_box(churn.step());
        }
        steps += 32;
        if start.elapsed().as_millis() as u64 >= budget_ms || steps >= 200_000 {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1e9 / steps as f64
}

/// One eviction-heavy simulation workload; returns (best-of-reps wall ms,
/// hit ratio). Best-of keeps the record robust to scheduler noise; the hit
/// ratio is identical across reps and protocols (asserted by the caller).
fn time_macro(policy: PolicySpec, naive: bool, dense: bool) -> (f64, f64) {
    let mut ctx = ExpContext::main().quick();
    if quick() {
        ctx.params.partitions = 32;
        ctx.params.scale = 0.1;
    } else {
        // Larger than the CI-quick scale so eviction churn, not fixed setup
        // cost, dominates the wall time.
        ctx.params.partitions = 256;
        ctx.params.scale = 1.0;
    }
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    // A cache covering 20% of the cached footprint keeps the runtime under
    // constant eviction pressure — the free_up hot path dominates.
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.2).max(1);
    let reps = if quick() { 1 } else { 3 };
    let mut best_ms = f64::INFINITY;
    let mut hits = 0.0;
    for _ in 0..reps {
        let mut cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        cfg.reference_state = !dense;
        let mut p: Box<dyn CachePolicy> = if naive {
            Box::new(NaiveScan::new(policy.build(None)))
        } else {
            policy.build(None)
        };
        let start = Instant::now();
        let report = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut *p);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        hits = report.hit_ratio();
    }
    (best_ms, hits)
}

fn main() {
    // One record vector per output file, index-aligned with PROTOCOLS.
    let mut records: [Vec<Record>; 3] = [Vec::new(), Vec::new(), Vec::new()];

    let populations: &[usize] = if quick() {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    println!("== micro: evict_churn (ns/evict, lower is better) ==");
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>14} {:>9}",
        "policy", "blocks", "naive", "indexed", "dense", "speedup"
    );
    for &blocks in populations {
        for (name, build) in bench_policies() {
            let naive_ns = time_churn(build, blocks, true, false);
            let indexed_ns = time_churn(build, blocks, false, false);
            // The baseline policies keep no slot-indexed state of their own
            // (`attach_slots` is a no-op for them), so their dense churn is
            // the indexed code path verbatim — reuse the measurement rather
            // than re-sampling the same code and reporting noise as a delta.
            let dense_ns = if name == "MRD" {
                time_churn(build, blocks, false, true)
            } else {
                indexed_ns
            };
            println!(
                "{:<10} {:>8} {:>11.0} ns {:>11.0} ns {:>11.0} ns {:>8.1}x",
                name,
                blocks,
                naive_ns,
                indexed_ns,
                dense_ns,
                naive_ns / dense_ns
            );
            for (i, (out, value)) in records
                .iter_mut()
                .zip([naive_ns, indexed_ns, dense_ns])
                .enumerate()
            {
                out.push(Record {
                    suite: "micro",
                    bench: "evict_churn".into(),
                    policy: name.into(),
                    blocks,
                    protocol: PROTOCOLS[i].0,
                    metric: "ns_per_evict",
                    value,
                });
            }
        }
    }

    println!();
    println!("== macro: ConnectedComponents @ 20% cache (ms, lower is better) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>9}",
        "policy", "naive", "indexed", "dense", "speedup"
    );
    for policy in [PolicySpec::Lru, PolicySpec::MrdFull] {
        let mut row: Vec<(f64, f64)> = Vec::new();
        for &(_, naive, dense) in &PROTOCOLS {
            row.push(time_macro(policy, naive, dense));
        }
        let (naive_ms, naive_hits) = row[0];
        let (indexed_ms, _) = row[1];
        let (dense_ms, _) = row[2];
        for &(_, hits) in &row {
            assert!(
                (naive_hits - hits).abs() < 1e-12,
                "protocols disagree on behavior for {}: hit ratio {naive_hits} vs {hits}",
                policy.name()
            );
        }
        println!(
            "{:<10} {:>9.0} ms {:>9.0} ms {:>9.0} ms {:>8.2}x",
            policy.name(),
            naive_ms,
            indexed_ms,
            dense_ms,
            naive_ms / dense_ms
        );
        for (i, (out, (ms, _))) in records.iter_mut().zip(&row).enumerate() {
            out.push(Record {
                suite: "macro",
                bench: "cc_sweep".into(),
                policy: policy.name().into(),
                blocks: 0,
                protocol: PROTOCOLS[i].0,
                metric: "ms_total",
                value: *ms,
            });
        }
    }

    let paths = ["BENCH_baseline.json", "BENCH_pr2.json", "BENCH_pr3.json"];
    for (path, records) in paths.iter().zip(&records) {
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            let sep = if i + 1 == records.len() { "\n" } else { ",\n" };
            let _ = write!(out, "{}{}", r.to_json(), sep);
        }
        out.push_str("]\n");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path} ({} records)", records.len());
    }
}
