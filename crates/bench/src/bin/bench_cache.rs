//! Cache hot-path benchmark (ISSUE 2): measures victim selection under the
//! pre-index protocol (`NaiveScan`) and the maintained ordered indexes, and
//! writes both sides to machine-readable files:
//!
//! * `BENCH_baseline.json` — the naive re-scan protocol (the pre-change
//!   `evict_one` cost profile).
//! * `BENCH_pr2.json` — the indexed `select_victims` path the runtime uses
//!   now.
//!
//! One record per line: micro records report `ns_per_evict` for one churn
//! step (access + insert-under-pressure + one eviction) at a given cache
//! population; macro records report `ms_total` for a complete eviction-heavy
//! simulation. `bench_diff` joins the two files and prints speedups.
//!
//! `REFDIST_QUICK=1` shrinks populations and measurement windows for smoke
//! runs (the output files are still written).

use refdist_bench::{bench_policies, cache_for_fraction, Churn, ExpContext, NaiveScan, PolicySpec};
use refdist_cluster::{SimConfig, Simulation};
use refdist_core::ProfileMode;
use refdist_dag::AppPlan;
use refdist_policies::CachePolicy;
use refdist_workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;

struct Record {
    suite: &'static str,
    bench: String,
    policy: String,
    blocks: usize,
    protocol: &'static str,
    metric: &'static str,
    value: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            "{{\"suite\":\"{}\",\"bench\":\"{}\",\"policy\":\"{}\",\"blocks\":{},\"protocol\":\"{}\",\"{}\":{:.2}}}",
            self.suite, self.bench, self.policy, self.blocks, self.protocol, self.metric, self.value
        )
    }
}

fn quick() -> bool {
    std::env::var("REFDIST_QUICK").is_ok_and(|v| v != "0")
}

/// Mean ns per churn step, measured over a time-boxed window after warmup.
fn time_churn(build: fn() -> Box<dyn CachePolicy>, blocks: usize, naive: bool) -> f64 {
    let mut churn = Churn::new(build, blocks, naive);
    let budget_ms: u64 = if quick() { 40 } else { 400 };
    let warmup = (blocks / 8).clamp(32, 2_000);
    for _ in 0..warmup {
        churn.step();
    }
    let mut steps: u64 = 0;
    let start = Instant::now();
    loop {
        for _ in 0..32 {
            std::hint::black_box(churn.step());
        }
        steps += 32;
        if start.elapsed().as_millis() as u64 >= budget_ms || steps >= 200_000 {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1e9 / steps as f64
}

/// One eviction-heavy simulation workload; returns (best-of-reps wall ms,
/// hit ratio). Best-of keeps the record robust to scheduler noise; the hit
/// ratio is identical across reps and protocols (asserted by the caller).
fn time_macro(policy: PolicySpec, naive: bool) -> (f64, f64) {
    let mut ctx = ExpContext::main().quick();
    if quick() {
        ctx.params.partitions = 32;
        ctx.params.scale = 0.1;
    } else {
        // Larger than the CI-quick scale so eviction churn, not fixed setup
        // cost, dominates the wall time.
        ctx.params.partitions = 256;
        ctx.params.scale = 1.0;
    }
    let spec = Workload::ConnectedComponents.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    // A cache covering 20% of the cached footprint keeps the runtime under
    // constant eviction pressure — the free_up hot path dominates.
    let cache = cache_for_fraction(&spec, &ctx.cluster, 0.2).max(1);
    let reps = if quick() { 1 } else { 3 };
    let mut best_ms = f64::INFINITY;
    let mut hits = 0.0;
    for _ in 0..reps {
        let cfg = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed);
        let mut p: Box<dyn CachePolicy> = if naive {
            Box::new(NaiveScan::new(policy.build(None)))
        } else {
            policy.build(None)
        };
        let start = Instant::now();
        let report = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut *p);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        hits = report.hit_ratio();
    }
    (best_ms, hits)
}

fn main() {
    let mut baseline: Vec<Record> = Vec::new();
    let mut current: Vec<Record> = Vec::new();

    let populations: &[usize] = if quick() {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    println!("== micro: evict_churn (ns/evict, lower is better) ==");
    println!("{:<10} {:>8} {:>14} {:>14} {:>9}", "policy", "blocks", "naive", "indexed", "speedup");
    for &blocks in populations {
        for (name, build) in bench_policies() {
            let naive_ns = time_churn(build, blocks, true);
            let indexed_ns = time_churn(build, blocks, false);
            println!(
                "{:<10} {:>8} {:>11.0} ns {:>11.0} ns {:>8.1}x",
                name,
                blocks,
                naive_ns,
                indexed_ns,
                naive_ns / indexed_ns
            );
            for (protocol, value, out) in [
                ("naive", naive_ns, &mut baseline),
                ("indexed", indexed_ns, &mut current),
            ] {
                out.push(Record {
                    suite: "micro",
                    bench: "evict_churn".into(),
                    policy: name.into(),
                    blocks,
                    protocol,
                    metric: "ns_per_evict",
                    value,
                });
            }
        }
    }

    println!();
    println!("== macro: ConnectedComponents @ 20% cache (ms, lower is better) ==");
    println!("{:<10} {:>12} {:>12} {:>9}", "policy", "naive", "indexed", "speedup");
    for policy in [PolicySpec::Lru, PolicySpec::MrdFull] {
        let (naive_ms, naive_hits) = time_macro(policy, true);
        let (indexed_ms, indexed_hits) = time_macro(policy, false);
        assert!(
            (naive_hits - indexed_hits).abs() < 1e-12,
            "protocols disagree on behavior for {}: hit ratio {naive_hits} vs {indexed_hits}",
            policy.name()
        );
        println!(
            "{:<10} {:>9.0} ms {:>9.0} ms {:>8.2}x",
            policy.name(),
            naive_ms,
            indexed_ms,
            naive_ms / indexed_ms
        );
        for (protocol, value, out) in [
            ("naive", naive_ms, &mut baseline),
            ("indexed", indexed_ms, &mut current),
        ] {
            out.push(Record {
                suite: "macro",
                bench: "cc_sweep".into(),
                policy: policy.name().into(),
                blocks: 0,
                protocol,
                metric: "ms_total",
                value,
            });
        }
    }

    for (path, records) in [("BENCH_baseline.json", &baseline), ("BENCH_pr2.json", &current)] {
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            let sep = if i + 1 == records.len() { "\n" } else { ",\n" };
            let _ = write!(out, "{}{}", r.to_json(), sep);
        }
        out.push_str("]\n");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path} ({} records)", records.len());
    }
}
