//! Figure 8 — Stage distance vs job distance as the MRD metric (§5.7).
//!
//! Paper: LabelPropagation (87 active stages over 23 jobs — ratio 3.17)
//! degrades badly under the coarse job metric, while K-Means (ratio 1.18)
//! is indifferent because its stages and jobs nearly coincide.

use refdist_bench::{par_map, sweep, ExpContext, PolicySpec, SWEEP_FRACTIONS};
use refdist_core::ProfileMode;
use refdist_dag::AppPlan;
use refdist_metrics::TextTable;
use refdist_workloads::Workload;

fn main() {
    let ctx = ExpContext::main().from_env();
    let workloads = [Workload::LabelPropagation, Workload::KMeans];
    let policies = [
        PolicySpec::Lru,
        PolicySpec::MrdFull,
        PolicySpec::MrdJobMetric,
    ];

    let rows = par_map(&workloads, |w| {
        let spec = w.build(&ctx.params);
        let plan = AppPlan::build(&spec);
        let ratio = plan.active_stage_count() as f64 / plan.jobs.len() as f64;
        let pts = sweep(w, &ctx, SWEEP_FRACTIONS, &policies, ProfileMode::Recurring);
        let mut best_stage = (f64::INFINITY, 0.0);
        let mut best_job = (f64::INFINITY, 0.0);
        for p in &pts {
            let lru = &p.reports[0];
            let s = p.reports[1].normalized_jct(lru);
            if s < best_stage.0 {
                best_stage = (s, p.reports[1].hit_ratio());
            }
            let j = p.reports[2].normalized_jct(lru);
            if j < best_job.0 {
                best_job = (j, p.reports[2].hit_ratio());
            }
        }
        // The metric's coarseness bites hardest under cache pressure, so
        // also compare at the tightest sweep point.
        let tight = &pts[0];
        let tight_stage = (
            tight.reports[1].normalized_jct(&tight.reports[0]),
            tight.reports[1].hit_ratio(),
        );
        let tight_job = (
            tight.reports[2].normalized_jct(&tight.reports[0]),
            tight.reports[2].hit_ratio(),
        );
        (w, ratio, best_stage, best_job, tight_stage, tight_job)
    });

    println!("Figure 8: stage-distance vs job-distance MRD (normalized JCT vs LRU)\n");
    let mut t = TextTable::new([
        "Workload",
        "ActiveStages/Jobs",
        "stage JCT (best)",
        "job JCT (best)",
        "stage JCT (tight cache)",
        "job JCT (tight cache)",
        "stage hit% (tight)",
        "job hit% (tight)",
    ]);
    for (w, ratio, stage, job, ts, tj) in &rows {
        t.row([
            w.short_name().to_string(),
            format!("{ratio:.2}"),
            format!("{:.2}", stage.0),
            format!("{:.2}", job.0),
            format!("{:.2}", ts.0),
            format!("{:.2}", tj.0),
            format!("{:.1}", ts.1 * 100.0),
            format!("{:.1}", tj.1 * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expectation (paper §5.7): the job metric degrades LP markedly while\n\
         KM is nearly indifferent (its stages:jobs ratio is ~1)."
    );
}
