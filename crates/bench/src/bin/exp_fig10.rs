//! Figure 10 — Effect of tripling workload iterations (§5.9).
//!
//! More iterations mean more jobs, stages and cache references, giving MRD
//! more eviction/prefetch opportunities. Paper: tripling iterations moved
//! the average normalized JCT from 62% to 54% and the hit ratio from 94% to
//! 96%, with diminishing returns, and no effect on DecisionTree (which has
//! no iterations parameter).

use refdist_bench::{par_map, sweep, ExpContext, PolicySpec, SWEEP_FRACTIONS};
use refdist_core::ProfileMode;
use refdist_metrics::{Summary, TextTable};
use refdist_workloads::{Workload, WorkloadParams};

fn main() {
    let ctx = ExpContext::main().from_env();
    let workloads: Vec<Workload> = Workload::sparkbench()
        .iter()
        .copied()
        .filter(|w| w.has_iterations())
        .collect();
    let policies = [PolicySpec::Lru, PolicySpec::MrdFull];

    let rows = par_map(&workloads, |w| {
        let best = |params: WorkloadParams| {
            let mut c = ctx.clone();
            c.params = params;
            let pts = sweep(w, &c, SWEEP_FRACTIONS, &policies, ProfileMode::Recurring);
            let mut best = (f64::INFINITY, 0.0);
            for p in &pts {
                let n = p.reports[1].normalized_jct(&p.reports[0]);
                if n < best.0 {
                    best = (n, p.reports[1].hit_ratio());
                }
            }
            best
        };
        let base = best(ctx.params);
        let tripled_iters = w.default_iterations().map(|i| i * 3);
        let tripled = best(WorkloadParams {
            iterations: tripled_iters,
            ..ctx.params
        });
        (w, base, tripled)
    });

    println!("Figure 10: default vs 3x iterations (MRD, normalized JCT vs LRU)\n");
    let mut t = TextTable::new(["Workload", "1x JCT", "1x hit%", "3x JCT", "3x hit%"]);
    let (mut base_jct, mut trip_jct, mut base_hit, mut trip_hit) = (vec![], vec![], vec![], vec![]);
    for (w, base, tripled) in &rows {
        base_jct.push(base.0);
        trip_jct.push(tripled.0);
        base_hit.push(base.1);
        trip_hit.push(tripled.1);
        t.row([
            w.short_name().to_string(),
            format!("{:.2}", base.0),
            format!("{:.1}", base.1 * 100.0),
            format!("{:.2}", tripled.0),
            format!("{:.1}", tripled.1 * 100.0),
        ]);
    }
    println!("{}", t.render());
    let m = |v: &[f64]| Summary::of(v).unwrap().mean;
    println!(
        "Average: JCT {:.2} -> {:.2} (paper 0.62 -> 0.54), hit {:.1}% -> {:.1}% (paper 94% -> 96%)",
        m(&base_jct),
        m(&trip_jct),
        m(&base_hit) * 100.0,
        m(&trip_hit) * 100.0
    );
    println!("DecisionTree and TriangleCount are excluded: no iterations parameter (paper: DT unaffected).");
}
