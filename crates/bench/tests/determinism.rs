//! Determinism-under-concurrency regression tests: the contract the sweep
//! engine must uphold is that the *aggregated* output of a grid is
//! byte-identical no matter how many worker threads ran it (ISSUE 1).

use refdist_bench::{run_sweep, ExpContext, PolicySpec, ServeAxis, SweepGrid, SweepOptions};
use refdist_cluster::{ArrivalProcess, QuotaKind, ServeSched};
use refdist_workloads::Workload;

fn tiny_ctx() -> ExpContext {
    let mut ctx = ExpContext::main().quick();
    ctx.params.partitions = 8;
    ctx.params.scale = 0.02;
    ctx.cluster.nodes = 4;
    ctx
}

fn tiny_grid() -> SweepGrid {
    SweepGrid::new(
        vec![Workload::ShortestPaths, Workload::ConnectedComponents],
        vec![PolicySpec::Lru, PolicySpec::MrdFull],
    )
    .fractions(&[0.3, 0.7])
    .seeds(&[42, 7])
}

#[test]
fn aggregated_output_is_byte_identical_across_thread_counts() {
    let ctx = tiny_ctx();
    let grid = tiny_grid();
    let sequential = run_sweep(&grid, &ctx, &SweepOptions::default().threads(1));
    for threads in [2, 4, 8] {
        let parallel = run_sweep(&grid, &ctx, &SweepOptions::default().threads(threads));
        assert_eq!(
            sequential.csv(),
            parallel.csv(),
            "CSV diverged at {threads} threads"
        );
        assert_eq!(
            sequential.table(),
            parallel.table(),
            "table diverged at {threads} threads"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Not just 1-vs-N: two N-thread runs must agree with each other too
    // (guards against any residual order- or time-dependence).
    let ctx = tiny_ctx();
    let grid = tiny_grid();
    let a = run_sweep(&grid, &ctx, &SweepOptions::default().threads(4));
    let b = run_sweep(&grid, &ctx, &SweepOptions::default().threads(4));
    assert_eq!(a.csv(), b.csv());
}

#[test]
fn cells_come_back_in_canonical_order() {
    let ctx = tiny_ctx();
    let grid = tiny_grid();
    let res = run_sweep(&grid, &ctx, &SweepOptions::default().threads(4));
    let expected: Vec<String> = grid.cells().iter().map(|c| c.key()).collect();
    let got: Vec<String> = res.cells.iter().map(|c| c.cell.key()).collect();
    assert_eq!(got, expected);
}

#[test]
fn master_seed_changes_every_cell_seed() {
    let grid = tiny_grid();
    for cell in grid.cells() {
        assert_ne!(cell.sim_seed(42), cell.sim_seed(43));
    }
}

#[test]
fn chaos_cells_are_byte_identical_across_thread_counts() {
    // The chaos axis injects stochastic faults, drawn from a per-cell
    // fault stream — the resilience curve must be as thread-count-proof
    // as the fault-free grid, and actually exercise the fault machinery.
    let ctx = tiny_ctx();
    let grid = SweepGrid::new(
        vec![Workload::ShortestPaths],
        vec![PolicySpec::Lru, PolicySpec::Lrc, PolicySpec::MrdFull],
    )
    .fractions(&[0.3])
    .chaos(&[0.0, 0.05, 0.1]);
    let sequential = run_sweep(&grid, &ctx, &SweepOptions::default().threads(1));
    for threads in [2, 4, 8] {
        let parallel = run_sweep(&grid, &ctx, &SweepOptions::default().threads(threads));
        assert_eq!(
            sequential.csv(),
            parallel.csv(),
            "chaos CSV diverged at {threads} threads"
        );
        for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
            assert_eq!(
                format!("{:?}", a.report),
                format!("{:?}", b.report),
                "chaos report diverged at {threads} threads for {}",
                a.cell.key()
            );
        }
    }
    let faulted = sequential
        .cells
        .iter()
        .filter(|c| c.cell.chaos > 0.0)
        .filter(|c| !c.report.faults.is_empty())
        .count();
    assert!(faulted > 0, "no chaos cell drew a single fault");
}

#[test]
fn serve_cells_are_byte_identical_across_thread_counts() {
    // The tenancy axis multiplexes whole applications through one shared
    // engine; its aggregated output must stay thread-count-proof, including
    // when it composes with the chaos axis.
    let ctx = tiny_ctx();
    let grid = SweepGrid::new(
        vec![Workload::ShortestPaths],
        vec![PolicySpec::Lru, PolicySpec::MrdFull],
    )
    .fractions(&[0.3])
    .chaos(&[0.0, 0.05])
    .serve(&[
        None,
        Some(ServeAxis {
            tenants: 3,
            mean_gap_us: 100_000,
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            resilience: Default::default(),
        }),
        Some(ServeAxis {
            tenants: 2,
            mean_gap_us: 50_000,
            sched: ServeSched::Fifo,
            quota: QuotaKind::Unlimited,
            resilience: Default::default(),
        }),
    ]);
    let sequential = run_sweep(&grid, &ctx, &SweepOptions::default().threads(1));
    for threads in [2, 4, 8] {
        let parallel = run_sweep(&grid, &ctx, &SweepOptions::default().threads(threads));
        assert_eq!(
            sequential.csv(),
            parallel.csv(),
            "serve CSV diverged at {threads} threads"
        );
        for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
            assert_eq!(
                format!("{:?}", a.report),
                format!("{:?}", b.report),
                "serve report diverged at {threads} threads for {}",
                a.cell.key()
            );
        }
    }
    // The multi-tenant cells really ran multi-tenant streams.
    let fair = sequential
        .cells
        .iter()
        .find(|c| c.cell.serve.is_some_and(|ax| ax.tenants == 3))
        .expect("3-tenant cell ran");
    assert_eq!(fair.report.tasks % 3, 0);
    assert!(fair.report.app.contains('+'));
}

#[test]
fn streaming_serve_cells_are_byte_identical_across_thread_counts() {
    // Serve cells run the *streaming* driver (lazy admission, drain-then-
    // retire, slot-range recycling) — its byte-determinism contract is the
    // same as every other cell's: one worker thread or eight, the
    // aggregated output cannot move. Denser streams than the mixed-axis
    // test above, so admissions and retirements actually interleave.
    let ctx = tiny_ctx();
    let grid = SweepGrid::new(
        vec![Workload::ShortestPaths],
        vec![PolicySpec::Lru, PolicySpec::MrdFull],
    )
    .fractions(&[0.3])
    .serve(&[
        Some(ServeAxis {
            tenants: 4,
            mean_gap_us: 20_000,
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            resilience: Default::default(),
        }),
        Some(ServeAxis {
            tenants: 5,
            mean_gap_us: 10_000,
            sched: ServeSched::Fifo,
            quota: QuotaKind::Unlimited,
            resilience: Default::default(),
        }),
    ]);
    let sequential = run_sweep(&grid, &ctx, &SweepOptions::default().threads(1));
    for threads in [2, 8] {
        let parallel = run_sweep(&grid, &ctx, &SweepOptions::default().threads(threads));
        assert_eq!(
            sequential.csv(),
            parallel.csv(),
            "streaming serve CSV diverged at {threads} threads"
        );
        for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
            assert_eq!(
                format!("{:?}", a.report),
                format!("{:?}", b.report),
                "streaming serve report diverged at {threads} threads for {}",
                a.cell.key()
            );
        }
    }
}

#[test]
fn poisson_arrivals_replay_from_the_master_seed() {
    // The arrival stream is a dedicated RNG stream keyed only by the master
    // seed: replaying a seed reproduces the schedule exactly, different
    // seeds produce different schedules, and a fixed trace draws nothing.
    let p = ArrivalProcess::Poisson {
        mean_gap_us: 250_000,
    };
    let a = p.arrivals(16, 42);
    assert_eq!(a, p.arrivals(16, 42), "same seed must replay");
    assert_ne!(a, p.arrivals(16, 43), "different seed must diverge");
    assert_eq!(a[0], 0, "first arrival anchors the stream at t=0");
    assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals are sorted");
    let t = ArrivalProcess::Trace(vec![5, 10, 20]);
    assert_eq!(t.arrivals(3, 1), t.arrivals(3, 999), "trace ignores the seed");
}

#[test]
fn churn_victim_sequences_match_across_protocols() {
    // ISSUE 2: the indexed select_victims path must reproduce the naive
    // re-scan protocol's victim sequence exactly — here end-to-end through
    // the bench harness (the property tests in refdist-policies and
    // refdist-core cover randomized traces; this covers the churn driver
    // both benchmark protocols actually run).
    for (name, build) in refdist_bench::bench_policies() {
        let mut naive = refdist_bench::Churn::new(build, 256, true);
        let mut indexed = refdist_bench::Churn::new(build, 256, false);
        for step in 0..1024 {
            let a = naive.step();
            let b = indexed.step();
            assert_eq!(a, b, "{name} diverged at churn step {step}");
        }
    }
}

#[test]
fn churn_is_deterministic_across_runs() {
    let (_, build) = refdist_bench::bench_policies()[4]; // MRD
    let mut a = refdist_bench::Churn::new(build, 128, false);
    let mut b = refdist_bench::Churn::new(build, 128, false);
    for _ in 0..512 {
        assert_eq!(a.step(), b.step());
    }
}
