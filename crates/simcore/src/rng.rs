//! Deterministic random-number fan-out.
//!
//! Every random stream in the system derives from a single experiment seed
//! through [`SeedFactory`], so a run is reproducible regardless of how many
//! components draw randomness or in what order threads interleave.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives independent, reproducible RNG streams from one master seed.
///
/// Streams are keyed by a caller-chosen label so that adding a new consumer
/// does not perturb existing streams (unlike drawing sub-seeds sequentially).
#[derive(Debug, Clone)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// Create a factory from a master seed.
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the sub-seed for `label` (stable FNV-1a mix of label + master).
    pub fn seed_for(&self, label: &str) -> u64 {
        // FNV-1a over the label bytes, then a splitmix64 finalizer with the
        // master seed folded in. Cheap, stable across platforms/versions.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(h ^ self.master)
    }

    /// A `SmallRng` for `label`.
    pub fn rng(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for(label))
    }

    /// A child factory namespaced under `label` (for per-node, per-workload
    /// hierarchies).
    pub fn child(&self, label: &str) -> SeedFactory {
        SeedFactory {
            master: self.seed_for(label),
        }
    }
}

/// splitmix64 finalizer: decorrelates nearby seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = SeedFactory::new(42);
        let mut a = f.rng("disk");
        let mut b = f.rng("disk");
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_differ() {
        let f = SeedFactory::new(42);
        assert_ne!(f.seed_for("disk"), f.seed_for("net"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedFactory::new(1).seed_for("x"),
            SeedFactory::new(2).seed_for("x")
        );
    }

    #[test]
    fn child_namespacing_is_stable() {
        let f = SeedFactory::new(7);
        let c1 = f.child("node-0");
        let c2 = f.child("node-0");
        assert_eq!(c1.seed_for("disk"), c2.seed_for("disk"));
        assert_ne!(c1.seed_for("disk"), f.child("node-1").seed_for("disk"));
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        // splitmix64 should spread adjacent master seeds far apart.
        let a = SeedFactory::new(100).seed_for("w");
        let b = SeedFactory::new(101).seed_for("w");
        assert!((a ^ b).count_ones() > 10);
    }
}
