//! Statistics primitives used by simulation reports.

/// A simple monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Fixed-boundary histogram for latency/size distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Histogram with the given ascending upper bounds; one overflow bucket
    /// is added automatically.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bucket counts (last bucket is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile `q` in `[0, 1]` by bucket upper bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    f64::INFINITY
                };
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn online_stats_matches_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 5.0, 50.0, 500.0, 0.9] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(vec![1.0, 2.0, 3.0, 4.0]);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.record(x);
        }
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn histogram_boundary_goes_to_lower_bucket() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(1.0);
        assert_eq!(h.counts(), &[1, 0, 0]);
    }
}
