//! Deterministic discrete-event simulation core.
//!
//! This crate provides the time base, event queue, bandwidth-serialized
//! resources, seeded random-number fan-out and statistics primitives used by
//! the cluster simulator in `refdist-cluster`. Everything here is fully
//! deterministic: the event queue breaks timestamp ties with a monotonically
//! increasing sequence number, resources serve requests in FIFO order, and
//! all randomness flows from explicitly provided seeds.

//! # Example
//!
//! ```
//! use refdist_simcore::{EventQueue, FifoResource, SimTime};
//!
//! // Events pop in time order, FIFO among ties.
//! let mut q = EventQueue::new();
//! q.schedule(SimTime(20), "late");
//! q.schedule(SimTime(10), "early");
//! assert_eq!(q.pop(), Some((SimTime(10), "early")));
//!
//! // A 1 MB/s disk serves requests back to back.
//! let mut disk = FifoResource::new(1_000_000);
//! let first = disk.request(SimTime::ZERO, 500_000);
//! let second = disk.request(SimTime::ZERO, 500_000);
//! assert_eq!(first, SimTime(500_000));
//! assert_eq!(second, SimTime(1_000_000));
//! ```

pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use resource::FifoResource;
pub use rng::SeedFactory;
pub use stats::{Counter, Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
