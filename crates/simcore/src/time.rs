//! Virtual time for the simulator.
//!
//! Time is an integer count of microseconds since simulation start. Integer
//! time keeps the event queue total order exact (no floating-point ties) and
//! makes runs reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw microsecond count.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Elapsed span since `earlier`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// Negative and non-finite inputs clamp to zero: cost models occasionally
    /// produce tiny negative values from subtraction and those must not panic.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time to move `bytes` through a channel of `bytes_per_sec` bandwidth.
    ///
    /// Zero-bandwidth channels are treated as infinitely fast rather than
    /// stalling the simulation; configurations validate bandwidth > 0
    /// separately.
    pub fn transfer(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        if bytes_per_sec == 0 || bytes == 0 {
            return SimDuration(0);
        }
        // Round up: a transfer always takes at least one microsecond per
        // partial quantum, so distinct transfers never collapse to zero cost.
        let us = (bytes as u128 * 1_000_000).div_ceil(bytes_per_sec as u128);
        SimDuration(us.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_add_duration() {
        let t = SimTime(10) + SimDuration(5);
        assert_eq!(t, SimTime(15));
    }

    #[test]
    fn time_sub_saturates() {
        assert_eq!(SimTime(3) - SimTime(10), SimDuration::ZERO);
        assert_eq!(SimTime(10) - SimTime(3), SimDuration(7));
    }

    #[test]
    fn duration_from_secs_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1_500_000));
        assert_eq!(SimDuration::from_secs_f64(0.0000005), SimDuration(1));
    }

    #[test]
    fn duration_from_secs_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn transfer_rounds_up() {
        // 1 byte over 1 MB/s = 1 us exactly.
        assert_eq!(SimDuration::transfer(1, 1_000_000), SimDuration(1));
        // 3 bytes over 2 MB/s = 1.5 us, rounds to 2.
        assert_eq!(SimDuration::transfer(3, 2_000_000), SimDuration(2));
    }

    #[test]
    fn transfer_zero_cases() {
        assert_eq!(SimDuration::transfer(0, 100), SimDuration::ZERO);
        assert_eq!(SimDuration::transfer(100, 0), SimDuration::ZERO);
    }

    #[test]
    fn transfer_large_does_not_overflow() {
        let d = SimDuration::transfer(u64::MAX, 1);
        assert_eq!(d, SimDuration(u64::MAX));
    }

    #[test]
    fn since_and_max() {
        assert_eq!(SimTime(10).since(SimTime(4)), SimDuration(6));
        assert_eq!(SimTime(4).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(4).max(SimTime(10)), SimTime(10));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [SimDuration(1), SimDuration(2), SimDuration(3)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration(6));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime(1_500_000)), "1.500000s");
        assert_eq!(format!("{}", SimDuration(250)), "0.000250s");
    }
}
