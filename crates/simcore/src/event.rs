//! Deterministic event queue.
//!
//! A binary min-heap keyed on `(time, seq)`. Events scheduled at the same
//! virtual time pop in the order they were pushed (FIFO among ties), which
//! makes the whole simulation a pure function of its inputs.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event with its firing time and tie-break sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of simulation events ordered by `(time, insertion order)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue starting at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time: the firing time of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at `time`.
    ///
    /// # Panics
    /// Panics if `time` is before the current virtual time — scheduling into
    /// the past is always a simulator bug and would silently corrupt
    /// causality if allowed.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Pop the earliest event, advancing virtual time to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Firing time of the next event, if any, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), ());
        q.schedule(SimTime(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(3));
        q.pop();
        assert_eq!(q.now(), SimTime(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.pop();
        q.schedule(SimTime(10), 2); // same instant as `now` is fine
        assert_eq!(q.pop(), Some((SimTime(10), 2)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(4), ());
        assert_eq!(q.peek_time(), Some(SimTime(4)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 1u32);
        q.schedule(SimTime(5), 5);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t, v), (SimTime(1), 1));
        // schedule between pending events
        q.schedule(SimTime(3), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
    }
}
