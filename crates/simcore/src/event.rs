//! Deterministic event queue.
//!
//! Two interchangeable backends behind one API, both keyed on a single
//! packed `(time, seq)` `u128` so events scheduled at the same virtual time
//! pop in the order they were pushed (FIFO among ties), which makes the
//! whole simulation a pure function of its inputs:
//!
//! * [`EventQueue::heap`] — the original binary min-heap. O(log n) per op,
//!   kept as the reference backend (`SimConfig::heap_events` upstream).
//! * [`EventQueue::new`] — a bucketed *calendar queue* (the default).
//!   Virtual time is divided into power-of-two-width "days"; day `d` maps to
//!   bucket `d & (nbuckets - 1)`. Buckets are plain `Vec`s held in
//!   descending key order, so the next event is always `Vec::pop` off the
//!   back; pushes append and the bucket is re-sorted lazily when the day
//!   pointer rotates into it. With the bucket count tracking occupancy and
//!   the day width tracking the mean event gap, schedule/pop are amortized
//!   O(1). The packed key means rotation and resize can never reorder ties:
//!   order is decided by the key alone, never by bucket layout.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Pack an event key: time in the high 64 bits, sequence in the low 64.
/// A single integer compare then yields `(time, seq)` lexicographic order.
#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.0 as u128) << 64) | seq as u128
}

#[inline]
fn key_time(key: u128) -> u64 {
    (key >> 64) as u64
}

/// An event with its packed `(time, seq)` ordering key.
#[derive(Debug)]
struct Scheduled<E> {
    key: u128,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other.key.cmp(&self.key)
    }
}

const MIN_BUCKETS: usize = 8;
/// Grow when occupancy exceeds `nbuckets * GROW_AT`, shrink when it drops
/// below `nbuckets / SHRINK_AT`. The gap between the two thresholds is the
/// hysteresis that keeps a steady-state queue from thrashing.
const GROW_AT: usize = 2;
const SHRINK_AT: usize = 4;
/// Day widths span 1 µs to ~17 min; the clamp keeps day arithmetic sane
/// even for far-future outliers near `SimTime(u64::MAX)`.
const MAX_WIDTH_SHIFT: u32 = 30;
/// Starting day width (µs, log2) before any rebuild has sampled real gaps.
const DEFAULT_WIDTH_SHIFT: u32 = 10;
/// A single bucket holding more than half the queue (and at least this
/// many events) is evidence the day width has gone stale for the current
/// schedule; trigger a redistributing rebuild.
const CLUSTER_MIN: usize = 64;

/// One calendar bucket: the pending events of every day congruent to this
/// bucket's index, in *descending* key order once `sorted` (the earliest
/// event is popped off the back). Pushes append and clear `sorted` only
/// when they actually violate the order, so a bucket that filled back to
/// front skips its rotation sort entirely.
#[derive(Debug)]
struct Bucket<E> {
    events: Vec<(u128, E)>,
    sorted: bool,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket {
            events: Vec::new(),
            sorted: true,
        }
    }
}

impl<E> Bucket<E> {
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // Keys are unique (seq is unique), so unstable sort is exact.
            self.events.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
            self.sorted = true;
        }
    }
}

#[derive(Debug)]
struct CalendarQueue<E> {
    buckets: Vec<Bucket<E>>,
    /// `nbuckets - 1`; the bucket count is always a power of two.
    mask: u64,
    /// log2 of the day width in µs.
    width_shift: u32,
    /// Time of the most recently popped event. Every pending *and* every
    /// future event fires at or after it, so `floor >> width_shift` is a
    /// sound lower bound for the day scan under any width.
    floor: u64,
    /// The earliest day that may still hold events; always
    /// `floor >> width_shift`. Committed only by `pop` (to the day of the
    /// event it returns) and recomputed on resize, so it never overtakes a
    /// pending or yet-to-be-scheduled event.
    day: u64,
    len: usize,
    /// Set when an anti-clustering rebuild left the width unchanged — the
    /// pileup is genuine (same-instant flood), not a stale width, so stop
    /// re-trying until the width changes for another reason. Bounds the
    /// trigger at one wasted O(n) rebuild per clear/resize.
    cluster_guard: bool,
    /// Whether the day width has been derived from real gaps at least once
    /// since the last clear. A queue that was `reserve`d up front never
    /// crosses the grow threshold, so without the one-shot sample when
    /// occupancy first reaches the bucket count it would keep the default
    /// width forever.
    sampled: bool,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::default()).collect(),
            mask: MIN_BUCKETS as u64 - 1,
            width_shift: DEFAULT_WIDTH_SHIFT,
            floor: 0,
            day: 0,
            len: 0,
            cluster_guard: false,
            sampled: false,
        }
    }
}

impl<E> CalendarQueue<E> {
    #[inline]
    fn day_of(&self, key: u128) -> u64 {
        key_time(key) >> self.width_shift
    }

    fn schedule(&mut self, key: u128, payload: E) {
        let day = self.day_of(key);
        let b = &mut self.buckets[(day & self.mask) as usize];
        if b.sorted {
            if let Some(&(last, _)) = b.events.last() {
                // Descending order: an append may only carry a smaller key.
                if last < key {
                    b.sorted = false;
                }
            }
        }
        b.events.push((key, payload));
        let clustered = b.events.len() >= CLUSTER_MIN && b.events.len() * 2 > self.len;
        self.len += 1;
        if self.len > self.buckets.len() * GROW_AT {
            self.rebuild(self.len);
        } else if !self.sampled && self.len >= self.buckets.len() {
            // First time occupancy reaches one event per bucket: sample the
            // real gap distribution once instead of trusting the default
            // width (which a pre-`reserve`d queue would otherwise keep).
            self.rebuild(self.len);
        } else if clustered && !self.cluster_guard {
            // Half the queue in one bucket: the day width was sized for a
            // different schedule (a long-lived queue whose gap distribution
            // drifted). Re-sample the width; if it comes back unchanged the
            // pileup is same-instant ties and `rebuild` raises the guard.
            let before = self.width_shift;
            self.rebuild(self.len);
            self.cluster_guard = self.width_shift == before;
        }
    }

    /// Locate the bucket holding the globally smallest key: scan days
    /// forward from `self.day` (each day lives in exactly one bucket); after
    /// a fruitless full lap — every pending event is more than `nbuckets`
    /// days out — jump straight to the minimum key. Sorts buckets it visits
    /// but does *not* commit `self.day`, so a peek followed by scheduling an
    /// earlier (still-future) event cannot strand that event behind the day
    /// pointer.
    fn find_next(&mut self) -> Option<(u64, usize)> {
        if self.len == 0 {
            return None;
        }
        for d in self.day..self.day + self.buckets.len() as u64 {
            let bi = (d & self.mask) as usize;
            let b = &mut self.buckets[bi];
            if !b.events.is_empty() {
                b.ensure_sorted();
                let (k, _) = *b.events.last().expect("bucket non-empty");
                if self.day_of(k) == d {
                    return Some((d, bi));
                }
            }
        }
        // Sparse lap: find the global minimum directly instead of walking
        // empty days one at a time.
        let mut best: Option<u128> = None;
        for b in &self.buckets {
            for &(k, _) in &b.events {
                if best.is_none_or(|bk| k < bk) {
                    best = Some(k);
                }
            }
        }
        let k = best.expect("len > 0 but no event found");
        let d = self.day_of(k);
        let bi = (d & self.mask) as usize;
        self.buckets[bi].ensure_sorted();
        Some((d, bi))
    }

    fn pop(&mut self) -> Option<(u128, E)> {
        let (day, bi) = self.find_next()?;
        self.day = day;
        let ev = self.buckets[bi].events.pop().expect("find_next found it");
        self.floor = key_time(ev.0);
        self.len -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / SHRINK_AT {
            self.rebuild(self.len.max(1));
        }
        Some(ev)
    }

    fn peek_key(&mut self) -> Option<u128> {
        let (_, bi) = self.find_next()?;
        self.buckets[bi].events.last().map(|&(k, _)| k)
    }

    fn reserve(&mut self, additional: usize) {
        let target = self.len + additional;
        if target > self.buckets.len() * GROW_AT {
            self.rebuild(target);
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.events.clear();
            b.sorted = true;
        }
        self.floor = 0;
        self.day = 0;
        self.len = 0;
        // A reused queue starts a fresh schedule; a width sampled from the
        // tail of the previous drain (often a few stragglers or far-future
        // outliers) would cluster the next fill into one bucket.
        self.width_shift = DEFAULT_WIDTH_SHIFT;
        self.cluster_guard = false;
        self.sampled = false;
    }

    /// Re-bucket every pending event for `target` occupancy: the bucket
    /// count becomes `target.next_power_of_two()` and the day width is
    /// re-derived from the pending keys' span so events spread roughly one
    /// per bucket-day. Order is untouched — it lives entirely in the packed
    /// keys, so redistribution cannot perturb FIFO ties.
    fn rebuild(&mut self, target: usize) {
        self.cluster_guard = false;
        let nbuckets = target.max(MIN_BUCKETS).next_power_of_two();
        let mut pending: Vec<(u128, E)> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            pending.append(&mut b.events);
            b.sorted = true;
        }
        self.buckets.resize_with(nbuckets, Bucket::default);
        self.mask = nbuckets as u64 - 1;
        if pending.len() >= 2 {
            // Day width = mean gap over the *trimmed* span (10th to 90th
            // percentile of pending times). The plain span is dominated by a
            // single far-future outlier, which would stretch the days until
            // every near-term event piled into one bucket; trimming the
            // tails keeps the dense cluster spread at roughly one event per
            // bucket-day while outliers just sit in far days the
            // sparse-jump reaches directly. Two O(n) selections — width is
            // a performance hint only, ordering lives in the keys.
            let n = pending.len();
            let (lo, hi) = (n / 10, n - 1 - n / 10);
            let t_lo = key_time(pending.select_nth_unstable_by_key(lo, |p| p.0).1 .0);
            let t_hi = key_time(pending.select_nth_unstable_by_key(hi, |p| p.0).1 .0);
            let gap = ((t_hi - t_lo) / (hi - lo).max(1) as u64).max(1);
            self.width_shift = (63 - gap.leading_zeros()).min(MAX_WIDTH_SHIFT);
            self.sampled = true;
        }
        self.len = 0;
        // Re-anchor the day scan at the floor under the new width; every
        // pending and future event fires at or after it.
        self.day = self.floor >> self.width_shift;
        for (k, p) in pending {
            // Re-insert below the grow threshold by construction, so this
            // cannot recurse.
            let bi = (self.day_of(k) & self.mask) as usize;
            let b = &mut self.buckets[bi];
            if b.sorted {
                if let Some(&(last, _)) = b.events.last() {
                    if last < k {
                        b.sorted = false;
                    }
                }
            }
            b.events.push((k, p));
            self.len += 1;
        }
    }
}

#[derive(Debug)]
enum Backend<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Calendar(CalendarQueue<E>),
}

/// Priority queue of simulation events ordered by `(time, insertion order)`.
///
/// [`EventQueue::new`] uses the calendar backend; [`EventQueue::heap`] keeps
/// the original binary heap for reference runs and differential tests. Both
/// pop byte-identical sequences — ordering is a property of the packed key,
/// not the backend.
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty calendar-backed queue starting at time zero.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Calendar(CalendarQueue::default()),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Empty binary-heap-backed queue (the reference backend).
    pub fn heap() -> Self {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Calendar backend by default, heap when `use_heap` is set — the shape
    /// `SimConfig::heap_events` selects upstream.
    pub fn with_heap(use_heap: bool) -> Self {
        if use_heap {
            Self::heap()
        } else {
            Self::new()
        }
    }

    /// Whether this queue runs on the reference heap backend.
    pub fn is_heap(&self) -> bool {
        matches!(self.backend, Backend::Heap(_))
    }

    /// Current virtual time: the firing time of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at `time`.
    ///
    /// # Panics
    /// Panics if `time` is before the current virtual time — scheduling into
    /// the past is always a simulator bug and would silently corrupt
    /// causality if allowed.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let key = pack(time, self.next_seq);
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(h) => h.push(Scheduled { key, payload }),
            Backend::Calendar(c) => c.schedule(key, payload),
        }
    }

    /// Pop the earliest event, advancing virtual time to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (key, payload) = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|s| (s.key, s.payload))?,
            Backend::Calendar(c) => c.pop()?,
        };
        let time = SimTime(key_time(key));
        debug_assert!(time >= self.now);
        self.now = time;
        Some((time, payload))
    }

    /// Firing time of the next event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(h) => h.peek().map(|s| SimTime(key_time(s.key))),
            Backend::Calendar(c) => c.peek_key().map(|k| SimTime(key_time(k))),
        }
    }

    /// Pre-size for about `n` additional events (bucket-count for the
    /// calendar backend, capacity for the heap).
    pub fn reserve(&mut self, n: usize) {
        match &mut self.backend {
            Backend::Heap(h) => h.reserve(n),
            Backend::Calendar(c) => c.reserve(n),
        }
    }

    /// Drop all pending events and rewind to time zero, keeping the backing
    /// allocations so a hot loop can reuse one queue across stages.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.clear(),
            Backend::Calendar(c) => c.clear(),
        }
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len,
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<u32>; 2] {
        [EventQueue::heap(), EventQueue::new()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [EventQueue::heap(), EventQueue::new()] {
            q.schedule(SimTime(30), "c");
            q.schedule(SimTime(10), "a");
            q.schedule(SimTime(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        }
    }

    #[test]
    fn ties_break_fifo() {
        for mut q in both() {
            for i in 0..100 {
                q.schedule(SimTime(5), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn now_advances_with_pops() {
        for mut q in both() {
            q.schedule(SimTime(7), 0);
            q.schedule(SimTime(3), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime(3));
            q.pop();
            assert_eq!(q.now(), SimTime(7));
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics_heap() {
        let mut q = EventQueue::heap();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        for mut q in both() {
            q.schedule(SimTime(10), 1);
            q.pop();
            q.schedule(SimTime(10), 2); // same instant as `now` is fine
            assert_eq!(q.pop(), Some((SimTime(10), 2)));
        }
    }

    #[test]
    fn peek_does_not_advance() {
        for mut q in both() {
            q.schedule(SimTime(4), 0);
            assert_eq!(q.peek_time(), Some(SimTime(4)));
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        for mut q in both() {
            q.schedule(SimTime(1), 1u32);
            q.schedule(SimTime(5), 5);
            let (t, v) = q.pop().unwrap();
            assert_eq!((t, v), (SimTime(1), 1));
            // schedule between pending events
            q.schedule(SimTime(3), 3);
            assert_eq!(q.pop().unwrap().1, 3);
            assert_eq!(q.pop().unwrap().1, 5);
        }
    }

    #[test]
    fn schedule_after_peek_of_later_event_is_not_stranded() {
        // Regression guard for the day-pointer hazard: peeking a far-future
        // event must not let the calendar commit its day pointer past an
        // event scheduled afterwards at an earlier (but still future) time.
        for mut q in both() {
            q.schedule(SimTime(10), 1);
            q.pop();
            q.schedule(SimTime(1 << 20), 99);
            assert_eq!(q.peek_time(), Some(SimTime(1 << 20)));
            q.schedule(SimTime(20), 2);
            assert_eq!(q.pop(), Some((SimTime(20), 2)));
            assert_eq!(q.pop(), Some((SimTime(1 << 20), 99)));
        }
    }

    #[test]
    fn clear_rewinds_time_and_reuses() {
        for mut q in both() {
            q.schedule(SimTime(100), 1);
            q.pop();
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.now(), SimTime::ZERO);
            // After clear the queue accepts earlier times again and FIFO
            // sequence numbering restarts.
            q.schedule(SimTime(2), 7);
            q.schedule(SimTime(2), 8);
            assert_eq!(q.pop(), Some((SimTime(2), 7)));
            assert_eq!(q.pop(), Some((SimTime(2), 8)));
        }
    }

    #[test]
    fn resize_boundary_preserves_order() {
        // Cross the grow threshold (len > nbuckets * 2, starting at 8
        // buckets) and later the shrink threshold while draining; the pop
        // sequence must match the heap exactly, including FIFO ties.
        let mut heap = EventQueue::heap();
        let mut cal = EventQueue::new();
        // 600 events: bursts of ties + spread, forcing several rebuilds.
        for i in 0..600u64 {
            let t = SimTime((i / 3) * 17 % 4096);
            heap.schedule(t, i);
            cal.schedule(t, i);
        }
        // Drain halfway, interleave more schedules (schedule-during-drain),
        // then drain fully; shrink fires as occupancy collapses.
        for step in 0..300 {
            assert_eq!(heap.pop(), cal.pop(), "diverged at drain step {step}");
        }
        for i in 0..50u64 {
            let t = SimTime(heap.now().0 + i * 1000);
            heap.schedule(t, 10_000 + i);
            cal.schedule(t, 10_000 + i);
        }
        let mut n = 0;
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            assert_eq!(h, c, "diverged at final drain step {n}");
            if h.is_none() {
                break;
            }
            n += 1;
        }
        assert_eq!(n, 350);
    }

    #[test]
    fn far_future_outlier_uses_sparse_jump() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 1);
        q.schedule(SimTime(u64::MAX / 2), 2);
        assert_eq!(q.pop(), Some((SimTime(1), 1)));
        // The outlier is billions of days out; find_next must jump, not walk.
        assert_eq!(q.pop(), Some((SimTime(u64::MAX / 2), 2)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn reserve_pregrows_without_reordering() {
        let mut q = EventQueue::new();
        q.reserve(1000);
        for i in 0..1000u64 {
            q.schedule(SimTime(1000 - i), i);
        }
        let mut last = None;
        for _ in 0..1000 {
            let (t, _) = q.pop().unwrap();
            if let Some(prev) = last {
                assert!(t >= prev);
            }
            last = Some(t);
        }
    }
}
