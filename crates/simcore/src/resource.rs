//! Bandwidth-serialized resources (disk spindles, network links).
//!
//! The cluster simulator models a node's disk and NIC as FIFO channels with
//! fixed bandwidth: a request of `bytes` submitted at time `t` completes at
//! `max(t, available_at) + bytes / bandwidth`, and pushes `available_at`
//! forward. This captures queueing delay under contention (e.g. prefetch
//! traffic competing with task input fetches) without per-byte events.

use crate::time::{SimDuration, SimTime};

/// A FIFO bandwidth resource.
#[derive(Debug, Clone)]
pub struct FifoResource {
    /// Service bandwidth in bytes per second.
    bytes_per_sec: u64,
    /// Time at which the resource next becomes idle.
    available_at: SimTime,
    /// Total bytes served (for reports).
    bytes_served: u64,
    /// Total busy time accumulated (for utilization reports).
    busy: SimDuration,
}

impl FifoResource {
    /// Create a resource with the given bandwidth.
    ///
    /// # Panics
    /// Panics on zero bandwidth; configurations must provide a positive rate.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "resource bandwidth must be positive");
        FifoResource {
            bytes_per_sec,
            available_at: SimTime::ZERO,
            bytes_served: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Bandwidth in bytes per second.
    pub fn bandwidth(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Submit a request of `bytes` at time `now`; returns its completion time
    /// and advances the queue.
    pub fn request(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.available_at.max(now);
        let service = SimDuration::transfer(bytes, self.bytes_per_sec);
        let done = start + service;
        self.available_at = done;
        self.bytes_served = self.bytes_served.saturating_add(bytes);
        self.busy += service;
        done
    }

    /// Completion time a request of `bytes` would get at `now`, without
    /// enqueueing it.
    pub fn estimate(&self, now: SimTime, bytes: u64) -> SimTime {
        self.available_at.max(now) + SimDuration::transfer(bytes, self.bytes_per_sec)
    }

    /// Time at which the resource is next idle.
    pub fn available_at(&self) -> SimTime {
        self.available_at
    }

    /// Total bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new(1_000_000); // 1 MB/s
        let done = r.request(SimTime(100), 1_000_000);
        assert_eq!(done, SimTime(100) + SimDuration(1_000_000));
    }

    #[test]
    fn requests_queue_fifo() {
        let mut r = FifoResource::new(1_000_000);
        let d1 = r.request(SimTime(0), 500_000); // 0.5s service
        let d2 = r.request(SimTime(0), 500_000); // queues behind d1
        assert_eq!(d1, SimTime(500_000));
        assert_eq!(d2, SimTime(1_000_000));
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut r = FifoResource::new(1_000_000);
        r.request(SimTime(0), 100_000); // done at 0.1s
        let d = r.request(SimTime(2_000_000), 100_000); // arrives later
        assert_eq!(d, SimTime(2_100_000));
        assert_eq!(r.busy_time(), SimDuration(200_000));
    }

    #[test]
    fn estimate_does_not_mutate() {
        let mut r = FifoResource::new(1_000_000);
        let est = r.estimate(SimTime(0), 1_000_000);
        assert_eq!(est, SimTime(1_000_000));
        assert_eq!(r.available_at(), SimTime::ZERO);
        // And a real request matches the estimate.
        assert_eq!(r.request(SimTime(0), 1_000_000), est);
    }

    #[test]
    fn zero_byte_request_is_free() {
        let mut r = FifoResource::new(1_000);
        let done = r.request(SimTime(42), 0);
        assert_eq!(done, SimTime(42));
        assert_eq!(r.bytes_served(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        FifoResource::new(0);
    }

    #[test]
    fn accounting_accumulates() {
        let mut r = FifoResource::new(2_000_000);
        r.request(SimTime(0), 1_000_000);
        r.request(SimTime(0), 3_000_000);
        assert_eq!(r.bytes_served(), 4_000_000);
        assert_eq!(r.busy_time(), SimDuration(2_000_000));
    }
}
