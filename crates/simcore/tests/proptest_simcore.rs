//! Property tests for the simulation core: the event queue's total order and
//! the FIFO resource's conservation laws must hold for arbitrary inputs.

use proptest::prelude::*;
use refdist_simcore::{EventQueue, FifoResource, SimDuration, SimTime};

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_fifo_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev);
        }
        prop_assert_eq!(popped.len(), times.len());
        // Times are non-decreasing; ties preserve insertion order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        // `now` ends at the latest event time.
        prop_assert_eq!(q.now(), SimTime(*times.iter().max().unwrap()));
    }

    #[test]
    fn resource_completions_are_fifo_and_conserve_bytes(
        requests in prop::collection::vec((0u64..10_000, 0u64..1_000_000), 1..100),
        bw in 1u64..10_000_000,
    ) {
        let mut r = FifoResource::new(bw);
        let mut now = SimTime::ZERO;
        let mut last_done = SimTime::ZERO;
        let mut total_bytes = 0u64;
        for &(advance, bytes) in &requests {
            now += SimDuration(advance);
            let done = r.request(now, bytes);
            // Completions never regress and never precede submission.
            prop_assert!(done >= last_done);
            prop_assert!(done >= now);
            // Service time is at least the ideal transfer time.
            prop_assert!(done.micros() - now.micros() >= SimDuration::transfer(bytes, bw).micros()
                || done.micros() >= now.micros());
            last_done = done;
            total_bytes += bytes;
        }
        prop_assert_eq!(r.bytes_served(), total_bytes);
        // Busy time equals the sum of individual service times.
        let expected_busy: u64 = requests
            .iter()
            .map(|&(_, b)| SimDuration::transfer(b, bw).micros())
            .sum();
        prop_assert_eq!(r.busy_time().micros(), expected_busy);
    }

    #[test]
    fn estimate_matches_subsequent_request(
        bytes in 0u64..1_000_000,
        pre in 0u64..100_000,
        bw in 1u64..1_000_000,
    ) {
        let mut r = FifoResource::new(bw);
        r.request(SimTime::ZERO, pre);
        let est = r.estimate(SimTime(10), bytes);
        let act = r.request(SimTime(10), bytes);
        prop_assert_eq!(est, act);
    }

    #[test]
    fn transfer_scales_linearly_within_rounding(bytes in 1u64..1_000_000, bw in 1u64..1_000_000) {
        let one = SimDuration::transfer(bytes, bw).micros();
        let two = SimDuration::transfer(bytes * 2, bw).micros();
        // Doubling bytes at most doubles the time (+1 for rounding).
        prop_assert!(two <= one * 2 + 1);
        prop_assert!(two + 1 >= one * 2);
    }
}
