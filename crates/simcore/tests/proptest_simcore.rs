//! Property tests for the simulation core: the event queue's total order and
//! the FIFO resource's conservation laws must hold for arbitrary inputs.

use proptest::prelude::*;
use refdist_simcore::{EventQueue, FifoResource, SimDuration, SimTime};

/// One step of an adversarial queue schedule: a flood of `n` events at
/// `now + dt` (ties when `n > 1` or `dt` repeats), or popping up to `n`.
#[derive(Debug, Clone, Copy)]
enum Op {
    Flood { dt: u64, n: usize },
    Pop(usize),
}

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_fifo_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev);
        }
        prop_assert_eq!(popped.len(), times.len());
        // Times are non-decreasing; ties preserve insertion order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        // `now` ends at the latest event time.
        prop_assert_eq!(q.now(), SimTime(*times.iter().max().unwrap()));
    }

    /// Calendar and heap backends must pop identical `(time, payload)`
    /// sequences — and agree on `len`/`now` at every step — under
    /// adversarial schedules: same-instant floods, far-future outliers, and
    /// scheduling while the queue is mid-drain. Offsets are always added to
    /// the current virtual time so no op schedules into the past.
    #[test]
    fn calendar_and_heap_pop_identical_sequences(
        ops in prop::collection::vec(
            prop_oneof![
                // Bursts of same-instant events (FIFO-tie floods).
                (0u64..4, 1usize..20).prop_map(|(dt, n)| Op::Flood { dt, n }),
                // A single event at a modest offset.
                (0u64..5_000).prop_map(|dt| Op::Flood { dt, n: 1 }),
                // Far-future outliers (sparse-lap territory).
                (1u64 << 24..1u64 << 40).prop_map(|dt| Op::Flood { dt, n: 1 }),
                // Drain a few events, then keep scheduling.
                (1usize..30).prop_map(Op::Pop),
            ],
            1..60,
        )
    ) {
        let mut heap = EventQueue::heap();
        let mut cal = EventQueue::new();
        prop_assert!(heap.is_heap());
        prop_assert!(!cal.is_heap());
        let mut tag = 0u64;
        for op in ops {
            match op {
                Op::Flood { dt, n } => {
                    for _ in 0..n {
                        let t = SimTime(heap.now().0 + dt);
                        heap.schedule(t, tag);
                        cal.schedule(t, tag);
                        tag += 1;
                    }
                }
                Op::Pop(n) => {
                    for _ in 0..n {
                        let (h, c) = (heap.pop(), cal.pop());
                        prop_assert_eq!(h, c);
                        prop_assert_eq!(heap.now(), cal.now());
                        if h.is_none() {
                            break;
                        }
                    }
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
            prop_assert_eq!(heap.peek_time(), cal.peek_time());
        }
        // Full drain must agree to the end.
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            prop_assert_eq!(h, c);
            if h.is_none() {
                break;
            }
        }
        prop_assert_eq!(heap.now(), cal.now());
    }

    #[test]
    fn resource_completions_are_fifo_and_conserve_bytes(
        requests in prop::collection::vec((0u64..10_000, 0u64..1_000_000), 1..100),
        bw in 1u64..10_000_000,
    ) {
        let mut r = FifoResource::new(bw);
        let mut now = SimTime::ZERO;
        let mut last_done = SimTime::ZERO;
        let mut total_bytes = 0u64;
        for &(advance, bytes) in &requests {
            now += SimDuration(advance);
            let done = r.request(now, bytes);
            // Completions never regress and never precede submission.
            prop_assert!(done >= last_done);
            prop_assert!(done >= now);
            // Service time is at least the ideal transfer time.
            prop_assert!(done.micros() - now.micros() >= SimDuration::transfer(bytes, bw).micros()
                || done.micros() >= now.micros());
            last_done = done;
            total_bytes += bytes;
        }
        prop_assert_eq!(r.bytes_served(), total_bytes);
        // Busy time equals the sum of individual service times.
        let expected_busy: u64 = requests
            .iter()
            .map(|&(_, b)| SimDuration::transfer(b, bw).micros())
            .sum();
        prop_assert_eq!(r.busy_time().micros(), expected_busy);
    }

    #[test]
    fn estimate_matches_subsequent_request(
        bytes in 0u64..1_000_000,
        pre in 0u64..100_000,
        bw in 1u64..1_000_000,
    ) {
        let mut r = FifoResource::new(bw);
        r.request(SimTime::ZERO, pre);
        let est = r.estimate(SimTime(10), bytes);
        let act = r.request(SimTime(10), bytes);
        prop_assert_eq!(est, act);
    }

    #[test]
    fn transfer_scales_linearly_within_rounding(bytes in 1u64..1_000_000, bw in 1u64..1_000_000) {
        let one = SimDuration::transfer(bytes, bw).micros();
        let two = SimDuration::transfer(bytes * 2, bw).micros();
        // Doubling bytes at most doubles the time (+1 for rounding).
        prop_assert!(two <= one * 2 + 1);
        prop_assert!(two + 1 >= one * 2);
    }
}
